#include "core/vibnn.hh"

#include "common/logging.hh"

namespace vibnn::core
{

VibnnSystem::VibnnSystem(const bnn::BayesianMlp &net,
                         const accel::AcceleratorConfig &config,
                         std::string grng_id, std::uint64_t seed)
    : net_(std::make_unique<bnn::BayesianMlp>(net)), config_(config),
      quantized_(accel::quantizeNetwork(net, config)),
      grngId_(std::move(grng_id)), seed_(seed)
{
    config_.validate(quantized_.layerSizes());
}

VibnnSystem
VibnnSystem::train(const data::Dataset &dataset,
                   const std::vector<std::size_t> &hidden,
                   const bnn::BnnTrainConfig &train_config,
                   const accel::AcceleratorConfig &accel_config,
                   const std::string &grng_id)
{
    std::vector<std::size_t> sizes;
    sizes.push_back(dataset.train.dim);
    sizes.insert(sizes.end(), hidden.begin(), hidden.end());
    sizes.push_back(static_cast<std::size_t>(dataset.train.numClasses));

    Rng init_rng(train_config.seed);
    bnn::BayesianMlp net(sizes, init_rng);
    trainBnn(net, dataset.train.view(), train_config);
    return VibnnSystem(net, accel_config, grng_id,
                       train_config.seed + 0xC0FFEE);
}

double
VibnnSystem::softwareAccuracy(const nn::DataView &data,
                              std::size_t mc_samples,
                              std::uint64_t seed) const
{
    return bnn::evaluateBnnAccuracy(*net_, data, mc_samples, seed);
}

double
VibnnSystem::hardwareAccuracy(const nn::DataView &data) const
{
    auto generator = grng::makeGenerator(grngId_, seed_);
    accel::FunctionalRunner runner(quantized_, config_, generator.get());
    if (data.count == 0)
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        if (runner.classify(data.sample(i)) ==
            static_cast<std::size_t>(data.labels[i])) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.count);
}

accel::CycleStats
VibnnSystem::simulateTiming(const nn::DataView &data,
                            std::size_t images) const
{
    VIBNN_ASSERT(data.count > 0, "need at least one image");
    auto generator = grng::makeGenerator(grngId_, seed_);
    accel::Simulator sim(quantized_, config_, generator.get());
    for (std::size_t i = 0; i < images; ++i)
        sim.runPass(data.sample(i % data.count));
    return sim.stats();
}

std::unique_ptr<accel::Simulator>
VibnnSystem::makeSimulator() const
{
    auto generator = grng::makeGenerator(grngId_, seed_);
    // The simulator does not own the generator; keep it alive by
    // binding its lifetime to the returned object via a deleter pair.
    auto *gen_raw = generator.release();
    struct OwningSimulator : accel::Simulator
    {
        OwningSimulator(const accel::QuantizedNetwork &n,
                        const accel::AcceleratorConfig &c,
                        grng::GaussianGenerator *g)
            : accel::Simulator(n, c, g), owned(g)
        {
        }
        std::unique_ptr<grng::GaussianGenerator> owned;
    };
    return std::make_unique<OwningSimulator>(quantized_, config_,
                                             gen_raw);
}

std::unique_ptr<accel::FunctionalRunner>
VibnnSystem::makeFunctionalRunner() const
{
    auto generator = grng::makeGenerator(grngId_, seed_);
    auto *gen_raw = generator.release();
    struct OwningRunner : accel::FunctionalRunner
    {
        OwningRunner(const accel::QuantizedNetwork &n,
                     const accel::AcceleratorConfig &c,
                     grng::GaussianGenerator *g)
            : accel::FunctionalRunner(n, c, g), owned(g)
        {
        }
        std::unique_ptr<grng::GaussianGenerator> owned;
    };
    return std::make_unique<OwningRunner>(quantized_, config_, gen_raw);
}

hw::DesignEstimate
VibnnSystem::resourceEstimate() const
{
    hw::NetworkHwConfig hw_config;
    hw_config.layerSizes.clear();
    for (std::size_t s : quantized_.layerSizes())
        hw_config.layerSizes.push_back(static_cast<int>(s));
    hw_config.peSets = config_.peSets;
    hw_config.pesPerSet = config_.pesPerSet;
    hw_config.peInputs = config_.peInputs();
    hw_config.bits = config_.bits;
    hw_config.grng = grngId_ == "bnnwallace" ? hw::GrngKind::BnnWallace
                                             : hw::GrngKind::Rlf;
    return networkEstimate(hw_config);
}

hw::PerformanceModel
VibnnSystem::performance(double cycles_per_image) const
{
    return performanceFromCycles(resourceEstimate(), cycles_per_image);
}

} // namespace vibnn::core
