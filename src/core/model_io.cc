/**
 * @file
 * Model serialization (see model_io.hh).
 */

#include "core/model_io.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <vector>

#include "common/logging.hh"

namespace vibnn::core
{

namespace
{

constexpr char kMagic[8] = {'V', 'I', 'B', 'N', 'N', 'M', 'D', 'L'};
constexpr std::uint32_t kVersion = 1;

enum class Kind : std::uint32_t
{
    BayesianMlp = 1,
    QuantizedNetwork = 2,
    BayesianConvNet = 3,
};

/** Little-endian byte sink with a running FNV-1a checksum. */
class Writer
{
  public:
    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, 4);
        u32(bits);
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    floats(const std::vector<float> &vs)
    {
        u64(vs.size());
        for (float v : vs)
            f32(v);
    }

    void
    ints(const std::vector<std::int32_t> &vs)
    {
        u64(vs.size());
        for (std::int32_t v : vs)
            i32(v);
    }

    std::uint64_t hash() const { return hash_; }
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    void
    byte(std::uint8_t b)
    {
        bytes_.push_back(b);
        hash_ = (hash_ ^ b) * 0x100000001B3ULL;
    }

    std::vector<std::uint8_t> bytes_;
    std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/** Bounds-checked little-endian reader with the same checksum. */
class Reader
{
  public:
    explicit Reader(std::vector<std::uint8_t> bytes)
        : bytes_(std::move(bytes))
    {
    }

    bool
    u32(std::uint32_t &v)
    {
        std::uint8_t b[4];
        if (!take(b, 4))
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        std::uint8_t b[8];
        if (!take(b, 8))
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return true;
    }

    bool
    f32(float &v)
    {
        std::uint32_t bits;
        if (!u32(bits))
            return false;
        std::memcpy(&v, &bits, 4);
        return true;
    }

    bool
    i32(std::int32_t &v)
    {
        std::uint32_t bits;
        if (!u32(bits))
            return false;
        v = static_cast<std::int32_t>(bits);
        return true;
    }

    bool
    floats(std::vector<float> &vs, std::uint64_t max_count)
    {
        std::uint64_t n;
        if (!u64(n) || n > max_count)
            return false;
        vs.resize(n);
        for (auto &v : vs) {
            if (!f32(v))
                return false;
        }
        return true;
    }

    bool
    ints(std::vector<std::int32_t> &vs, std::uint64_t max_count)
    {
        std::uint64_t n;
        if (!u64(n) || n > max_count)
            return false;
        vs.resize(n);
        for (auto &v : vs) {
            if (!i32(v))
                return false;
        }
        return true;
    }

    std::uint64_t hash() const { return hash_; }
    std::size_t remaining() const { return bytes_.size() - at_; }

    /** Read the 8-byte trailer *without* folding it into the hash. */
    bool
    trailer(std::uint64_t &v)
    {
        if (remaining() != 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(bytes_[at_ + i]) << (8 * i);
        at_ += 8;
        return true;
    }

  private:
    bool
    take(std::uint8_t *out, std::size_t n)
    {
        if (at_ + n > bytes_.size())
            return false;
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = bytes_[at_ + i];
            hash_ = (hash_ ^ out[i]) * 0x100000001B3ULL;
        }
        at_ += n;
        return true;
    }

    std::vector<std::uint8_t> bytes_;
    std::size_t at_ = 0;
    std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/** Read a whole file and verify magic/version/kind/checksum. Returns
 *  a Reader positioned after the header, or nullptr. */
std::unique_ptr<Reader>
openFile(const std::string &path, Kind expected)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("model_io: cannot open " + path);
        return nullptr;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    if (bytes.size() < sizeof(kMagic) + 8 + 8) {
        warn("model_io: " + path + " is truncated");
        return nullptr;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        warn("model_io: " + path + " has wrong magic");
        return nullptr;
    }

    // Verify the checksum over everything between magic and trailer.
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
        if (i < sizeof(kMagic))
            continue;
        hash = (hash ^ bytes[i]) * 0x100000001B3ULL;
    }
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        stored |= static_cast<std::uint64_t>(
                      bytes[bytes.size() - 8 + i])
            << (8 * i);
    }
    if (hash != stored) {
        warn("model_io: " + path + " failed checksum (corrupted)");
        return nullptr;
    }

    auto reader = std::make_unique<Reader>(std::vector<std::uint8_t>(
        bytes.begin() + sizeof(kMagic), bytes.end()));
    std::uint32_t version, kind;
    if (!reader->u32(version) || version != kVersion) {
        warn("model_io: " + path + " has unsupported version");
        return nullptr;
    }
    if (!reader->u32(kind) ||
        kind != static_cast<std::uint32_t>(expected)) {
        warn("model_io: " + path + " holds a different model kind");
        return nullptr;
    }
    return reader;
}

/** Write magic + (version, kind, payload) + checksum trailer. The
 *  checksum covers version/kind/payload only, matching openFile. */
bool
saveWithHeader(const std::string &path, Kind kind,
               const std::function<void(Writer &)> &payload)
{
    Writer w;
    w.u32(kVersion);
    w.u32(static_cast<std::uint32_t>(kind));
    payload(w);

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("model_io: cannot open " + path + " for writing");
        return false;
    }
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char *>(w.bytes().data()),
              static_cast<std::streamsize>(w.bytes().size()));
    const std::uint64_t h = w.hash();
    char trailer[8];
    for (int i = 0; i < 8; ++i)
        trailer[i] = static_cast<char>(h >> (8 * i));
    out.write(trailer, 8);
    return static_cast<bool>(out);
}

constexpr std::uint64_t kMaxElements = 1ULL << 32;

} // namespace

bool
saveBayesianMlp(const bnn::BayesianMlp &net, const std::string &path)
{
    return saveWithHeader(path, Kind::BayesianMlp, [&](Writer &w) {
        const auto &sizes = net.layerSizes();
        w.u64(sizes.size());
        for (std::size_t s : sizes)
            w.u64(s);
        std::vector<float> params;
        net.gatherParams(params);
        w.floats(params);
    });
}

std::unique_ptr<bnn::BayesianMlp>
loadBayesianMlp(const std::string &path)
{
    auto reader = openFile(path, Kind::BayesianMlp);
    if (!reader)
        return nullptr;

    std::uint64_t count;
    if (!reader->u64(count) || count < 2 || count > 64) {
        warn("model_io: " + path + " has a bad layer count");
        return nullptr;
    }
    std::vector<std::size_t> sizes(count);
    for (auto &s : sizes) {
        std::uint64_t v;
        if (!reader->u64(v) || v == 0 || v > kMaxElements) {
            warn("model_io: " + path + " has a bad layer size");
            return nullptr;
        }
        s = static_cast<std::size_t>(v);
    }
    std::vector<float> params;
    if (!reader->floats(params, kMaxElements)) {
        warn("model_io: " + path + " parameter block truncated");
        return nullptr;
    }

    Rng init(0); // every value is overwritten by scatterParams
    auto net = std::make_unique<bnn::BayesianMlp>(sizes, init);
    if (params.size() != net->paramCount()) {
        warn("model_io: " + path + " parameter count mismatch");
        return nullptr;
    }
    net->scatterParams(params);
    return net;
}

bool
saveBayesianConvNet(const bnn::BayesianConvNet &net,
                    const std::string &path)
{
    return saveWithHeader(path, Kind::BayesianConvNet, [&](Writer &w) {
        const auto &cfg = net.config();
        w.u64(cfg.inChannels);
        w.u64(cfg.imageHeight);
        w.u64(cfg.imageWidth);
        w.u64(cfg.numClasses);
        w.u64(cfg.blocks.size());
        for (const auto &b : cfg.blocks) {
            w.u64(b.outChannels);
            w.u64(b.kernel);
            w.u64(b.stride);
            w.u64(b.pad);
            w.u32(b.pool ? 1 : 0);
            w.u64(b.poolWindow);
        }
        w.u64(cfg.denseHidden.size());
        for (std::size_t h : cfg.denseHidden)
            w.u64(h);
        std::vector<float> params;
        net.gatherParams(params);
        w.floats(params);
    });
}

std::unique_ptr<bnn::BayesianConvNet>
loadBayesianConvNet(const std::string &path)
{
    auto reader = openFile(path, Kind::BayesianConvNet);
    if (!reader)
        return nullptr;

    auto bad = [&](const char *what) {
        warn("model_io: " + path + " has a bad " + what);
        return nullptr;
    };

    nn::ConvNetConfig cfg;
    std::uint64_t v;
    if (!reader->u64(v) || v == 0 || v > 16)
        return bad("channel count");
    cfg.inChannels = static_cast<std::size_t>(v);
    if (!reader->u64(v) || v == 0 || v > 4096)
        return bad("image height");
    cfg.imageHeight = static_cast<std::size_t>(v);
    if (!reader->u64(v) || v == 0 || v > 4096)
        return bad("image width");
    cfg.imageWidth = static_cast<std::size_t>(v);
    if (!reader->u64(v) || v == 0 || v > 65536)
        return bad("class count");
    cfg.numClasses = static_cast<std::size_t>(v);

    std::uint64_t blocks;
    if (!reader->u64(blocks) || blocks > 32)
        return bad("block count");
    cfg.blocks.resize(blocks);
    for (auto &b : cfg.blocks) {
        std::uint32_t flag;
        if (!reader->u64(v) || v == 0 || v > 4096)
            return bad("block channels");
        b.outChannels = static_cast<std::size_t>(v);
        if (!reader->u64(v) || v == 0 || v > 64)
            return bad("kernel");
        b.kernel = static_cast<std::size_t>(v);
        if (!reader->u64(v) || v == 0 || v > 64)
            return bad("stride");
        b.stride = static_cast<std::size_t>(v);
        if (!reader->u64(v) || v >= b.kernel)
            return bad("pad");
        b.pad = static_cast<std::size_t>(v);
        if (!reader->u32(flag))
            return bad("pool flag");
        b.pool = flag != 0;
        if (!reader->u64(v) || v == 0 || v > 64)
            return bad("pool window");
        b.poolWindow = static_cast<std::size_t>(v);
    }
    std::uint64_t hidden;
    if (!reader->u64(hidden) || hidden > 32)
        return bad("hidden count");
    cfg.denseHidden.resize(hidden);
    for (auto &h : cfg.denseHidden) {
        if (!reader->u64(v) || v == 0 || v > kMaxElements)
            return bad("hidden size");
        h = static_cast<std::size_t>(v);
    }
    std::vector<float> params;
    if (!reader->floats(params, kMaxElements))
        return bad("parameter block");

    Rng init(0);
    auto net = std::make_unique<bnn::BayesianConvNet>(cfg, init);
    if (params.size() != net->paramCount())
        return bad("parameter count");
    net->scatterParams(params);
    return net;
}

bool
saveQuantizedNetwork(const accel::QuantizedNetwork &net,
                     const std::string &path)
{
    return saveWithHeader(path, Kind::QuantizedNetwork, [&](Writer &w) {
        w.u32(static_cast<std::uint32_t>(
            net.activationFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(
            net.activationFormat.fracBits()));
        w.u32(static_cast<std::uint32_t>(net.weightFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(net.weightFormat.fracBits()));
        w.u32(static_cast<std::uint32_t>(net.epsFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(net.epsFormat.fracBits()));
        w.u64(net.layers.size());
        for (const auto &layer : net.layers) {
            w.u64(layer.inDim);
            w.u64(layer.outDim);
            w.ints(layer.muWeight);
            w.ints(layer.sigmaWeight);
            w.ints(layer.muBias);
            w.ints(layer.sigmaBias);
        }
    });
}

std::unique_ptr<accel::QuantizedNetwork>
loadQuantizedNetwork(const std::string &path)
{
    auto reader = openFile(path, Kind::QuantizedNetwork);
    if (!reader)
        return nullptr;

    auto bad = [&](const char *what) {
        warn("model_io: " + path + " has a bad " + what);
        return nullptr;
    };

    std::uint32_t fmt[6];
    for (auto &f : fmt) {
        if (!reader->u32(f) || f > 32)
            return bad("fixed-point format");
    }
    auto net = std::make_unique<accel::QuantizedNetwork>();
    net->activationFormat = fixed::FixedPointFormat(
        static_cast<int>(fmt[0]), static_cast<int>(fmt[1]));
    net->weightFormat = fixed::FixedPointFormat(static_cast<int>(fmt[2]),
                                                static_cast<int>(fmt[3]));
    net->epsFormat = fixed::FixedPointFormat(static_cast<int>(fmt[4]),
                                             static_cast<int>(fmt[5]));

    std::uint64_t count;
    if (!reader->u64(count) || count == 0 || count > 64)
        return bad("layer count");
    net->layers.resize(count);
    for (auto &layer : net->layers) {
        std::uint64_t in, out;
        if (!reader->u64(in) || !reader->u64(out) || in == 0 ||
            out == 0 || in > kMaxElements || out > kMaxElements)
            return bad("layer dims");
        layer.inDim = static_cast<std::size_t>(in);
        layer.outDim = static_cast<std::size_t>(out);
        if (!reader->ints(layer.muWeight, kMaxElements) ||
            !reader->ints(layer.sigmaWeight, kMaxElements) ||
            !reader->ints(layer.muBias, kMaxElements) ||
            !reader->ints(layer.sigmaBias, kMaxElements))
            return bad("parameter plane");
        if (layer.muWeight.size() != layer.inDim * layer.outDim ||
            layer.sigmaWeight.size() != layer.inDim * layer.outDim ||
            layer.muBias.size() != layer.outDim ||
            layer.sigmaBias.size() != layer.outDim)
            return bad("plane shape");
    }
    return net;
}

} // namespace vibnn::core
