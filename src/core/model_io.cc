/**
 * @file
 * Model serialization (see model_io.hh).
 */

#include "core/model_io.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <vector>

#include "common/logging.hh"

namespace vibnn::core
{

namespace
{

constexpr char kMagic[8] = {'V', 'I', 'B', 'N', 'N', 'M', 'D', 'L'};
constexpr std::uint32_t kVersion = 1;

enum class Kind : std::uint32_t
{
    BayesianMlp = 1,
    QuantizedNetwork = 2,
    BayesianConvNet = 3,
    QuantizedProgram = 4,
};

/** Little-endian byte sink with a running FNV-1a checksum. */
class Writer
{
  public:
    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, 4);
        u32(bits);
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    floats(const std::vector<float> &vs)
    {
        u64(vs.size());
        for (float v : vs)
            f32(v);
    }

    void
    ints(const std::vector<std::int32_t> &vs)
    {
        u64(vs.size());
        for (std::int32_t v : vs)
            i32(v);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<std::uint8_t>(c));
    }

    std::uint64_t hash() const { return hash_; }
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    void
    byte(std::uint8_t b)
    {
        bytes_.push_back(b);
        hash_ = (hash_ ^ b) * 0x100000001B3ULL;
    }

    std::vector<std::uint8_t> bytes_;
    std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/** Bounds-checked little-endian reader with the same checksum. */
class Reader
{
  public:
    explicit Reader(std::vector<std::uint8_t> bytes)
        : bytes_(std::move(bytes))
    {
    }

    bool
    u32(std::uint32_t &v)
    {
        std::uint8_t b[4];
        if (!take(b, 4))
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        std::uint8_t b[8];
        if (!take(b, 8))
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return true;
    }

    bool
    f32(float &v)
    {
        std::uint32_t bits;
        if (!u32(bits))
            return false;
        std::memcpy(&v, &bits, 4);
        return true;
    }

    bool
    i32(std::int32_t &v)
    {
        std::uint32_t bits;
        if (!u32(bits))
            return false;
        v = static_cast<std::int32_t>(bits);
        return true;
    }

    bool
    floats(std::vector<float> &vs, std::uint64_t max_count)
    {
        // Bounding by the bytes actually present (4 per element) keeps
        // a crafted count field from forcing a huge allocation before
        // the data check.
        std::uint64_t n;
        if (!u64(n) || n > max_count || n > remaining() / 4)
            return false;
        vs.resize(n);
        for (auto &v : vs) {
            if (!f32(v))
                return false;
        }
        return true;
    }

    bool
    ints(std::vector<std::int32_t> &vs, std::uint64_t max_count)
    {
        std::uint64_t n;
        if (!u64(n) || n > max_count || n > remaining() / 4)
            return false;
        vs.resize(n);
        for (auto &v : vs) {
            if (!i32(v))
                return false;
        }
        return true;
    }

    bool
    str(std::string &s, std::uint64_t max_len)
    {
        std::uint64_t n;
        if (!u64(n) || n > max_len)
            return false;
        s.resize(n);
        for (auto &c : s) {
            std::uint8_t b;
            if (!take(&b, 1))
                return false;
            c = static_cast<char>(b);
        }
        return true;
    }

    std::uint64_t hash() const { return hash_; }
    std::size_t remaining() const { return bytes_.size() - at_; }

    /** Read the 8-byte trailer *without* folding it into the hash. */
    bool
    trailer(std::uint64_t &v)
    {
        if (remaining() != 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(bytes_[at_ + i]) << (8 * i);
        at_ += 8;
        return true;
    }

  private:
    bool
    take(std::uint8_t *out, std::size_t n)
    {
        if (at_ + n > bytes_.size())
            return false;
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = bytes_[at_ + i];
            hash_ = (hash_ ^ out[i]) * 0x100000001B3ULL;
        }
        at_ += n;
        return true;
    }

    std::vector<std::uint8_t> bytes_;
    std::size_t at_ = 0;
    std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/** Read a whole file and verify magic/version/kind/checksum. Returns
 *  a Reader positioned after the header, or nullptr. */
std::unique_ptr<Reader>
openFile(const std::string &path, Kind expected)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("model_io: cannot open " + path);
        return nullptr;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    if (bytes.size() < sizeof(kMagic) + 8 + 8) {
        warn("model_io: " + path + " is truncated");
        return nullptr;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        warn("model_io: " + path + " has wrong magic");
        return nullptr;
    }

    // Verify the checksum over everything between magic and trailer.
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
        if (i < sizeof(kMagic))
            continue;
        hash = (hash ^ bytes[i]) * 0x100000001B3ULL;
    }
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        stored |= static_cast<std::uint64_t>(
                      bytes[bytes.size() - 8 + i])
            << (8 * i);
    }
    if (hash != stored) {
        warn("model_io: " + path + " failed checksum (corrupted)");
        return nullptr;
    }

    auto reader = std::make_unique<Reader>(std::vector<std::uint8_t>(
        bytes.begin() + sizeof(kMagic), bytes.end()));
    std::uint32_t version, kind;
    if (!reader->u32(version) || version != kVersion) {
        warn("model_io: " + path + " has unsupported version");
        return nullptr;
    }
    if (!reader->u32(kind) ||
        kind != static_cast<std::uint32_t>(expected)) {
        warn("model_io: " + path + " holds a different model kind");
        return nullptr;
    }
    return reader;
}

/** Write magic + (version, kind, payload) + checksum trailer. The
 *  checksum covers version/kind/payload only, matching openFile. */
bool
saveWithHeader(const std::string &path, Kind kind,
               const std::function<void(Writer &)> &payload)
{
    Writer w;
    w.u32(kVersion);
    w.u32(static_cast<std::uint32_t>(kind));
    payload(w);

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("model_io: cannot open " + path + " for writing");
        return false;
    }
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char *>(w.bytes().data()),
              static_cast<std::streamsize>(w.bytes().size()));
    const std::uint64_t h = w.hash();
    char trailer[8];
    for (int i = 0; i < 8; ++i)
        trailer[i] = static_cast<char>(h >> (8 * i));
    out.write(trailer, 8);
    return static_cast<bool>(out);
}

constexpr std::uint64_t kMaxElements = 1ULL << 32;
/** Program bounds shared by writer (save refusal) and reader
 *  (rejection), so a successful save always round-trips byte-exact. */
constexpr std::uint64_t kMaxLabel = 256;
constexpr std::uint64_t kMaxOps = 256;

/** True when (total, frac) is a constructible FixedPointFormat —
 *  checked before construction so corrupt headers are rejected with
 *  nullptr instead of tripping the constructor's assertion. */
bool
validFormatPair(std::uint32_t total, std::uint32_t frac)
{
    return total >= 2 && total <= 32 && frac < total;
}

} // namespace

bool
saveBayesianMlp(const bnn::BayesianMlp &net, const std::string &path)
{
    return saveWithHeader(path, Kind::BayesianMlp, [&](Writer &w) {
        const auto &sizes = net.layerSizes();
        w.u64(sizes.size());
        for (std::size_t s : sizes)
            w.u64(s);
        std::vector<float> params;
        net.gatherParams(params);
        w.floats(params);
    });
}

std::unique_ptr<bnn::BayesianMlp>
loadBayesianMlp(const std::string &path)
{
    auto reader = openFile(path, Kind::BayesianMlp);
    if (!reader)
        return nullptr;

    std::uint64_t count;
    if (!reader->u64(count) || count < 2 || count > 64) {
        warn("model_io: " + path + " has a bad layer count");
        return nullptr;
    }
    std::vector<std::size_t> sizes(count);
    for (auto &s : sizes) {
        std::uint64_t v;
        if (!reader->u64(v) || v == 0 || v > kMaxElements) {
            warn("model_io: " + path + " has a bad layer size");
            return nullptr;
        }
        s = static_cast<std::size_t>(v);
    }
    std::vector<float> params;
    if (!reader->floats(params, kMaxElements)) {
        warn("model_io: " + path + " parameter block truncated");
        return nullptr;
    }

    Rng init(0); // every value is overwritten by scatterParams
    auto net = std::make_unique<bnn::BayesianMlp>(sizes, init);
    if (params.size() != net->paramCount()) {
        warn("model_io: " + path + " parameter count mismatch");
        return nullptr;
    }
    net->scatterParams(params);
    return net;
}

bool
saveBayesianConvNet(const bnn::BayesianConvNet &net,
                    const std::string &path)
{
    return saveWithHeader(path, Kind::BayesianConvNet, [&](Writer &w) {
        const auto &cfg = net.config();
        w.u64(cfg.inChannels);
        w.u64(cfg.imageHeight);
        w.u64(cfg.imageWidth);
        w.u64(cfg.numClasses);
        w.u64(cfg.blocks.size());
        for (const auto &b : cfg.blocks) {
            w.u64(b.outChannels);
            w.u64(b.kernel);
            w.u64(b.stride);
            w.u64(b.pad);
            w.u32(b.pool ? 1 : 0);
            w.u64(b.poolWindow);
        }
        w.u64(cfg.denseHidden.size());
        for (std::size_t h : cfg.denseHidden)
            w.u64(h);
        std::vector<float> params;
        net.gatherParams(params);
        w.floats(params);
    });
}

std::unique_ptr<bnn::BayesianConvNet>
loadBayesianConvNet(const std::string &path)
{
    auto reader = openFile(path, Kind::BayesianConvNet);
    if (!reader)
        return nullptr;

    auto bad = [&](const char *what) {
        warn("model_io: " + path + " has a bad " + what);
        return nullptr;
    };

    nn::ConvNetConfig cfg;
    std::uint64_t v;
    if (!reader->u64(v) || v == 0 || v > 16)
        return bad("channel count");
    cfg.inChannels = static_cast<std::size_t>(v);
    if (!reader->u64(v) || v == 0 || v > 4096)
        return bad("image height");
    cfg.imageHeight = static_cast<std::size_t>(v);
    if (!reader->u64(v) || v == 0 || v > 4096)
        return bad("image width");
    cfg.imageWidth = static_cast<std::size_t>(v);
    if (!reader->u64(v) || v == 0 || v > 65536)
        return bad("class count");
    cfg.numClasses = static_cast<std::size_t>(v);

    std::uint64_t blocks;
    if (!reader->u64(blocks) || blocks > 32)
        return bad("block count");
    cfg.blocks.resize(blocks);
    for (auto &b : cfg.blocks) {
        std::uint32_t flag;
        if (!reader->u64(v) || v == 0 || v > 4096)
            return bad("block channels");
        b.outChannels = static_cast<std::size_t>(v);
        if (!reader->u64(v) || v == 0 || v > 64)
            return bad("kernel");
        b.kernel = static_cast<std::size_t>(v);
        if (!reader->u64(v) || v == 0 || v > 64)
            return bad("stride");
        b.stride = static_cast<std::size_t>(v);
        if (!reader->u64(v) || v >= b.kernel)
            return bad("pad");
        b.pad = static_cast<std::size_t>(v);
        if (!reader->u32(flag))
            return bad("pool flag");
        b.pool = flag != 0;
        if (!reader->u64(v) || v == 0 || v > 64)
            return bad("pool window");
        b.poolWindow = static_cast<std::size_t>(v);
    }
    std::uint64_t hidden;
    if (!reader->u64(hidden) || hidden > 32)
        return bad("hidden count");
    cfg.denseHidden.resize(hidden);
    for (auto &h : cfg.denseHidden) {
        if (!reader->u64(v) || v == 0 || v > kMaxElements)
            return bad("hidden size");
        h = static_cast<std::size_t>(v);
    }
    std::vector<float> params;
    if (!reader->floats(params, kMaxElements))
        return bad("parameter block");

    Rng init(0);
    auto net = std::make_unique<bnn::BayesianConvNet>(cfg, init);
    if (params.size() != net->paramCount())
        return bad("parameter count");
    net->scatterParams(params);
    return net;
}

bool
saveQuantizedNetwork(const accel::QuantizedNetwork &net,
                     const std::string &path)
{
    return saveWithHeader(path, Kind::QuantizedNetwork, [&](Writer &w) {
        w.u32(static_cast<std::uint32_t>(
            net.activationFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(
            net.activationFormat.fracBits()));
        w.u32(static_cast<std::uint32_t>(net.weightFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(net.weightFormat.fracBits()));
        w.u32(static_cast<std::uint32_t>(net.epsFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(net.epsFormat.fracBits()));
        w.u64(net.layers.size());
        for (const auto &layer : net.layers) {
            w.u64(layer.inDim);
            w.u64(layer.outDim);
            w.ints(layer.muWeight);
            w.ints(layer.sigmaWeight);
            w.ints(layer.muBias);
            w.ints(layer.sigmaBias);
        }
    });
}

std::unique_ptr<accel::QuantizedNetwork>
loadQuantizedNetwork(const std::string &path)
{
    auto reader = openFile(path, Kind::QuantizedNetwork);
    if (!reader)
        return nullptr;

    auto bad = [&](const char *what) {
        warn("model_io: " + path + " has a bad " + what);
        return nullptr;
    };

    std::uint32_t fmt[6];
    for (auto &f : fmt) {
        if (!reader->u32(f))
            return bad("fixed-point format");
    }
    for (int i = 0; i < 6; i += 2) {
        if (!validFormatPair(fmt[i], fmt[i + 1]))
            return bad("fixed-point format");
    }
    auto net = std::make_unique<accel::QuantizedNetwork>();
    net->activationFormat = fixed::FixedPointFormat(
        static_cast<int>(fmt[0]), static_cast<int>(fmt[1]));
    net->weightFormat = fixed::FixedPointFormat(static_cast<int>(fmt[2]),
                                                static_cast<int>(fmt[3]));
    net->epsFormat = fixed::FixedPointFormat(static_cast<int>(fmt[4]),
                                             static_cast<int>(fmt[5]));

    std::uint64_t count;
    if (!reader->u64(count) || count == 0 || count > 64)
        return bad("layer count");
    net->layers.resize(count);
    for (auto &layer : net->layers) {
        std::uint64_t in, out;
        if (!reader->u64(in) || !reader->u64(out) || in == 0 ||
            out == 0 || in > kMaxElements || out > kMaxElements)
            return bad("layer dims");
        layer.inDim = static_cast<std::size_t>(in);
        layer.outDim = static_cast<std::size_t>(out);
        if (!reader->ints(layer.muWeight, kMaxElements) ||
            !reader->ints(layer.sigmaWeight, kMaxElements) ||
            !reader->ints(layer.muBias, kMaxElements) ||
            !reader->ints(layer.sigmaBias, kMaxElements))
            return bad("parameter plane");
        if (layer.muWeight.size() != layer.inDim * layer.outDim ||
            layer.sigmaWeight.size() != layer.inDim * layer.outDim ||
            layer.muBias.size() != layer.outDim ||
            layer.sigmaBias.size() != layer.outDim)
            return bad("plane shape");
    }
    return net;
}

bool
saveQuantizedProgram(const accel::QuantizedProgram &program,
                     const std::string &path)
{
    // Refuse the size bounds the loader enforces, so well-formed
    // programs always round-trip byte-identically. (Structural
    // validity — plane shapes, conv geometry — remains the loader's
    // job, exactly as for freshly compiled programs.)
    if (program.ops.empty() || program.ops.size() > kMaxOps) {
        warn("model_io: refusing to save program with " +
             std::to_string(program.ops.size()) + " ops");
        return false;
    }
    for (const auto &op : program.ops) {
        if (op.label.size() > kMaxLabel) {
            warn("model_io: refusing to save op label longer than " +
                 std::to_string(kMaxLabel) + " chars");
            return false;
        }
    }
    return saveWithHeader(path, Kind::QuantizedProgram, [&](Writer &w) {
        w.u32(static_cast<std::uint32_t>(
            program.activationFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(
            program.activationFormat.fracBits()));
        w.u32(static_cast<std::uint32_t>(
            program.weightFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(
            program.weightFormat.fracBits()));
        w.u32(static_cast<std::uint32_t>(program.epsFormat.totalBits()));
        w.u32(static_cast<std::uint32_t>(program.epsFormat.fracBits()));
        w.u64(program.ops.size());
        for (const auto &op : program.ops) {
            w.u32(static_cast<std::uint32_t>(op.kind));
            w.str(op.label);
            w.u64(op.inSize);
            w.u64(op.outSize);
            w.u32(op.relu ? 1 : 0);
            w.u64(op.bank.inDim);
            w.u64(op.bank.outDim);
            w.ints(op.bank.muWeight);
            w.ints(op.bank.sigmaWeight);
            w.ints(op.bank.muBias);
            w.ints(op.bank.sigmaBias);
            // Conv / pool geometry: written for every op (defaults for
            // the kinds that don't use them) so records stay
            // fixed-shape.
            w.u64(op.conv.inChannels);
            w.u64(op.conv.inHeight);
            w.u64(op.conv.inWidth);
            w.u64(op.conv.outChannels);
            w.u64(op.conv.kernel);
            w.u64(op.conv.stride);
            w.u64(op.conv.pad);
            w.u64(op.pool.channels);
            w.u64(op.pool.inHeight);
            w.u64(op.pool.inWidth);
            w.u64(op.pool.window);
            w.u64(op.pool.stride);
        }
    });
}

std::unique_ptr<accel::QuantizedProgram>
loadQuantizedProgram(const std::string &path)
{
    auto reader = openFile(path, Kind::QuantizedProgram);
    if (!reader)
        return nullptr;

    auto bad = [&](const char *what) {
        warn("model_io: " + path + " has a bad " + what);
        return nullptr;
    };

    std::uint32_t fmt[6];
    for (auto &f : fmt) {
        if (!reader->u32(f))
            return bad("fixed-point format");
    }
    for (int i = 0; i < 6; i += 2) {
        if (!validFormatPair(fmt[i], fmt[i + 1]))
            return bad("fixed-point format");
    }
    auto program = std::make_unique<accel::QuantizedProgram>();
    program->activationFormat = fixed::FixedPointFormat(
        static_cast<int>(fmt[0]), static_cast<int>(fmt[1]));
    program->weightFormat = fixed::FixedPointFormat(
        static_cast<int>(fmt[2]), static_cast<int>(fmt[3]));
    program->epsFormat = fixed::FixedPointFormat(static_cast<int>(fmt[4]),
                                                 static_cast<int>(fmt[5]));

    std::uint64_t count;
    if (!reader->u64(count) || count == 0 || count > kMaxOps)
        return bad("op count");
    program->ops.resize(count);
    for (auto &op : program->ops) {
        std::uint32_t kind, relu;
        std::uint64_t v;
        if (!reader->u32(kind) ||
            kind > static_cast<std::uint32_t>(accel::OpKind::Output))
            return bad("op kind");
        op.kind = static_cast<accel::OpKind>(kind);
        if (!reader->str(op.label, kMaxLabel))
            return bad("op label");
        if (!reader->u64(v) || v > kMaxElements)
            return bad("op input size");
        op.inSize = static_cast<std::size_t>(v);
        if (!reader->u64(v) || v > kMaxElements)
            return bad("op output size");
        op.outSize = static_cast<std::size_t>(v);
        if (!reader->u32(relu))
            return bad("relu flag");
        op.relu = relu != 0;

        std::uint64_t in, out;
        if (!reader->u64(in) || !reader->u64(out) ||
            in > kMaxElements || out > kMaxElements)
            return bad("bank dims");
        op.bank.inDim = static_cast<std::size_t>(in);
        op.bank.outDim = static_cast<std::size_t>(out);
        if (!reader->ints(op.bank.muWeight, kMaxElements) ||
            !reader->ints(op.bank.sigmaWeight, kMaxElements) ||
            !reader->ints(op.bank.muBias, kMaxElements) ||
            !reader->ints(op.bank.sigmaBias, kMaxElements))
            return bad("parameter plane");
        if (op.isCompute()) {
            if (op.bank.muWeight.size() !=
                    op.bank.inDim * op.bank.outDim ||
                op.bank.sigmaWeight.size() !=
                    op.bank.inDim * op.bank.outDim ||
                op.bank.muBias.size() != op.bank.outDim ||
                op.bank.sigmaBias.size() != op.bank.outDim)
                return bad("plane shape");
        } else if (!op.bank.muWeight.empty() ||
                   !op.bank.sigmaWeight.empty() ||
                   !op.bank.muBias.empty() ||
                   !op.bank.sigmaBias.empty()) {
            // Staging ops carry no parameters; reject smuggled planes.
            return bad("plane shape");
        }

        std::uint64_t geo[7];
        for (auto &g : geo) {
            if (!reader->u64(g) || g > kMaxElements)
                return bad("conv geometry");
        }
        op.conv.inChannels = static_cast<std::size_t>(geo[0]);
        op.conv.inHeight = static_cast<std::size_t>(geo[1]);
        op.conv.inWidth = static_cast<std::size_t>(geo[2]);
        op.conv.outChannels = static_cast<std::size_t>(geo[3]);
        op.conv.kernel = static_cast<std::size_t>(geo[4]);
        op.conv.stride = static_cast<std::size_t>(geo[5]);
        op.conv.pad = static_cast<std::size_t>(geo[6]);
        if (op.kind == accel::OpKind::ConvLowered && !op.conv.valid())
            return bad("conv geometry");

        std::uint64_t pg[5];
        for (auto &g : pg) {
            if (!reader->u64(g) || g > kMaxElements)
                return bad("pool geometry");
        }
        op.pool.channels = static_cast<std::size_t>(pg[0]);
        op.pool.inHeight = static_cast<std::size_t>(pg[1]);
        op.pool.inWidth = static_cast<std::size_t>(pg[2]);
        op.pool.window = static_cast<std::size_t>(pg[3]);
        op.pool.stride = static_cast<std::size_t>(pg[4]);
        if (op.kind == accel::OpKind::Pool && !op.pool.valid())
            return bad("pool geometry");
    }
    return program;
}

} // namespace vibnn::core
