/**
 * @file
 * Model serialization — the deployment-image flow of the paper made
 * durable.
 *
 * The paper trains on CPU/GPU and migrates the variational parameters
 * (mu, sigma) to the FPGA's memory (Section 2.2). This module provides
 * the file formats for exactly that hand-off:
 *
 *  - a trained BayesianMlp / BayesianConvNet (float mu/rho, so training
 *    can resume and requantization at other bit-lengths is possible);
 *  - a QuantizedNetwork (the raw integer planes the accelerator loads —
 *    the actual deployment image);
 *  - a QuantizedProgram (the compiled op list any executor backend
 *    runs — caching one skips the compile step on later runs).
 *
 * Format: little-endian binary; magic "VIBNNMDL", format version, a
 * kind tag, the payload, and an FNV-1a checksum trailer. Loaders return
 * nullptr (with a warn()) on any structural or checksum failure —
 * corrupted images must never reach the accelerator.
 */

#ifndef VIBNN_CORE_MODEL_IO_HH
#define VIBNN_CORE_MODEL_IO_HH

#include <memory>
#include <string>

#include "accel/config.hh"
#include "accel/program.hh"
#include "bnn/bayesian_cnn.hh"
#include "bnn/bayesian_mlp.hh"

namespace vibnn::core
{

/** Save a trained Bayesian MLP. @return false on IO failure. */
bool saveBayesianMlp(const bnn::BayesianMlp &net, const std::string &path);

/** Load a Bayesian MLP; nullptr (after warn()) on any failure. */
std::unique_ptr<bnn::BayesianMlp>
loadBayesianMlp(const std::string &path);

/** Save a trained Bayesian ConvNet. @return false on IO failure. */
bool saveBayesianConvNet(const bnn::BayesianConvNet &net,
                         const std::string &path);

/** Load a Bayesian ConvNet; nullptr (after warn()) on any failure. */
std::unique_ptr<bnn::BayesianConvNet>
loadBayesianConvNet(const std::string &path);

/** Save a quantized deployment image. @return false on IO failure. */
bool saveQuantizedNetwork(const accel::QuantizedNetwork &net,
                          const std::string &path);

/** Load a quantized deployment image; nullptr on any failure. */
std::unique_ptr<accel::QuantizedNetwork>
loadQuantizedNetwork(const std::string &path);

/** Save a compiled program (same tagged + FNV-1a checksum container),
 *  so compiled CNN programs can be cached across runs instead of
 *  recompiled. @return false on IO failure. */
bool saveQuantizedProgram(const accel::QuantizedProgram &program,
                          const std::string &path);

/** Load a compiled program; nullptr (after warn()) on any failure.
 *  Callers validate against their AcceleratorConfig exactly as the
 *  executors do for freshly compiled programs. */
std::unique_ptr<accel::QuantizedProgram>
loadQuantizedProgram(const std::string &path);

} // namespace vibnn::core

#endif // VIBNN_CORE_MODEL_IO_HH
