/**
 * @file
 * GRNG playground: draw from every Gaussian generator in the library,
 * print an ASCII histogram and the headline statistics. A quick way to
 * *see* the difference between the hardware designs and the software
 * baselines.
 *
 * Run:  ./build/examples/grng_playground [generator-id ...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "grng/registry.hh"
#include "stats/histogram.hh"
#include "stats/ks_test.hh"
#include "stats/moments.hh"
#include "stats/runs_test.hh"

using namespace vibnn;

namespace
{

void
showGenerator(const std::string &id)
{
    auto gen = grng::makeGenerator(id, 20180324);
    std::vector<double> xs(100000);
    for (auto &x : xs)
        x = gen->next();

    stats::RunningMoments m;
    m.add(xs);
    const auto runs = stats::runsTest(
        std::vector<double>(xs.begin(), xs.begin() + 10000));
    const auto ks = stats::ksTestStandardNormal(xs);

    std::printf("\n--- %s ---\n", gen->name().c_str());
    std::printf("mean %+.4f  stddev %.4f  skew %+.3f  ex.kurtosis "
                "%+.3f\n",
                m.mean(), m.stddev(), m.skewness(), m.excessKurtosis());
    std::printf("runs test z=%+.2f (%s)   KS D=%.4f\n", runs.z,
                runs.passed ? "pass" : "FAIL", ks.statistic);

    stats::Histogram hist(-4.0, 4.0, 17);
    hist.add(xs);
    std::fputs(hist.renderAscii(48).c_str(), stdout);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> ids;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            ids.emplace_back(argv[i]);
    } else {
        ids = {"rlf", "bnnwallace", "wallace-nss", "wallace-1024",
               "philox", "clt-lfsr", "ziggurat"};
    }
    for (const auto &id : ids)
        showGenerator(id);

    std::printf("\n(all generator ids: ");
    for (const auto &id : grng::generatorIds())
        std::printf("%s ", id.c_str());
    std::printf(")\n");
    return 0;
}
