/**
 * @file
 * Uncertainty on image classification — the "why BNNs" demo.
 *
 * Trains a compact BNN on synthetic MNIST, then shows the predictive
 * entropy (the uncertainty estimate conventional networks lack) on
 * three kinds of inputs: clean digits, heavily corrupted digits, and
 * pure noise. The entropy rises with corruption — exactly the
 * behaviour that lets a deployed system say "I don't know".
 *
 * Run:  ./build/examples/mnist_uncertainty
 */

#include <cstdio>

#include "bnn/bnn_trainer.hh"
#include "data/synth_mnist.hh"

using namespace vibnn;

int
main()
{
    data::SynthMnistConfig mnist_config;
    mnist_config.trainCount = 1500;
    mnist_config.testCount = 300;
    mnist_config.seed = 20180324;
    const auto ds = data::makeSynthMnist(mnist_config);

    Rng rng(3);
    bnn::BayesianMlp net({784, 100, 10}, rng);
    bnn::BnnTrainConfig config;
    config.epochs = 8;
    config.batchSize = 32;
    config.learningRate = 1e-3f;
    config.seed = 5;
    std::printf("training a 784-100-10 BNN on %zu synthetic digits...\n",
                ds.train.count());
    trainBnn(net, ds.train.view(), config);
    std::printf("test accuracy (8-sample MC ensemble): %.2f%%\n\n",
                100 * evaluateBnnAccuracy(net, ds.test.view(), 8, 11));

    // Show one clean digit.
    const float *clean = ds.test.sample(0);
    std::printf("a clean test digit (label %d):\n%s\n",
                ds.test.labels[0], data::asciiDigit(clean).c_str());

    Rng noise_rng(17);
    auto corrupted = [&](double noise_level) {
        std::vector<float> img(clean, clean + 784);
        for (auto &p : img) {
            p = static_cast<float>(
                std::clamp(p + noise_rng.gaussian(0.0, noise_level),
                           0.0, 1.0));
        }
        return img;
    };

    Rng eps_rng(23);
    std::printf("predictive entropy vs input corruption "
                "(64 MC samples):\n");
    std::printf("  %-28s %8s\n", "input", "entropy");
    std::printf("  %-28s %8.4f\n", "clean digit",
                net.predictiveEntropy(clean, 64, eps_rng));
    for (double noise : {0.2, 0.5, 1.0}) {
        const auto img = corrupted(noise);
        std::printf("  noise sigma = %-14.1f %8.4f\n", noise,
                    net.predictiveEntropy(img.data(), 64, eps_rng));
    }
    {
        std::vector<float> pure_noise(784);
        for (auto &p : pure_noise)
            p = static_cast<float>(noise_rng.uniform());
        std::printf("  %-28s %8.4f\n", "uniform pixel noise",
                    net.predictiveEntropy(pure_noise.data(), 64,
                                          eps_rng));
    }
    std::printf("\n(max possible entropy for 10 classes: ln 10 = "
                "2.3026)\n");
    return 0;
}
