/**
 * @file
 * Uncertainty on image classification — the "why BNNs" demo, served
 * through the InferenceSession API.
 *
 * Trains a compact BNN on synthetic MNIST, wraps it in a serving
 * session on the modeled 8-bit hardware path, and shows the
 * uncertainty decomposition every InferenceResult carries — predictive
 * entropy (total), mutual information / BALD (epistemic) and max-prob
 * confidence — on three kinds of inputs: clean digits, heavily
 * corrupted digits, and pure noise. The uncertainty rises with
 * corruption — exactly the behaviour that lets a deployed system say
 * "I don't know". The float software ensemble's entropy is printed
 * alongside as the reference.
 *
 * Run:  ./build/examples/mnist_uncertainty
 */

#include <algorithm>
#include <cstdio>

#include "bnn/bnn_trainer.hh"
#include "data/synth_mnist.hh"
#include "serve/session.hh"

using namespace vibnn;

int
main()
{
    data::SynthMnistConfig mnist_config;
    mnist_config.trainCount = 1500;
    mnist_config.testCount = 300;
    mnist_config.seed = 20180324;
    const auto ds = data::makeSynthMnist(mnist_config);

    Rng rng(3);
    bnn::BayesianMlp net({784, 100, 10}, rng);
    bnn::BnnTrainConfig config;
    config.epochs = 8;
    config.batchSize = 32;
    config.learningRate = 1e-3f;
    config.seed = 5;
    std::printf("training a 784-100-10 BNN on %zu synthetic digits...\n",
                ds.train.count());
    trainBnn(net, ds.train.view(), config);
    std::printf("test accuracy (8-sample MC ensemble): %.2f%%\n\n",
                100 * evaluateBnnAccuracy(net, ds.test.view(), 8, 11));

    // A serving session over the same model on the modeled hardware
    // path: 64 MC samples per request, top-3 reported per image. The
    // 100-wide hidden layer bounds the PE-set count via the
    // write-drain condition, so use an 8x8 geometry.
    accel::AcceleratorConfig accel_config;
    accel_config.peSets = 8;
    accel_config.pesPerSet = 8;
    auto session = serve::InferenceSession::Builder()
                       .model(net)
                       .accelerator(accel_config)
                       .grng("rlf")
                       .seed(41)
                       .mcSamples(64)
                       .topK(3)
                       .build();

    // Show one clean digit.
    const float *clean = ds.test.sample(0);
    std::printf("a clean test digit (label %d):\n%s\n",
                ds.test.labels[0], data::asciiDigit(clean).c_str());

    Rng noise_rng(17);
    auto corrupted = [&](double noise_level) {
        std::vector<float> img(clean, clean + 784);
        for (auto &p : img) {
            p = static_cast<float>(
                std::clamp(p + noise_rng.gaussian(0.0, noise_level),
                           0.0, 1.0));
        }
        return img;
    };

    Rng eps_rng(23);
    const auto probe = [&](const char *label, const float *img) {
        const auto result =
            session->run(serve::InferenceRequest::borrow(img, 1, 784));
        const auto &p = result.predictions.front();
        // Reference: the float software ensemble's entropy.
        const double sw_entropy = net.predictiveEntropy(img, 64, eps_rng);
        std::printf("  %-24s %5zu %8.2f %9.4f %7.4f %11.4f\n", label,
                    p.predicted, 100.0 * p.confidence, p.entropy,
                    p.mutualInformation, sw_entropy);
    };

    std::printf("uncertainty vs input corruption "
                "(64-sample MC ensemble, 8-bit hardware path):\n");
    std::printf("  %-24s %5s %8s %9s %7s %11s\n", "input", "class",
                "conf%", "entropy", "MI", "sw-entropy");
    probe("clean digit", clean);
    for (double noise : {0.2, 0.5, 1.0}) {
        const auto img = corrupted(noise);
        char label[32];
        std::snprintf(label, sizeof label, "noise sigma = %.1f", noise);
        probe(label, img.data());
    }
    {
        std::vector<float> pure_noise(784);
        for (auto &p : pure_noise)
            p = static_cast<float>(noise_rng.uniform());
        probe("uniform pixel noise", pure_noise.data());
    }
    std::printf("\n(max possible entropy for 10 classes: ln 10 = "
                "2.3026; MI is the epistemic share of the entropy)\n");
    return 0;
}
