/**
 * @file
 * Design-space exploration for a user-supplied network — the Section
 * 5.4 joint-optimization flow as a user would actually run it: describe
 * the network, enumerate PE geometries under the paper's constraint
 * system, and pick a deployment point off the throughput/ALM Pareto
 * frontier.
 *
 * Run:  ./build/examples/design_explorer [in hidden... out]
 *       (defaults to the paper's 784-200-200-10)
 */

#include <cstdio>
#include <cstdlib>

#include "accel/design_space.hh"

using namespace vibnn;
using namespace vibnn::accel;

int
main(int argc, char **argv)
{
    std::vector<std::size_t> layers{784, 200, 200, 10};
    if (argc > 1) {
        layers.clear();
        for (int i = 1; i < argc; ++i) {
            const long v = std::strtol(argv[i], nullptr, 10);
            if (v <= 0) {
                std::fprintf(stderr, "bad layer size: %s\n", argv[i]);
                return 1;
            }
            layers.push_back(static_cast<std::size_t>(v));
        }
        if (layers.size() < 2) {
            std::fprintf(stderr, "need at least input and output\n");
            return 1;
        }
    }

    std::printf("network:");
    for (std::size_t s : layers)
        std::printf(" %zu", s);
    std::printf("\n\n");

    ExplorerOptions options;
    options.peSetChoices = {2, 4, 8, 16, 32};
    options.peSizeChoices = {4, 8, 16};
    options.bitChoices = {8};
    options.mcSamples = 8;

    const auto points = exploreDesignSpace(layers, options);
    const auto frontier = paretoFrontier(points);

    std::size_t feasible = 0;
    for (const auto &p : points)
        feasible += p.feasible ? 1 : 0;
    std::printf("%zu candidates, %zu feasible, %zu on the "
                "throughput/ALM Pareto frontier:\n\n",
                points.size(), feasible, frontier.size());

    std::printf("%4s %5s %10s %12s %10s %10s %6s\n", "T", "S=N",
                "cyc/pass", "images/s", "images/J", "ALMs", "util");
    for (std::size_t idx : frontier) {
        const auto &p = points[idx];
        std::printf("%4d %5d %10llu %12.0f %10.0f %10.0f %6.2f\n",
                    p.config.peSets, p.config.pesPerSet,
                    static_cast<unsigned long long>(p.cyclesPerPass),
                    p.imagesPerSecond, p.imagesPerJoule,
                    p.estimate.total().alms, p.utilization);
    }

    // Recommend the highest-throughput feasible point that still fits
    // comfortably (< 90% ALMs).
    const DesignPoint *best = nullptr;
    for (std::size_t idx : frontier) {
        const auto &p = points[idx];
        if (p.estimate.total().alms < 0.9 * 113560 &&
            (!best || p.imagesPerSecond > best->imagesPerSecond)) {
            best = &p;
        }
    }
    if (best) {
        std::printf("\nrecommended deployment: T=%d PE-sets of S=N=%d "
                    "(%.0f images/s at %.1f MHz, %.0f mW)\n",
                    best->config.peSets, best->config.pesPerSet,
                    best->imagesPerSecond, best->estimate.fmaxMhz,
                    best->estimate.powerMw);
    }

    std::printf("\nwhy the rest of the space is closed:\n");
    std::size_t shown = 0;
    for (const auto &p : points) {
        if (!p.feasible && shown < 4) {
            std::printf("  T=%d S=N=%d: %s\n", p.config.peSets,
                        p.config.pesPerSet, p.reason.c_str());
            ++shown;
        }
    }
    return 0;
}
