/**
 * @file
 * Small-data medical diagnosis — the Table 7 scenario as a demo.
 *
 * The modified Parkinson task keeps only ~150 training recordings (the
 * paper relocates most data to the test set to create a small-data
 * scenario). A conventional FNN overfits; the BNN's ensemble-by-
 * construction behaviour holds up, and the 8-bit VIBNN hardware path
 * tracks it closely.
 *
 * Run:  ./build/examples/small_data_diagnosis
 */

#include <cstdio>

#include "core/vibnn.hh"
#include "data/tabular.hh"
#include "nn/trainer.hh"

using namespace vibnn;

int
main()
{
    const auto spec = data::parkinsonSpec(/*modified=*/true, 20180324);
    const auto ds = data::makeTabular(spec);
    std::printf("%s\n", ds.name.c_str());
    std::printf("train %zu samples / test %zu samples, %zu features\n\n",
                ds.train.count(), ds.test.count(), ds.train.dim);

    // Conventional FNN.
    Rng fnn_rng(1);
    nn::Mlp fnn({ds.train.dim, 64, 32, 2}, fnn_rng);
    nn::TrainConfig fnn_config;
    fnn_config.epochs = 200; // trained to convergence: it overfits
    fnn_config.learningRate = 2e-3f;
    fnn_config.seed = 2;
    trainMlp(fnn, ds.train.view(), fnn_config);
    const double fnn_train = evaluateAccuracy(fnn, ds.train.view());
    const double fnn_test = evaluateAccuracy(fnn, ds.test.view());

    // BNN through the full VIBNN flow.
    bnn::BnnTrainConfig bnn_config;
    bnn_config.epochs = 200;
    bnn_config.learningRate = 2e-3f;
    bnn_config.klWeight = 0.3f; // tempered ELBO for the tiny train set
    bnn_config.seed = 3;
    accel::AcceleratorConfig accel_config;
    accel_config.peSets = 2;
    accel_config.pesPerSet = 8;
    accel_config.mcSamples = 8;
    const auto system = core::VibnnSystem::train(ds, {64, 32},
                                                 bnn_config,
                                                 accel_config, "rlf");
    const double bnn_train =
        system.softwareAccuracy(ds.train.view(), 8, 7);
    const double bnn_test =
        system.softwareAccuracy(ds.test.view(), 8, 8);
    const double hw_test = system.hardwareAccuracy(ds.test.view());

    std::printf("%-26s %10s %10s\n", "model", "train acc", "test acc");
    std::printf("%-26s %9.2f%% %9.2f%%   <- overfits\n", "FNN",
                100 * fnn_train, 100 * fnn_test);
    std::printf("%-26s %9.2f%% %9.2f%%\n", "BNN (software)",
                100 * bnn_train, 100 * bnn_test);
    std::printf("%-26s %10s %9.2f%%\n", "VIBNN (8-bit hardware)", "-",
                100 * hw_test);

    std::printf("\ngeneralization gap: FNN %+.1f%%, BNN %+.1f%%\n",
                100 * (fnn_train - fnn_test),
                100 * (bnn_train - bnn_test));
    return 0;
}
