/**
 * @file
 * Accelerator deep-dive: load the paper's 784-200-200-10 network onto
 * the cycle-level simulator and dissect one inference pass — per-layer
 * cycle counts, memory traffic, GRN consumption, utilization — then
 * print the full itemized FPGA resource estimate and the Table 5
 * operating point.
 *
 * Run:  ./build/examples/accelerator_demo
 */

#include <cstdio>

#include "accel/simulator.hh"
#include "bnn/bayesian_mlp.hh"
#include "grng/registry.hh"
#include "hwmodel/network_hw.hh"

using namespace vibnn;

int
main()
{
    // Timing is weight-independent; an untrained network suffices.
    Rng rng(1);
    bnn::BayesianMlp net({784, 200, 200, 10}, rng);

    accel::AcceleratorConfig config; // the paper's 16x8x8 @ 8 bits
    const auto quantized = accel::quantizeNetwork(net, config);
    auto grng_instance = grng::makeGenerator("rlf", 7);
    accel::Simulator sim(quantized, config, grng_instance.get());

    std::vector<float> image(784, 0.5f);
    sim.runPass(image.data());
    const auto &stats = sim.stats();

    std::printf("VIBNN cycle-level simulation — one inference pass\n");
    std::printf("geometry: %d PE-sets x %d PEs x %d inputs @ %d-bit\n\n",
                config.peSets, config.pesPerSet, config.peInputs(),
                config.bits);
    for (std::size_t o = 0; o < stats.opCycles.size(); ++o) {
        const auto &op = sim.program().ops[o];
        std::printf("  op %zu %-16s (%4zu -> %4zu): %llu cycles\n",
                    o + 1, op.label.c_str(), op.inSize, op.outSize,
                    static_cast<unsigned long long>(
                        stats.opCycles[o]));
    }
    std::printf("  total: %llu cycles, %.1f%% PE utilization\n",
                static_cast<unsigned long long>(stats.totalCycles),
                100 * stats.utilization(config.totalPes(),
                                        config.peInputs()));
    std::printf("  IFMem reads %llu, writes %llu; WPMem reads %llu; "
                "GRN samples %llu; MACs %llu\n\n",
                static_cast<unsigned long long>(stats.ifmemReads),
                static_cast<unsigned long long>(stats.ifmemWrites),
                static_cast<unsigned long long>(stats.wpmemReads),
                static_cast<unsigned long long>(stats.grnSamples),
                static_cast<unsigned long long>(stats.macs));

    hw::NetworkHwConfig hw_config;
    hw_config.grng = hw::GrngKind::Rlf;
    const auto design = networkEstimate(hw_config);
    std::printf("FPGA resource estimate (%s):\n", design.name.c_str());
    for (const auto &c : design.components) {
        std::printf("  %-26s ALMs %8.0f  regs %7.0f  bits %9lld  "
                    "DSP %3d\n",
                    c.label.c_str(), c.resources.alms,
                    c.resources.registers,
                    static_cast<long long>(c.resources.memoryBits),
                    c.resources.dsps);
    }
    const auto perf =
        performanceFromCycles(design, stats.cyclesPerPass());
    std::printf("\noperating point: %.1f MHz, %.2f W -> %.0f images/s, "
                "%.0f images/J\n",
                perf.fsysMhz, perf.powerMw / 1000.0,
                perf.imagesPerSecond, perf.imagesPerJoule);
    return 0;
}
