/**
 * @file
 * Serving-layer smoke: the async request/response flow in one minute.
 *
 *   1. Train a small Bayesian MLP on a synthetic tabular task.
 *   2. Build an InferenceSession in Throughput mode (weight-reuse
 *      "batched" backend) — options overridable via the VIBNN_SERVE_*
 *      environment knobs.
 *   3. submit() a burst of single-image requests: the dispatcher
 *      coalesces everything pending into one per-round weight-reuse
 *      pass, so the burst costs T rounds instead of burst * T.
 *   4. Verify async results match synchronous run() bit for bit, and
 *      print the per-request uncertainty decorations.
 *
 * This is the CI smoke for docs/SERVING.md — fast at default scale.
 *
 * Run:  ./build/serve_smoke
 */

#include <cstdio>
#include <vector>

#include "common/env.hh"
#include "core/vibnn.hh"
#include "data/tabular.hh"
#include "serve/session.hh"

using namespace vibnn;

int
main()
{
    // 1. Data + model (19 features, 2 classes; quick to train).
    auto spec = data::retinopathySpec(envSeed());
    spec.trainCount = scaledCount(300);
    spec.testCount = 32;
    const auto dataset = data::makeTabular(spec);

    bnn::BnnTrainConfig train_config;
    train_config.epochs = scaledCount(20);
    train_config.learningRate = 2e-3f;
    train_config.seed = envSeed() + 1;

    accel::AcceleratorConfig accel_config;
    accel_config.peSets = 2;
    accel_config.pesPerSet = 8;
    accel_config.mcSamples = 8;

    const auto system = core::VibnnSystem::train(
        dataset, {32, 32}, train_config, accel_config, "rlf");

    // 2. The serving session. Environment knobs override the defaults
    // (e.g. VIBNN_SERVE_MODE=fidelity VIBNN_SERVE_T=16 ./serve_smoke).
    serve::SessionOptions defaults;
    defaults.mode = serve::ExecMode::Throughput;
    defaults.topK = 2;
    const auto opts = serve::SessionOptions::fromEnv(defaults);
    auto session = system.makeSession(opts);
    std::printf("session: backend=%s mode=%s T=%d threads=%zu\n",
                session->backendId().c_str(),
                execModeName(session->options().mode),
                session->options().mcSamples,
                session->options().threads);

    // 3. A burst of async single-image requests.
    const auto view = dataset.test.view();
    std::vector<serve::ResultHandle> handles;
    handles.reserve(view.count);
    for (std::size_t i = 0; i < view.count; ++i) {
        handles.push_back(session->submit(
            serve::InferenceRequest::borrow(view.sample(i), 1,
                                            view.dim)));
    }
    session->drain();

    // 4. Async must equal sync exactly (micro-batching is invisible).
    std::size_t mismatches = 0, correct = 0;
    double mean_entropy = 0.0;
    for (std::size_t i = 0; i < view.count; ++i) {
        auto async_result = handles[i].get();
        const auto sync_result = session->run(
            serve::InferenceRequest::borrow(view.sample(i), 1,
                                            view.dim));
        const auto &a = async_result.predictions.front();
        const auto &s = sync_result.predictions.front();
        if (a.predicted != s.predicted || a.probs != s.probs)
            ++mismatches;
        if (a.predicted == static_cast<std::size_t>(view.labels[i]))
            ++correct;
        mean_entropy += a.entropy;
    }
    const auto counters = session->counters();
    std::printf("burst: %zu requests -> %llu engine passes "
                "(largest coalesced pass: %llu requests)\n",
                view.count,
                static_cast<unsigned long long>(counters.passes) -
                    view.count, // subtract the sync verification runs
                static_cast<unsigned long long>(
                    counters.maxCoalescedRequests));
    std::printf("accuracy %.1f%%, mean predictive entropy %.3f nats\n",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(view.count),
                mean_entropy / static_cast<double>(view.count));
    std::printf("async vs sync: %s\n",
                mismatches == 0 ? "bit-exact" : "MISMATCH");
    return mismatches == 0 ? 0 : 1;
}
