/**
 * @file
 * Bayesian convolutional network on synthetic MNIST, deployed to the
 * modeled accelerator — the CNN instantiation the paper's Section 1
 * claims VIBNN's principles extend to ("the design principles of VIBNN
 * are orthogonal to the optimization techniques on convolutional
 * layers ... and can be applied to CNNs as well").
 *
 * The example:
 *   1. trains a small LeNet-style Bayesian CNN with Bayes-by-Backprop,
 *   2. compares it against the point-estimate CNN on the same split,
 *   3. shows the Monte-Carlo ensemble at work: predictive entropy
 *      separates clean digits from corrupted ones,
 *   4. saves the trained model and reloads it bit-exactly (the
 *      train-once / deploy-anywhere flow of Section 2.2),
 *   5. compiles the CNN into a QuantizedProgram and runs it on the
 *      accelerator: per-op cycle breakdown from the cycle-level
 *      simulator, bit-exactness against the fast functional path, and
 *      MC-ensemble accuracy on the hardware grids vs. the float
 *      software estimator.
 *
 * Run:  ./build/examples/bayesian_lenet
 * Knobs: VIBNN_SCALE (dataset size multiplier), VIBNN_SEED.
 */

#include <cstdio>

#include "accel/design_space.hh"
#include "bnn/bayesian_cnn.hh"
#include "common/env.hh"
#include "core/model_io.hh"
#include "core/vibnn.hh"
#include "data/synth_mnist.hh"
#include "nn/cnn.hh"
#include "serve/session.hh"

using namespace vibnn;

int
main()
{
    const double scale = envScale();
    const std::uint64_t seed = envSeed();

    // 1. A small synthetic-MNIST split (CNNs need fewer samples than
    // the 784-200-200-10 MLP benches, so default scale stays quick).
    data::SynthMnistConfig mnist;
    mnist.trainCount = static_cast<std::size_t>(600 * scale);
    mnist.testCount = static_cast<std::size_t>(300 * scale);
    mnist.seed = seed;
    const auto dataset = data::makeSynthMnist(mnist);
    std::printf("synthetic MNIST: %zu train / %zu test\n",
                dataset.train.count(), dataset.test.count());

    // 2. Shared LeNet-ish topology: conv5x5(8)-pool2 ->
    //    conv5x5(16)-pool2 -> dense 64 -> 10.
    const auto topology = nn::ConvNetConfig::lenetLike(10);

    // Point-estimate CNN baseline.
    {
        Rng init(seed + 1);
        nn::ConvNet fnn(topology, init);
        nn::TrainConfig cfg;
        cfg.epochs = 6;
        cfg.batchSize = 32;
        cfg.learningRate = 2e-3f;
        cfg.seed = seed + 2;
        trainConvNet(fnn, dataset.train.view(), cfg);
        std::printf("point-estimate CNN test accuracy:  %.2f%%\n",
                    100 * evaluateAccuracy(fnn, dataset.test.view()));
    }

    // Bayesian CNN, trained with Bayes-by-Backprop (LRT estimator).
    Rng init(seed + 3);
    bnn::BayesianConvNet bcnn(topology, init, /*rho_init=*/-5.0f);
    bnn::BnnTrainConfig cfg;
    cfg.epochs = 6;
    cfg.batchSize = 32;
    cfg.learningRate = 2e-3f;
    cfg.priorSigma = 0.3f;
    cfg.klWeight = 0.3f;
    cfg.evalSamples = 8;
    cfg.seed = seed + 4;
    trainBcnn(bcnn, dataset.train.view(), cfg);
    const double acc =
        evaluateBcnnAccuracy(bcnn, dataset.test.view(), 8, seed + 5);
    std::printf("Bayesian CNN test accuracy (MC-8):  %.2f%%\n",
                100 * acc);

    // 3. Uncertainty: clean digits vs. digits drowned in noise. The MC
    // ensemble's predictive entropy (paper equation (6) machinery)
    // flags the corrupted inputs a point estimate would silently
    // misclassify.
    auto ws = bcnn.makeWorkspace();
    Rng eval_rng(seed + 6);
    double clean_entropy = 0.0, noisy_entropy = 0.0;
    const std::size_t probes = 20;
    Rng noise_rng(seed + 7);
    std::vector<float> corrupted(bcnn.inputDim());
    for (std::size_t i = 0; i < probes; ++i) {
        const float *x = dataset.test.sample(i);
        clean_entropy +=
            bcnn.predictiveEntropy(x, 24, ws, eval_rng);
        for (std::size_t p = 0; p < corrupted.size(); ++p) {
            corrupted[p] = 0.5f * x[p] +
                static_cast<float>(noise_rng.uniform(0, 0.9));
        }
        noisy_entropy +=
            bcnn.predictiveEntropy(corrupted.data(), 24, ws, eval_rng);
    }
    std::printf("mean predictive entropy: clean %.3f nats, "
                "corrupted %.3f nats\n",
                clean_entropy / probes, noisy_entropy / probes);

    // 4. Deployment hand-off: save, reload, verify.
    const char *path = "/tmp/vibnn_bayesian_lenet.bin";
    if (core::saveBayesianConvNet(bcnn, path)) {
        auto reloaded = core::loadBayesianConvNet(path);
        if (reloaded) {
            const double racc = evaluateBcnnAccuracy(
                *reloaded, dataset.test.view(), 8, seed + 5);
            std::printf("reloaded from %s: accuracy %.2f%% "
                        "(%s)\n",
                        path, 100 * racc,
                        racc == acc ? "bit-exact" : "MISMATCH");
        }
    }

    // 5. Compile to the accelerator and run the whole CNN on the
    // modeled hardware. Geometry: the write-drain condition (equation
    // 14a) bounds T by the smallest bank input — conv1's 25-value
    // patch gives ceil(25/8) = 4 chunks, so T = 4 PE sets of S = N = 8.
    accel::AcceleratorConfig accel_cfg;
    accel_cfg.peSets = 4;
    accel_cfg.pesPerSet = 8;
    accel_cfg.bits = 8;
    accel_cfg.mcSamples = 8;
    const core::VibnnSystem sys(bcnn, accel_cfg, "rlf", seed + 8);

    std::printf("\ncompiled program (%zu ops) on %dx%dx%d @ %d-bit:\n",
                sys.program().ops.size(), accel_cfg.peSets,
                accel_cfg.pesPerSet, accel_cfg.peInputs(),
                accel_cfg.bits);
    const auto stats = sys.simulateTiming(dataset.test.view(), 1);
    for (std::size_t o = 0; o < sys.program().ops.size(); ++o) {
        const auto &op = sys.program().ops[o];
        std::printf("  %-24s %6zu -> %6zu  %8llu cycles\n",
                    op.label.c_str(), op.inSize, op.outSize,
                    static_cast<unsigned long long>(stats.opCycles[o]));
    }
    std::printf("  total %llu cycles/pass (analytic model: %llu)\n",
                static_cast<unsigned long long>(stats.totalCycles),
                static_cast<unsigned long long>(
                    predictProgramCycles(sys.program(), accel_cfg)));

    // Bit-exactness of the two executors on this program.
    {
        auto sim = sys.makeSimulator();
        auto fun = sys.makeFunctionalRunner();
        bool exact = true;
        for (int i = 0; i < 3; ++i) {
            exact = exact &&
                sim->runPass(dataset.test.sample(i)) ==
                    fun->runPass(dataset.test.sample(i));
        }
        std::printf("  simulator vs functional path: %s\n",
                    exact ? "bit-exact" : "MISMATCH");
    }

    // MC-ensemble accuracy on the 8-bit hardware path, served through
    // the InferenceSession request/response surface, vs. the float
    // software estimator above.
    nn::DataView hw_view = dataset.test.view();
    hw_view.count = std::min<std::size_t>(
        hw_view.count, static_cast<std::size_t>(60 * scale));
    const double sw_acc = evaluateBcnnAccuracy(bcnn, hw_view, 8,
                                               seed + 5);
    const auto serve_mode = [&](serve::ExecMode mode, double &acc) {
        serve::SessionOptions opts;
        opts.mode = mode;
        auto session = sys.makeSession(opts);
        const auto result =
            session->run(serve::InferenceRequest::borrow(hw_view));
        acc = result.accuracy(hw_view.labels);
        return result.micros / 1e6;
    };
    double fid_acc = 0.0, thr_acc = 0.0;
    const double fid_seconds = serve_mode(serve::ExecMode::Fidelity,
                                          fid_acc);
    std::printf("  accuracy on %zu images: software (float, direct) "
                "%.2f%%, accelerator (8-bit MC-8) %.2f%%\n",
                hw_view.count, 100 * sw_acc, 100 * fid_acc);

    // The same batch through the weight-reuse throughput mode: one
    // filter/weight sample per compute op per MC round, shared across
    // all images — T rounds instead of T x B passes.
    const double thr_seconds = serve_mode(serve::ExecMode::Throughput,
                                          thr_acc);
    std::printf("  throughput mode (weight reuse, MC-8 rounds): "
                "%.2f%% accuracy, %.1fx faster than fidelity mode\n",
                100 * thr_acc, fid_seconds / thr_seconds);
    return 0;
}
