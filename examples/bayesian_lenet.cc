/**
 * @file
 * Bayesian convolutional network on synthetic MNIST — the CNN
 * instantiation the paper's Section 1 claims VIBNN's principles extend
 * to ("the design principles of VIBNN are orthogonal to the
 * optimization techniques on convolutional layers ... and can be
 * applied to CNNs as well").
 *
 * The example:
 *   1. trains a small LeNet-style Bayesian CNN with Bayes-by-Backprop,
 *   2. compares it against the point-estimate CNN on the same split,
 *   3. shows the Monte-Carlo ensemble at work: predictive entropy
 *      separates clean digits from corrupted ones,
 *   4. saves the trained model and reloads it bit-exactly (the
 *      train-once / deploy-anywhere flow of Section 2.2).
 *
 * Run:  ./build/examples/bayesian_lenet
 * Knobs: VIBNN_SCALE (dataset size multiplier), VIBNN_SEED.
 */

#include <cstdio>

#include "bnn/bayesian_cnn.hh"
#include "common/env.hh"
#include "core/model_io.hh"
#include "data/synth_mnist.hh"
#include "nn/cnn.hh"

using namespace vibnn;

int
main()
{
    const double scale = envScale();
    const std::uint64_t seed = envSeed();

    // 1. A small synthetic-MNIST split (CNNs need fewer samples than
    // the 784-200-200-10 MLP benches, so default scale stays quick).
    data::SynthMnistConfig mnist;
    mnist.trainCount = static_cast<std::size_t>(600 * scale);
    mnist.testCount = static_cast<std::size_t>(300 * scale);
    mnist.seed = seed;
    const auto dataset = data::makeSynthMnist(mnist);
    std::printf("synthetic MNIST: %zu train / %zu test\n",
                dataset.train.count(), dataset.test.count());

    // 2. Shared LeNet-ish topology: conv5x5(8)-pool2 ->
    //    conv5x5(16)-pool2 -> dense 64 -> 10.
    const auto topology = nn::ConvNetConfig::lenetLike(10);

    // Point-estimate CNN baseline.
    {
        Rng init(seed + 1);
        nn::ConvNet fnn(topology, init);
        nn::TrainConfig cfg;
        cfg.epochs = 6;
        cfg.batchSize = 32;
        cfg.learningRate = 2e-3f;
        cfg.seed = seed + 2;
        trainConvNet(fnn, dataset.train.view(), cfg);
        std::printf("point-estimate CNN test accuracy:  %.2f%%\n",
                    100 * evaluateAccuracy(fnn, dataset.test.view()));
    }

    // Bayesian CNN, trained with Bayes-by-Backprop (LRT estimator).
    Rng init(seed + 3);
    bnn::BayesianConvNet bcnn(topology, init, /*rho_init=*/-5.0f);
    bnn::BnnTrainConfig cfg;
    cfg.epochs = 6;
    cfg.batchSize = 32;
    cfg.learningRate = 2e-3f;
    cfg.priorSigma = 0.3f;
    cfg.klWeight = 0.3f;
    cfg.evalSamples = 8;
    cfg.seed = seed + 4;
    trainBcnn(bcnn, dataset.train.view(), cfg);
    const double acc =
        evaluateBcnnAccuracy(bcnn, dataset.test.view(), 8, seed + 5);
    std::printf("Bayesian CNN test accuracy (MC-8):  %.2f%%\n",
                100 * acc);

    // 3. Uncertainty: clean digits vs. digits drowned in noise. The MC
    // ensemble's predictive entropy (paper equation (6) machinery)
    // flags the corrupted inputs a point estimate would silently
    // misclassify.
    auto ws = bcnn.makeWorkspace();
    Rng eval_rng(seed + 6);
    double clean_entropy = 0.0, noisy_entropy = 0.0;
    const std::size_t probes = 20;
    Rng noise_rng(seed + 7);
    std::vector<float> corrupted(bcnn.inputDim());
    for (std::size_t i = 0; i < probes; ++i) {
        const float *x = dataset.test.sample(i);
        clean_entropy +=
            bcnn.predictiveEntropy(x, 24, ws, eval_rng);
        for (std::size_t p = 0; p < corrupted.size(); ++p) {
            corrupted[p] = 0.5f * x[p] +
                static_cast<float>(noise_rng.uniform(0, 0.9));
        }
        noisy_entropy +=
            bcnn.predictiveEntropy(corrupted.data(), 24, ws, eval_rng);
    }
    std::printf("mean predictive entropy: clean %.3f nats, "
                "corrupted %.3f nats\n",
                clean_entropy / probes, noisy_entropy / probes);

    // 4. Deployment hand-off: save, reload, verify.
    const char *path = "/tmp/vibnn_bayesian_lenet.bin";
    if (core::saveBayesianConvNet(bcnn, path)) {
        auto reloaded = core::loadBayesianConvNet(path);
        if (reloaded) {
            const double racc = evaluateBcnnAccuracy(
                *reloaded, dataset.test.view(), 8, seed + 5);
            std::printf("reloaded from %s: accuracy %.2f%% "
                        "(%s)\n",
                        path, 100 * racc,
                        racc == acc ? "bit-exact" : "MISMATCH");
        }
    }
    return 0;
}
