/**
 * @file
 * Quickstart: the canonical VIBNN flow in ~60 lines of user code.
 *
 *   1. Build (or load) a dataset.
 *   2. Train a Bayesian neural network with Bayes-by-Backprop.
 *   3. Wrap it in a VibnnSystem: this quantizes the variational
 *      parameters onto the accelerator's 8-bit grids.
 *   4. Run inference three ways — float software, fast hardware
 *      functional model, and the cycle-level simulator — and query the
 *      FPGA resource/performance estimates.
 *
 * Run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/vibnn.hh"
#include "data/tabular.hh"

using namespace vibnn;

int
main()
{
    // 1. A small synthetic diagnosis dataset (19 features, 2 classes).
    auto spec = data::retinopathySpec(/*seed=*/7);
    spec.trainCount = 400;
    spec.testCount = 200;
    const auto dataset = data::makeTabular(spec);
    std::printf("dataset: %s — %zu train / %zu test, %zu features\n",
                dataset.name.c_str(), dataset.train.count(),
                dataset.test.count(), dataset.train.dim);

    // 2 + 3. Train a 19-32-32-2 BNN and lower it onto a small
    // accelerator (2 PE-sets of 8 PEs, 8-bit operands, RLF-GRNG).
    bnn::BnnTrainConfig train_config;
    train_config.epochs = 30;
    train_config.learningRate = 2e-3f;
    train_config.seed = 1;

    accel::AcceleratorConfig accel_config;
    accel_config.peSets = 2;
    accel_config.pesPerSet = 8;
    accel_config.bits = 8;
    accel_config.mcSamples = 8;

    const auto system = core::VibnnSystem::train(
        dataset, {32, 32}, train_config, accel_config, "rlf");

    // 4a. Software (float) Monte-Carlo ensemble accuracy.
    const double sw =
        system.softwareAccuracy(dataset.test.view(), 8, /*seed=*/99);
    // 4b. Hardware path (8-bit fixed point, RLF-GRNG epsilons).
    const double hw = system.hardwareAccuracy(dataset.test.view());
    std::printf("accuracy: software %.2f%%, 8-bit hardware %.2f%%\n",
                100 * sw, 100 * hw);

    // 4c. Cycle-level timing of one inference pass.
    auto simulator = system.makeSimulator();
    simulator->runPass(dataset.test.sample(0));
    std::printf("cycle-level simulator: %llu cycles per pass, "
                "PE utilization %.1f%%\n",
                static_cast<unsigned long long>(
                    simulator->stats().totalCycles),
                100 * simulator->stats().utilization(
                          accel_config.totalPes(),
                          accel_config.peInputs()));

    // 4d. FPGA deployment estimate.
    const auto estimate = system.resourceEstimate();
    const auto perf = system.performance(
        simulator->stats().cyclesPerPass());
    std::printf("FPGA estimate: %.0f ALMs, %d DSPs, %.2f W @ %.1f MHz "
                "-> %.0f images/s, %.0f images/J\n",
                estimate.total().alms, estimate.total().dsps,
                estimate.powerMw / 1000.0, estimate.fmaxMhz,
                perf.imagesPerSecond, perf.imagesPerJoule);
    return 0;
}
