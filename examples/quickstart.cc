/**
 * @file
 * Quickstart: the canonical VIBNN flow in ~60 lines of user code.
 *
 *   1. Build (or load) a dataset.
 *   2. Train a Bayesian neural network with Bayes-by-Backprop.
 *   3. Wrap it in a VibnnSystem: this quantizes the variational
 *      parameters onto the accelerator's 8-bit grids.
 *   4. Serve inference through an InferenceSession — the request /
 *      response surface with per-image uncertainty — next to the float
 *      software ensemble and the cycle-level simulator, and query the
 *      FPGA resource/performance estimates.
 *
 * Run:  ./build/examples/quickstart
 */

#include <algorithm>
#include <cstdio>

#include "core/vibnn.hh"
#include "data/tabular.hh"
#include "serve/session.hh"

using namespace vibnn;

int
main()
{
    // 1. A small synthetic diagnosis dataset (19 features, 2 classes).
    auto spec = data::retinopathySpec(/*seed=*/7);
    spec.trainCount = 400;
    spec.testCount = 200;
    const auto dataset = data::makeTabular(spec);
    std::printf("dataset: %s — %zu train / %zu test, %zu features\n",
                dataset.name.c_str(), dataset.train.count(),
                dataset.test.count(), dataset.train.dim);

    // 2 + 3. Train a 19-32-32-2 BNN and lower it onto a small
    // accelerator (2 PE-sets of 8 PEs, 8-bit operands, RLF-GRNG).
    bnn::BnnTrainConfig train_config;
    train_config.epochs = 30;
    train_config.learningRate = 2e-3f;
    train_config.seed = 1;

    accel::AcceleratorConfig accel_config;
    accel_config.peSets = 2;
    accel_config.pesPerSet = 8;
    accel_config.bits = 8;
    accel_config.mcSamples = 8;

    const auto system = core::VibnnSystem::train(
        dataset, {32, 32}, train_config, accel_config, "rlf");

    // 4a. Software (float) Monte-Carlo ensemble accuracy.
    const double sw =
        system.softwareAccuracy(dataset.test.view(), 8, /*seed=*/99);

    // 4b. Hardware path, served through an InferenceSession: one
    // request for the whole test batch, one response carrying the
    // prediction AND the uncertainty decomposition per image.
    auto session = system.makeSession();
    const auto response = session->run(
        serve::InferenceRequest::borrow(dataset.test.view()));
    const double hw = response.accuracy(dataset.test.view().labels);
    std::size_t uncertain = 0;
    double worst_entropy = 0.0;
    for (const auto &p : response.predictions) {
        if (p.confidence < 0.6f)
            ++uncertain;
        worst_entropy = std::max(worst_entropy, p.entropy);
    }
    std::printf("accuracy: software %.2f%%, 8-bit hardware %.2f%%\n",
                100 * sw, 100 * hw);
    std::printf("serving: %zu images in %.1f ms (T=%d MC samples); "
                "%zu flagged uncertain (confidence < 0.60), "
                "max predictive entropy %.3f nats\n",
                response.predictions.size(), response.micros / 1000.0,
                response.mcSamples, uncertain, worst_entropy);

    // 4c. Cycle-level timing of one inference pass.
    auto simulator = system.makeSimulator();
    simulator->runPass(dataset.test.sample(0));
    std::printf("cycle-level simulator: %llu cycles per pass, "
                "PE utilization %.1f%%\n",
                static_cast<unsigned long long>(
                    simulator->stats().totalCycles),
                100 * simulator->stats().utilization(
                          accel_config.totalPes(),
                          accel_config.peInputs()));

    // 4d. FPGA deployment estimate.
    const auto estimate = system.resourceEstimate();
    const auto perf = system.performance(
        simulator->stats().cyclesPerPass());
    std::printf("FPGA estimate: %.0f ALMs, %d DSPs, %.2f W @ %.1f MHz "
                "-> %.0f images/s, %.0f images/J\n",
                estimate.total().alms, estimate.total().dsps,
                estimate.powerMw / 1000.0, estimate.fmaxMhz,
                perf.imagesPerSecond, perf.imagesPerJoule);
    return 0;
}
