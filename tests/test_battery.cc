/**
 * @file
 * Tests for the extended statistics: Anderson-Darling against known
 * critical values and distorted distributions, Ljung-Box against
 * constructed serial correlation, and the composite battery's ability
 * to separate good, serially-correlated, and quantized generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "stats/ad_test.hh"
#include "stats/battery.hh"
#include "stats/ljung_box.hh"

using namespace vibnn;
using namespace vibnn::stats;

TEST(AndersonDarling, CdfMatchesKnownCriticalValues)
{
    // Case-0 critical values (D'Agostino & Stephens table 4.2):
    // P(A^2 < 1.933) = 0.90, P(A^2 < 2.492) = 0.95,
    // P(A^2 < 3.857) = 0.99.
    EXPECT_NEAR(andersonDarlingCdf(1.933), 0.90, 0.005);
    EXPECT_NEAR(andersonDarlingCdf(2.492), 0.95, 0.005);
    EXPECT_NEAR(andersonDarlingCdf(3.857), 0.99, 0.005);
    // Monotone, bounded.
    EXPECT_EQ(andersonDarlingCdf(0.0), 0.0);
    EXPECT_LT(andersonDarlingCdf(0.5), andersonDarlingCdf(1.0));
    EXPECT_LT(andersonDarlingCdf(1.0), andersonDarlingCdf(2.0));
    EXPECT_LT(andersonDarlingCdf(6.0), 1.0);
    EXPECT_GT(andersonDarlingCdf(6.0), 0.999);
}

TEST(AndersonDarling, AcceptsGaussianSamples)
{
    Rng rng(7);
    std::vector<double> samples(5000);
    for (auto &x : samples)
        x = rng.gaussian();
    const auto r = adTestStandardNormal(samples);
    EXPECT_TRUE(r.passed) << "A^2 = " << r.statistic;
    EXPECT_GT(r.pValue, 0.05);
}

TEST(AndersonDarling, RejectsShiftedMean)
{
    Rng rng(11);
    std::vector<double> samples(5000);
    for (auto &x : samples)
        x = rng.gaussian() + 0.15;
    const auto r = adTestStandardNormal(samples);
    EXPECT_FALSE(r.passed) << "A^2 = " << r.statistic;
}

TEST(AndersonDarling, RejectsUniform)
{
    Rng rng(13);
    std::vector<double> samples(2000);
    for (auto &x : samples)
        x = rng.uniform(-1.7320508, 1.7320508); // unit variance
    const auto r = adTestStandardNormal(samples);
    EXPECT_FALSE(r.passed);
}

TEST(AndersonDarling, RejectsHeavyTails)
{
    // Unit-variance Laplace: heavier tails than normal at equal scale.
    Rng rng(17);
    std::vector<double> samples(5000);
    for (auto &x : samples) {
        const double u = rng.uniform() - 0.5;
        const double b = 1.0 / std::sqrt(2.0);
        x = -b * std::copysign(std::log1p(-2.0 * std::abs(u)), u);
    }
    const auto r = adTestStandardNormal(samples);
    EXPECT_FALSE(r.passed) << "A^2 = " << r.statistic;
}

TEST(AndersonDarling, DegenerateInputsHandled)
{
    EXPECT_FALSE(adTestStandardNormal({}).passed);
    EXPECT_FALSE(adTestStandardNormal({1.0, 2.0}).passed);
    // Extreme lattice values must not produce NaN/inf.
    std::vector<double> extreme(100, 12.0);
    const auto r = adTestStandardNormal(extreme);
    EXPECT_TRUE(std::isfinite(r.statistic));
    EXPECT_FALSE(r.passed);
}

TEST(LjungBox, AcceptsWhiteNoise)
{
    Rng rng(19);
    std::vector<double> samples(8000);
    for (auto &x : samples)
        x = rng.gaussian();
    const auto r = ljungBoxTest(samples, 20);
    EXPECT_TRUE(r.passed) << "Q = " << r.statistic;
    // Q ~ chi^2_20 under H0: mean 20.
    EXPECT_LT(r.statistic, 45.0);
}

TEST(LjungBox, RejectsAr1)
{
    Rng rng(23);
    std::vector<double> samples(8000);
    double prev = 0.0;
    const double phi = 0.2;
    const double innov = std::sqrt(1.0 - phi * phi);
    for (auto &x : samples) {
        prev = phi * prev + innov * rng.gaussian();
        x = prev;
    }
    const auto r = ljungBoxTest(samples, 20);
    EXPECT_FALSE(r.passed) << "Q = " << r.statistic;
}

TEST(LjungBox, RejectsNegativeLagSpike)
{
    // The fixed-shift Wallace pathology: one isolated negative
    // correlation at a single lag.
    Rng rng(29);
    const std::size_t lag = 8;
    std::vector<double> samples(8000);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double fresh = rng.gaussian();
        samples[i] = i >= lag
                         ? (fresh - 0.4 * samples[i - lag]) /
                               std::sqrt(1.0 + 0.16)
                         : fresh;
    }
    const auto r = ljungBoxTest(samples, 20);
    EXPECT_FALSE(r.passed) << "Q = " << r.statistic;
}

TEST(LjungBox, DegenerateInputsHandled)
{
    std::vector<double> tiny(5, 1.0);
    const auto r = ljungBoxTest(tiny, 20);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.statistic, 0.0);
}

namespace
{

BatteryConfig
quickConfig()
{
    BatteryConfig config;
    config.samplesPerTest = 10000;
    config.repetitions = 10;
    config.seed = 99;
    return config;
}

} // namespace

TEST(Battery, IidGaussianPassesEverything)
{
    Rng rng(31);
    auto generate = [&](std::vector<double> &out) {
        for (auto &x : out)
            x = rng.gaussian();
    };
    const auto report = runBattery(generate, quickConfig());
    ASSERT_EQ(report.rows.size(), 5u);
    for (const auto &row : report.rows)
        EXPECT_GE(row.passRate, 0.7) << row.test;
    EXPECT_NEAR(report.mean, 0.0, 0.05);
    EXPECT_NEAR(report.stddev, 1.0, 0.05);
}

TEST(Battery, SerialCorrelationFailsOrderTestsOnly)
{
    // Unit-variance AR(1): correct marginal, broken ordering.
    Rng rng(37);
    double prev = 0.0;
    const double phi = 0.25;
    const double innov = std::sqrt(1.0 - phi * phi);
    auto generate = [&](std::vector<double> &out) {
        for (auto &x : out) {
            prev = phi * prev + innov * rng.gaussian();
            x = prev;
        }
    };
    const auto report = runBattery(generate, quickConfig());
    EXPECT_LE(report.row("runs").passRate, 0.2);
    EXPECT_LE(report.row("ljung-box").passRate, 0.2);
    // Shape remains near-normal (slight n-dependent variance shrink).
    EXPECT_GE(report.row("ks").passRate, 0.6);
    EXPECT_GE(report.row("chi-square").passRate, 0.5);
}

TEST(Battery, QuantizationFailsShapeUntilDithered)
{
    const double step = 0.25;
    Rng rng1(41);
    auto quantized = [&](std::vector<double> &out) {
        for (auto &x : out)
            x = std::round(rng1.gaussian() / step) * step;
    };
    auto raw_report = runBattery(quantized, quickConfig());
    // The lattice is visible to the continuous shape tests...
    EXPECT_LE(raw_report.row("ks").passRate, 0.2);
    EXPECT_LE(raw_report.row("anderson-darling").passRate, 0.2);
    // ...but order tests are untouched by quantization.
    EXPECT_GE(raw_report.row("runs").passRate, 0.7);

    Rng rng2(41);
    auto quantized2 = [&](std::vector<double> &out) {
        for (auto &x : out)
            x = std::round(rng2.gaussian() / step) * step;
    };
    auto config = quickConfig();
    config.ditherStep = step;
    const auto dithered = runBattery(quantized2, config);
    EXPECT_GE(dithered.row("ks").passRate, 0.7);
    EXPECT_GE(dithered.row("anderson-darling").passRate, 0.7);
}

TEST(Battery, WorstPassRateAndRowLookup)
{
    Rng rng(43);
    auto generate = [&](std::vector<double> &out) {
        for (auto &x : out)
            x = rng.gaussian();
    };
    auto config = quickConfig();
    config.repetitions = 5;
    const auto report = runBattery(generate, config);
    double worst = 1.0;
    for (const auto &row : report.rows)
        worst = std::min(worst, row.passRate);
    EXPECT_DOUBLE_EQ(report.worstPassRate(), worst);
    EXPECT_EQ(report.row("runs").test, "runs");
}
