/**
 * @file
 * Tests for the executor backend layer: registry and capability flags,
 * bit-exact delegation of the fidelity backends through the Executor
 * seam, the per-image fallback semantics of the default round-batch,
 * exact agreement of the batched weight-reuse path with the fidelity
 * path when sigma = 0 (where weight reuse is a no-op) on both MLP and
 * CNN programs, statistical equivalence of the two paths at matched T
 * on synth-MNIST, and bit-identical round-scheduling results across
 * thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "accel/batched_runner.hh"
#include "accel/executor.hh"
#include "accel/functional.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_cnn.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/rng.hh"
#include "data/synth_mnist.hh"
#include "grng/registry.hh"
#include "nn/activations.hh"

using namespace vibnn;
using namespace vibnn::accel;

namespace
{

AcceleratorConfig
smallConfig(int mc_samples = 1)
{
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = mc_samples;
    return config;
}

QuantizedProgram
mlpProgram(const AcceleratorConfig &config, std::uint64_t seed,
           float rho_init = -5.0f)
{
    Rng rng(seed);
    bnn::BayesianMlp net({24, 16, 4}, rng, rho_init);
    return compile(net, config);
}

/** conv-pool-dense topology on 1x8x8 inputs. */
QuantizedProgram
cnnProgram(const AcceleratorConfig &config, std::uint64_t seed,
           float rho_init = -2.0f)
{
    nn::ConvNetConfig cfg;
    cfg.inChannels = 1;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {{/*outChannels=*/3, /*kernel=*/3, /*stride=*/1,
                   /*pad=*/1, /*pool=*/true, /*poolWindow=*/2}};
    cfg.denseHidden = {12};
    cfg.numClasses = 4;
    Rng rng(seed);
    bnn::BayesianConvNet net(cfg, rng, rho_init);
    return compile(net, config);
}

std::vector<float>
randomBatch(std::size_t count, std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(count * dim);
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform());
    return xs;
}

} // anonymous namespace

TEST(ExecutorRegistry, ProvidesAllBackendsWithExpectedCaps)
{
    const auto config = smallConfig();
    const auto program = mlpProgram(config, 3);
    const auto ids = registeredExecutorIds();
    ASSERT_EQ(ids.size(), 3u);

    for (const auto &id : ids) {
        auto gen = grng::makeGenerator("rlf", 7);
        auto exec = makeExecutor(id, program, config, gen.get());
        ASSERT_NE(exec, nullptr) << id;
        EXPECT_EQ(exec->program().ops.size(), program.ops.size());
        EXPECT_EQ(exec->config().peSets, config.peSets);
        const auto caps = exec->caps();
        EXPECT_EQ(caps.cycleAccurate, id == "simulator") << id;
        EXPECT_EQ(caps.batchedRounds, id == "batched") << id;
        // The no-construction registry lookup must agree with the
        // backend's own flags (serving-layer scheduling relies on it).
        const auto static_caps = executorCaps(id);
        EXPECT_EQ(static_caps.cycleAccurate, caps.cycleAccurate) << id;
        EXPECT_EQ(static_caps.batchedRounds, caps.batchedRounds) << id;
    }
}

TEST(ExecutorSeam, FidelityBackendsBitExactThroughInterface)
{
    // Running a backend through the Executor base pointer must be
    // bit-identical to driving the concrete class directly — the seam
    // adds no behavior.
    const auto config = smallConfig();
    const auto program = mlpProgram(config, 5);
    const auto x = randomBatch(1, program.inputDim(), 11);

    for (const char *id : {"simulator", "functional"}) {
        auto gen_seam = grng::makeGenerator("rlf", 13);
        auto gen_direct = grng::makeGenerator("rlf", 13);
        auto seam = makeExecutor(id, program, config, gen_seam.get());
        const auto via_seam = seam->runPass(x.data());
        if (std::string(id) == "simulator") {
            Simulator direct(program, config, gen_direct.get());
            EXPECT_EQ(via_seam, direct.runPass(x.data())) << id;
        } else {
            FunctionalRunner direct(program, config, gen_direct.get());
            EXPECT_EQ(via_seam, direct.runPass(x.data())) << id;
        }
    }
}

TEST(ExecutorSeam, SharedClassifyMatchesManualEnsemble)
{
    // Executor::classify is the one MC-ensemble reduction every
    // backend inherits; it must equal the manual
    // mcSamples-passes-softmax-average loop exactly (the pre-seam
    // Simulator::classify/FunctionalRunner::classify body).
    const auto config = smallConfig(5);
    const auto program = mlpProgram(config, 7);
    const auto x = randomBatch(1, program.inputDim(), 17);

    auto gen_a = grng::makeGenerator("rlf", 19);
    auto gen_b = grng::makeGenerator("rlf", 19);
    auto classifier = makeExecutor("functional", program, config,
                                   gen_a.get());
    std::vector<float> probs(program.outputDim());
    const std::size_t predicted = classifier->classify(x.data(),
                                                       probs.data());

    FunctionalRunner manual(program, config, gen_b.get());
    const std::size_t out_dim = program.outputDim();
    std::vector<float> acc(out_dim, 0.0f);
    std::vector<float> logits(out_dim);
    for (int s = 0; s < config.mcSamples; ++s) {
        const auto raw = manual.runPass(x.data());
        for (std::size_t i = 0; i < out_dim; ++i)
            logits[i] = static_cast<float>(
                program.activationFormat.toReal(raw[i]));
        nn::softmax(logits.data(), out_dim);
        for (std::size_t i = 0; i < out_dim; ++i)
            acc[i] += logits[i];
    }
    for (auto &p : acc)
        p /= static_cast<float>(config.mcSamples);

    EXPECT_EQ(predicted,
              static_cast<std::size_t>(
                  std::max_element(acc.begin(), acc.end()) -
                  acc.begin()));
    for (std::size_t i = 0; i < out_dim; ++i)
        EXPECT_EQ(probs[i], acc[i]) << "class " << i;
}

TEST(ExecutorSeam, DefaultRoundBatchIsPerImageFreshSamplePasses)
{
    // Backends without batchedRounds fall back to one fresh-sample
    // pass per image of the round, consuming the stream in image
    // order.
    const auto config = smallConfig();
    const auto program = mlpProgram(config, 9);
    const std::size_t count = 3, dim = program.inputDim();
    const auto xs = randomBatch(count, dim, 23);

    auto gen_a = grng::makeGenerator("rlf", 29);
    auto gen_b = grng::makeGenerator("rlf", 29);
    auto round_exec = makeExecutor("functional", program, config,
                                   gen_a.get());
    std::vector<std::int64_t> round_out(count * program.outputDim());
    round_exec->runRoundBatch(xs.data(), count, dim, round_out.data());

    FunctionalRunner serial(program, config, gen_b.get());
    for (std::size_t i = 0; i < count; ++i) {
        const auto raw = serial.runPass(xs.data() + i * dim);
        for (std::size_t j = 0; j < raw.size(); ++j)
            EXPECT_EQ(round_out[i * program.outputDim() + j], raw[j])
                << "image " << i << " out " << j;
    }
}

TEST(BatchedRunner, SigmaZeroBitExactWithFunctionalOnMlp)
{
    // With sigma = 0 every posterior draw is the mu network, so weight
    // reuse is a no-op and the batched path must agree bit for bit
    // with the fidelity path.
    const auto config = smallConfig();
    const auto program = mlpProgram(config, 31, /*rho_init=*/-40.0f);
    const std::size_t count = 4, dim = program.inputDim();
    const auto xs = randomBatch(count, dim, 37);

    auto gen_a = grng::makeGenerator("rlf", 41);
    auto gen_b = grng::makeGenerator("rlf", 43); // stream is irrelevant
    BatchedRunner batched(program, config, gen_a.get());
    FunctionalRunner fidelity(program, config, gen_b.get());

    std::vector<std::int64_t> out(count * program.outputDim());
    batched.runRoundBatch(xs.data(), count, dim, out.data());
    for (std::size_t i = 0; i < count; ++i) {
        const auto raw = fidelity.runPass(xs.data() + i * dim);
        for (std::size_t j = 0; j < raw.size(); ++j)
            EXPECT_EQ(out[i * program.outputDim() + j], raw[j])
                << "image " << i << " out " << j;
    }
}

TEST(BatchedRunner, SigmaZeroBitExactWithFunctionalOnCnn)
{
    // Same exactness on a conv-pool-dense program: covers the batched
    // im2col GEMM and pooling paths (weight sharing across positions
    // is also a no-op at sigma = 0).
    const auto config = smallConfig();
    const auto program = cnnProgram(config, 47, /*rho_init=*/-40.0f);
    const std::size_t count = 3, dim = program.inputDim();
    const auto xs = randomBatch(count, dim, 53);

    auto gen_a = grng::makeGenerator("rlf", 59);
    auto gen_b = grng::makeGenerator("rlf", 61);
    BatchedRunner batched(program, config, gen_a.get());
    FunctionalRunner fidelity(program, config, gen_b.get());

    std::vector<std::int64_t> out(count * program.outputDim());
    batched.runRoundBatch(xs.data(), count, dim, out.data());
    for (std::size_t i = 0; i < count; ++i) {
        const auto raw = fidelity.runPass(xs.data() + i * dim);
        for (std::size_t j = 0; j < raw.size(); ++j)
            EXPECT_EQ(out[i * program.outputDim() + j], raw[j])
                << "image " << i << " out " << j;
    }
}

TEST(BatchedRunner, RoundsAreDeterministicAndWeightReuseIsVisible)
{
    const auto config = smallConfig();
    const auto program = cnnProgram(config, 67, /*rho_init=*/-1.0f);
    const std::size_t count = 2, dim = program.inputDim();
    const auto xs = randomBatch(count, dim, 71);
    std::vector<std::int64_t> a(count * program.outputDim());
    std::vector<std::int64_t> b(a.size());

    // Same seed -> bit-identical round.
    {
        auto gen_a = grng::makeGenerator("rlf", 73);
        auto gen_b = grng::makeGenerator("rlf", 73);
        BatchedRunner run_a(program, config, gen_a.get());
        BatchedRunner run_b(program, config, gen_b.get());
        run_a.runRoundBatch(xs.data(), count, dim, a.data());
        run_b.runRoundBatch(xs.data(), count, dim, b.data());
        EXPECT_EQ(a, b);
    }

    // Two identical images inside one round see the SAME weight draw,
    // so their outputs coincide — the reuse the fidelity path never
    // exhibits at nonzero sigma.
    {
        std::vector<float> twice(2 * dim);
        std::copy(xs.begin(), xs.begin() + dim, twice.begin());
        std::copy(xs.begin(), xs.begin() + dim, twice.begin() + dim);
        auto gen = grng::makeGenerator("rlf", 79);
        BatchedRunner runner(program, config, gen.get());
        std::vector<std::int64_t> out(2 * program.outputDim());
        runner.runRoundBatch(twice.data(), 2, dim, out.data());
        for (std::size_t j = 0; j < program.outputDim(); ++j)
            EXPECT_EQ(out[j], out[program.outputDim() + j]);
    }
}

TEST(McEngineRound, MatchesSerialRoundSeedScheduleEmulation)
{
    // PerRound scheduling runs round r with the stream seeded by
    // roundSeed(seedBase, r); replaying that schedule on one serial
    // BatchedRunner must reproduce the engine's per-round outputs bit
    // for bit.
    const auto config = smallConfig(6);
    const auto program = mlpProgram(config, 83);
    const auto x = randomBatch(1, program.inputDim(), 89);

    McEngineConfig mc;
    mc.threads = 3;
    mc.seedBase = 97;
    mc.backendId = "batched";
    mc.schedule = McSchedule::PerRound;
    McEngine engine(program, config, mc);
    const McResult parallel = engine.classifyDetailed(x.data());
    ASSERT_EQ(parallel.rawSamples.size(), 6u);

    auto placeholder = grng::makeGenerator("rlf", 1);
    BatchedRunner serial(program, config, placeholder.get());
    for (int r = 0; r < config.mcSamples; ++r) {
        auto gen = grng::makeGenerator(
            "rlf", McEngine::roundSeed(97,
                                       static_cast<std::uint64_t>(r)));
        serial.setGenerator(gen.get());
        const auto raw = serial.runPass(x.data());
        EXPECT_EQ(raw, parallel.rawSamples[r]) << "round " << r;
        serial.setGenerator(placeholder.get());
    }
}

TEST(McEngineRound, BitIdenticalAcrossThreadCounts)
{
    const auto config = smallConfig(8);
    const auto program = mlpProgram(config, 101);
    const std::size_t count = 5, dim = program.inputDim();
    const auto xs = randomBatch(count, dim, 103);

    std::vector<std::size_t> preds[3];
    std::vector<float> probs[3];
    const std::size_t thread_counts[3] = {1, 2, 5};
    for (int i = 0; i < 3; ++i) {
        McEngineConfig mc;
        mc.threads = thread_counts[i];
        mc.seedBase = 107;
        mc.backendId = "batched";
        mc.schedule = McSchedule::PerRound;
        McEngine engine(program, config, mc);
        probs[i].resize(count * program.outputDim());
        preds[i] = engine.classifyBatch(xs.data(), count, dim,
                                        probs[i].data());
    }
    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(preds[i], preds[0]) << "threads="
                                      << thread_counts[i];
        ASSERT_EQ(probs[i].size(), probs[0].size());
        for (std::size_t j = 0; j < probs[0].size(); ++j)
            EXPECT_EQ(probs[i][j], probs[0][j])
                << "threads=" << thread_counts[i] << " prob " << j;
    }
}

TEST(McEngineRound, StatisticallyEquivalentToPerUnitAtMatchedT)
{
    // The weight-reuse estimator averages T independent posterior
    // draws just like the per-pass estimator — only the pairing of
    // draws with images differs. At matched T on synth-MNIST images
    // the two predictive means must agree within Monte-Carlo noise.
    const int t_samples = 64;
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = t_samples;

    Rng rng(109);
    bnn::BayesianMlp net({data::kMnistPixels, 16, 10}, rng, -3.0f);
    const auto program = compile(net, config);

    data::SynthMnistConfig synth;
    synth.trainCount = 10;
    synth.testCount = 12;
    synth.seed = 113;
    const auto ds = data::makeSynthMnist(synth);
    const auto view = ds.test.view();

    McEngineConfig fid;
    fid.seedBase = 127;
    fid.backendId = "functional";
    fid.schedule = McSchedule::PerUnit;
    McEngine fidelity(program, config, fid);
    std::vector<float> fid_probs(view.count * program.outputDim());
    fidelity.classifyBatch(view.features, view.count, view.dim,
                           fid_probs.data());

    McEngineConfig thr;
    thr.seedBase = 131;
    thr.backendId = "batched";
    thr.schedule = McSchedule::PerRound;
    McEngine throughput(program, config, thr);
    std::vector<float> thr_probs(view.count * program.outputDim());
    throughput.classifyBatch(view.features, view.count, view.dim,
                             thr_probs.data());

    double total_abs = 0.0;
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < fid_probs.size(); ++i) {
        const float d = std::fabs(fid_probs[i] - thr_probs[i]);
        total_abs += d;
        max_abs = std::max(max_abs, d);
    }
    const double mean_abs =
        total_abs / static_cast<double>(fid_probs.size());
    // MC noise of a T=64 mean of [0,1] quantities is ~0.06 worst case;
    // the bounds leave ~3x headroom while still catching systematic
    // bias (reused draws, skipped rounds, wrong reduction order).
    EXPECT_LT(mean_abs, 0.05) << "max " << max_abs;
    EXPECT_LT(max_abs, 0.25f);
}
