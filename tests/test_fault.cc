/**
 * @file
 * Fault-injection registry tests: spec-grammar rejection, the firing
 * semantics of nth/every/p/count/always, seeded determinism (the
 * property that makes chaos assertions replayable instead of flaky),
 * environment re-arming via reset(), and the unarmed contract — zero
 * counters, zero registry traffic, VIBNN_FAULT() false everywhere.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault.hh"

using namespace vibnn;

namespace
{

/** Every test leaves the process-global registry unarmed. */
class Fault : public ::testing::Test
{
  protected:
    void SetUp() override { fault::disarm(); }
    void TearDown() override
    {
        fault::disarm();
        ::unsetenv("VIBNN_FAULTS");
    }
};

} // anonymous namespace

// -------------------------------------------------------- spec grammar

TEST_F(Fault, MalformedSpecsAreRejectedWithAnError)
{
    const char *bad[] = {
        "",                     // arms no sites
        ",,,",                  // only empty clauses
        "noitems",              // no colon
        ":always",              // empty site name
        "site:",                // colon but no items
        "site:nth=0",           // nth must be positive
        "site:nth=abc",         // not an integer
        "site:every=0",         // every must be positive
        "site:count=x",         // not an integer
        "site:p=1.5",           // probability above 1
        "site:p=-0.25",         // probability below 0
        "site:p=",              // empty value
        "site:delay=soon",      // not milliseconds
        "site:frobnicate=1",    // unknown item
        "good:always,bad",      // one bad clause poisons the spec
    };
    for (const char *spec : bad) {
        std::string error;
        EXPECT_FALSE(fault::armSpec(spec, error))
            << "accepted '" << spec << "'";
        EXPECT_FALSE(error.empty()) << spec;
        // A rejected spec must not leave the process half-armed.
        EXPECT_FALSE(fault::anyArmed()) << spec;
    }
}

TEST_F(Fault, WellFormedSpecArmsEverySite)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec(
        "a.b:nth=3,c.d:p=0.5+count=2,e.f:always+delay=40", error))
        << error;
    EXPECT_TRUE(fault::anyArmed());
    EXPECT_DOUBLE_EQ(fault::siteRate("c.d"), 0.5);
    EXPECT_EQ(fault::fireDelayMillis("e.f", 7), 40);
    EXPECT_EQ(fault::fireDelayMillis("a.b", 7), 7); // fallback
}

// ---------------------------------------------------- firing semantics

TEST_F(Fault, NthFiresExactlyOnce)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("s:nth=3", error)) << error;
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(VIBNN_FAULT("s"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false,
                                        false, false}));
    EXPECT_EQ(fault::hits("s"), 6u);
    EXPECT_EQ(fault::fires("s"), 1u);
}

TEST_F(Fault, EveryFiresPeriodically)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("s:every=2", error)) << error;
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(VIBNN_FAULT("s"));
    EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true,
                                        false, true}));
}

TEST_F(Fault, CountCapsTotalFires)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("s:always+count=2", error)) << error;
    int fires = 0;
    for (int i = 0; i < 10; ++i)
        fires += VIBNN_FAULT("s") ? 1 : 0;
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(fault::hits("s"), 10u);
    EXPECT_EQ(fault::fires("s"), 2u);
}

TEST_F(Fault, ProbabilityEdgesAreExact)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("never:p=0,ever:p=1", error)) << error;
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(VIBNN_FAULT("never"));
        EXPECT_TRUE(VIBNN_FAULT("ever"));
    }
}

TEST_F(Fault, ProbabilisticFiringReplaysExactly)
{
    // The chaos-test keystone: (seed, site, hit index) fully determine
    // the pattern, so re-arming the same spec replays it bit-for-bit.
    std::string error;
    ASSERT_TRUE(fault::armSpec("s:p=0.3", error)) << error;
    std::vector<bool> first;
    for (int i = 0; i < 200; ++i)
        first.push_back(VIBNN_FAULT("s"));
    ASSERT_TRUE(fault::armSpec("s:p=0.3", error)) << error;
    std::vector<bool> second;
    for (int i = 0; i < 200; ++i)
        second.push_back(VIBNN_FAULT("s"));
    EXPECT_EQ(first, second);
    // Sanity: p=0.3 over 200 hits fires sometimes, not always.
    const int fires =
        static_cast<int>(std::count(first.begin(), first.end(), true));
    EXPECT_GT(fires, 0);
    EXPECT_LT(fires, 200);
}

TEST_F(Fault, DistinctSitesDrawDistinctStreams)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("a:p=0.5,b:p=0.5", error)) << error;
    std::vector<bool> a, b;
    for (int i = 0; i < 200; ++i) {
        a.push_back(VIBNN_FAULT("a"));
        b.push_back(VIBNN_FAULT("b"));
    }
    EXPECT_NE(a, b);
    EXPECT_NE(fault::siteSeed("a"), fault::siteSeed("b"));
}

// ----------------------------------------------------- unarmed contract

TEST_F(Fault, UnarmedProcessSeesNothing)
{
    EXPECT_FALSE(fault::anyArmed());
    EXPECT_FALSE(VIBNN_FAULT("any.site"));
    EXPECT_EQ(fault::hits("any.site"), 0u);
    EXPECT_EQ(fault::fires("any.site"), 0u);
    EXPECT_EQ(fault::totalHits(), 0u);
    EXPECT_EQ(fault::totalFires(), 0u);
    EXPECT_DOUBLE_EQ(fault::siteRate("any.site"), 0.0);
    EXPECT_EQ(fault::fireDelayMillis("any.site", 123), 123);
    EXPECT_EQ(fault::faultsJson(), "{}");
    fault::recordFires("any.site", 5); // no-op, not a crash
    EXPECT_EQ(fault::totalFires(), 0u);
}

TEST_F(Fault, ArmedSitesDoNotFireUnarmedOnes)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("armed:always", error)) << error;
    EXPECT_TRUE(VIBNN_FAULT("armed"));
    EXPECT_FALSE(VIBNN_FAULT("other"));
    EXPECT_EQ(fault::hits("other"), 0u);
}

TEST_F(Fault, DisarmDropsSitesAndCounters)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("s:always", error)) << error;
    EXPECT_TRUE(VIBNN_FAULT("s"));
    fault::disarm();
    EXPECT_FALSE(fault::anyArmed());
    EXPECT_FALSE(VIBNN_FAULT("s"));
    EXPECT_EQ(fault::hits("s"), 0u);
    EXPECT_EQ(fault::fires("s"), 0u);
}

TEST_F(Fault, RearmingReplacesSitesAndCounters)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("old:always", error)) << error;
    EXPECT_TRUE(VIBNN_FAULT("old"));
    ASSERT_TRUE(fault::armSpec("fresh:always", error)) << error;
    EXPECT_EQ(fault::hits("old"), 0u); // gone, not carried over
    EXPECT_TRUE(VIBNN_FAULT("fresh"));
    EXPECT_EQ(fault::totalFires(), 1u);
}

// ------------------------------------------------- counters and JSON

TEST_F(Fault, RecordFiresCountsExternallySampledEvents)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("rate.site:p=0.01", error)) << error;
    fault::recordFires("rate.site", 7);
    fault::recordFires("rate.site", 3);
    EXPECT_EQ(fault::hits("rate.site"), 2u);
    EXPECT_EQ(fault::fires("rate.site"), 10u);
    EXPECT_EQ(fault::totalFires(), 10u);
}

TEST_F(Fault, FaultsJsonReportsEverySite)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec("a:always,b:nth=5", error)) << error;
    (void)VIBNN_FAULT("a");
    (void)VIBNN_FAULT("a");
    (void)VIBNN_FAULT("b");
    const std::string json = fault::faultsJson();
    EXPECT_NE(json.find("\"a\": {\"hits\": 2, \"fires\": 2}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"b\": {\"hits\": 1, \"fires\": 0}"),
              std::string::npos)
        << json;
}

// ------------------------------------------------------------- reset()

TEST_F(Fault, ResetReappliesTheEnvironmentSpec)
{
    // reset() restores the state a chaos-profile process started in:
    // whatever VIBNN_FAULTS says right now, counters zeroed.
    ASSERT_EQ(::setenv("VIBNN_FAULTS", "env.site:always", 1), 0);
    fault::reset();
    EXPECT_TRUE(fault::anyArmed());
    EXPECT_TRUE(VIBNN_FAULT("env.site"));

    ::unsetenv("VIBNN_FAULTS");
    fault::reset();
    EXPECT_FALSE(fault::anyArmed());
    EXPECT_FALSE(VIBNN_FAULT("env.site"));
}
