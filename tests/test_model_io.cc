/**
 * @file
 * Tests for model serialization: bit-exact round trips for all four
 * file kinds (MLP, ConvNet, quantized network, compiled program),
 * prediction equivalence after reload, and failure injection —
 * truncation, bit corruption, wrong magic, and cross-kind loads must
 * all be rejected (never reach the accelerator).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "accel/config.hh"
#include "accel/functional.hh"
#include "accel/program.hh"
#include "bnn/bayesian_cnn.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/rng.hh"
#include "core/model_io.hh"
#include "grng/registry.hh"

using namespace vibnn;
using namespace vibnn::core;

namespace
{

/** Temp path helper; files are removed by each test. */
std::string
tempPath(const char *name)
{
    return std::string("/tmp/vibnn_model_io_") + name + ".bin";
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bnn::BayesianMlp
makeMlp()
{
    Rng rng(5);
    return bnn::BayesianMlp({12, 8, 4}, rng);
}

} // namespace

TEST(ModelIo, MlpRoundTripIsBitExact)
{
    const auto path = tempPath("mlp_rt");
    auto net = makeMlp();
    ASSERT_TRUE(saveBayesianMlp(net, path));

    auto loaded = loadBayesianMlp(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->layerSizes(), net.layerSizes());

    std::vector<float> a, b;
    net.gatherParams(a);
    loaded->gatherParams(b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "param " << i; // bit-exact
    std::remove(path.c_str());
}

TEST(ModelIo, MlpPredictionsSurviveReload)
{
    const auto path = tempPath("mlp_pred");
    auto net = makeMlp();
    ASSERT_TRUE(saveBayesianMlp(net, path));
    auto loaded = loadBayesianMlp(path);
    ASSERT_NE(loaded, nullptr);

    Rng data(7);
    std::vector<float> x(net.inputDim());
    for (auto &v : x)
        v = static_cast<float>(data.uniform(-1, 1));
    std::vector<float> la(net.outputDim()), lb(net.outputDim());
    net.meanForward(x.data(), la.data());
    loaded->meanForward(x.data(), lb.data());
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(la[i], lb[i]);
    std::remove(path.c_str());
}

TEST(ModelIo, ConvNetRoundTripIsBitExact)
{
    const auto path = tempPath("bcnn_rt");
    nn::ConvNetConfig cfg;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {{4, 3, 1, 1, true, 2}, {6, 3, 1, 1, false, 2}};
    cfg.denseHidden = {16, 8};
    cfg.numClasses = 3;
    Rng rng(9);
    bnn::BayesianConvNet net(cfg, rng);
    ASSERT_TRUE(saveBayesianConvNet(net, path));

    auto loaded = loadBayesianConvNet(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->config().blocks.size(), cfg.blocks.size());
    EXPECT_EQ(loaded->config().denseHidden, cfg.denseHidden);
    EXPECT_EQ(loaded->paramCount(), net.paramCount());

    std::vector<float> a, b;
    net.gatherParams(a);
    loaded->gatherParams(b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);

    // Mean predictions identical.
    Rng data(11);
    std::vector<float> x(net.inputDim());
    for (auto &v : x)
        v = static_cast<float>(data.uniform(0, 1));
    auto wa = net.makeWorkspace();
    auto wb = loaded->makeWorkspace();
    std::vector<float> la(net.outputDim()), lb(net.outputDim());
    net.meanForward(x.data(), la.data(), wa);
    loaded->meanForward(x.data(), lb.data(), wb);
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(la[i], lb[i]);
    std::remove(path.c_str());
}

TEST(ModelIo, QuantizedNetworkRoundTrip)
{
    const auto path = tempPath("quant_rt");
    auto net = makeMlp();
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    const auto quantized = accel::quantizeNetwork(net, config);
    ASSERT_TRUE(saveQuantizedNetwork(quantized, path));

    auto loaded = loadQuantizedNetwork(path);
    ASSERT_NE(loaded, nullptr);
    ASSERT_EQ(loaded->layers.size(), quantized.layers.size());
    for (std::size_t l = 0; l < quantized.layers.size(); ++l) {
        EXPECT_EQ(loaded->layers[l].inDim, quantized.layers[l].inDim);
        EXPECT_EQ(loaded->layers[l].muWeight,
                  quantized.layers[l].muWeight);
        EXPECT_EQ(loaded->layers[l].sigmaWeight,
                  quantized.layers[l].sigmaWeight);
        EXPECT_EQ(loaded->layers[l].muBias, quantized.layers[l].muBias);
        EXPECT_EQ(loaded->layers[l].sigmaBias,
                  quantized.layers[l].sigmaBias);
    }
    EXPECT_EQ(loaded->activationFormat.totalBits(),
              quantized.activationFormat.totalBits());
    EXPECT_EQ(loaded->weightFormat.fracBits(),
              quantized.weightFormat.fracBits());
    std::remove(path.c_str());
}

TEST(ModelIo, QuantizedProgramRoundTripIsBitExact)
{
    // A compiled CNN program — the richest op mix (ConvLowered, Pool,
    // Flatten, Dense, Output) — must survive the cache file bit-exactly
    // so cached programs replace recompilation.
    const auto path = tempPath("prog_rt");
    nn::ConvNetConfig cfg;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {{4, 3, 1, 1, true, 2}};
    cfg.denseHidden = {16};
    cfg.numClasses = 3;
    Rng rng(13);
    bnn::BayesianConvNet net(cfg, rng);
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    const auto program = accel::compile(net, config);
    ASSERT_TRUE(saveQuantizedProgram(program, path));

    auto loaded = loadQuantizedProgram(path);
    ASSERT_NE(loaded, nullptr);
    ASSERT_EQ(loaded->ops.size(), program.ops.size());
    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        const auto &a = program.ops[i];
        const auto &b = loaded->ops[i];
        EXPECT_EQ(a.kind, b.kind) << "op " << i;
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.inSize, b.inSize);
        EXPECT_EQ(a.outSize, b.outSize);
        EXPECT_EQ(a.relu, b.relu);
        EXPECT_EQ(a.bank.inDim, b.bank.inDim);
        EXPECT_EQ(a.bank.outDim, b.bank.outDim);
        EXPECT_EQ(a.bank.muWeight, b.bank.muWeight);
        EXPECT_EQ(a.bank.sigmaWeight, b.bank.sigmaWeight);
        EXPECT_EQ(a.bank.muBias, b.bank.muBias);
        EXPECT_EQ(a.bank.sigmaBias, b.bank.sigmaBias);
        EXPECT_EQ(a.conv.outChannels, b.conv.outChannels);
        EXPECT_EQ(a.conv.kernel, b.conv.kernel);
        EXPECT_EQ(a.pool.window, b.pool.window);
    }
    EXPECT_EQ(loaded->activationFormat, program.activationFormat);
    EXPECT_EQ(loaded->weightFormat, program.weightFormat);
    EXPECT_EQ(loaded->epsFormat, program.epsFormat);

    // Executing the reloaded program with the same eps stream must be
    // bit-identical to the original — the cache is a real substitute.
    auto gen_a = grng::makeGenerator("rlf", 17);
    auto gen_b = grng::makeGenerator("rlf", 17);
    accel::FunctionalRunner run_a(program, config, gen_a.get());
    accel::FunctionalRunner run_b(*loaded, config, gen_b.get());
    Rng data(19);
    std::vector<float> x(program.inputDim());
    for (auto &v : x)
        v = static_cast<float>(data.uniform(0, 1));
    EXPECT_EQ(run_a.runPass(x.data()), run_b.runPass(x.data()));
    std::remove(path.c_str());
}

TEST(ModelIo, QuantizedProgramCorruptionAndCrossKindRejected)
{
    const auto path = tempPath("prog_bad");
    auto net = makeMlp();
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    const auto program =
        accel::programFromNetwork(accel::quantizeNetwork(net, config));
    ASSERT_TRUE(saveQuantizedProgram(program, path));

    // A program image is not a network image and vice versa.
    EXPECT_EQ(loadQuantizedNetwork(path), nullptr);
    auto bytes = slurp(path);
    ASSERT_TRUE(saveQuantizedNetwork(accel::quantizeNetwork(net, config),
                                     path));
    EXPECT_EQ(loadQuantizedProgram(path), nullptr);

    // Checksum still guards the payload.
    bytes[bytes.size() / 2] ^= 0x40;
    spit(path, bytes);
    EXPECT_EQ(loadQuantizedProgram(path), nullptr);
    std::remove(path.c_str());
}

TEST(ModelIo, MissingFileReturnsNull)
{
    EXPECT_EQ(loadBayesianMlp("/tmp/vibnn_does_not_exist.bin"), nullptr);
}

TEST(ModelIo, TruncatedFileRejected)
{
    const auto path = tempPath("trunc");
    auto net = makeMlp();
    ASSERT_TRUE(saveBayesianMlp(net, path));
    auto bytes = slurp(path);
    // Chop the file at several points; every prefix must be rejected.
    for (std::size_t keep :
         {std::size_t(4), std::size_t(12), bytes.size() / 2,
          bytes.size() - 1}) {
        std::vector<char> cut(bytes.begin(),
                              bytes.begin() +
                                  static_cast<std::ptrdiff_t>(keep));
        spit(path, cut);
        EXPECT_EQ(loadBayesianMlp(path), nullptr) << "kept " << keep;
    }
    std::remove(path.c_str());
}

TEST(ModelIo, BitCorruptionRejectedByChecksum)
{
    const auto path = tempPath("corrupt");
    auto net = makeMlp();
    ASSERT_TRUE(saveBayesianMlp(net, path));
    auto bytes = slurp(path);
    // Flip one bit in the middle of the parameter payload.
    bytes[bytes.size() / 2] ^= 0x10;
    spit(path, bytes);
    EXPECT_EQ(loadBayesianMlp(path), nullptr);
    std::remove(path.c_str());
}

TEST(ModelIo, WrongMagicRejected)
{
    const auto path = tempPath("magic");
    auto net = makeMlp();
    ASSERT_TRUE(saveBayesianMlp(net, path));
    auto bytes = slurp(path);
    bytes[0] = 'X';
    spit(path, bytes);
    EXPECT_EQ(loadBayesianMlp(path), nullptr);
    std::remove(path.c_str());
}

TEST(ModelIo, CrossKindLoadRejected)
{
    const auto path = tempPath("kind");
    auto net = makeMlp();
    ASSERT_TRUE(saveBayesianMlp(net, path));
    // An MLP image is not a ConvNet image nor a quantized image.
    EXPECT_EQ(loadBayesianConvNet(path), nullptr);
    EXPECT_EQ(loadQuantizedNetwork(path), nullptr);
    std::remove(path.c_str());
}

TEST(ModelIo, TrailerCorruptionRejected)
{
    const auto path = tempPath("trailer");
    auto net = makeMlp();
    ASSERT_TRUE(saveBayesianMlp(net, path));
    auto bytes = slurp(path);
    bytes.back() ^= 0x01; // flip a checksum bit
    spit(path, bytes);
    EXPECT_EQ(loadBayesianMlp(path), nullptr);
    std::remove(path.c_str());
}
