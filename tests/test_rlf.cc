/**
 * @file
 * Tests for the RLF logic — the heart of the RLF-GRNG contribution.
 *
 * The load-bearing equivalences:
 *  1. RlfLogic in Single mode == the circulating LFSR with physically
 *     shifting registers (the RLF is "the same function in RAM").
 *  2. RlfLogic in Combined mode == two Single steps (equation (12) is
 *     exactly two fused applications of equation (11)).
 *  3. RlfLogicMicro (3-bank RAM + buffer register + indexer) ==
 *     RlfLogic Combined, bit for bit, with the 2-port budget honored.
 */

#include <gtest/gtest.h>

#include "grng/lfsr.hh"
#include "grng/rlf.hh"
#include "grng/rlf_grng.hh"

using namespace vibnn::grng;

TEST(RlfLogic, SumEqualsPopcountInitially)
{
    auto seed = expandSeedBits(255, 3);
    int expected = 0;
    for (auto b : seed)
        expected += b;
    RlfLogic rlf(255, seed);
    EXPECT_EQ(rlf.sum(), expected);
}

TEST(RlfLogic, SingleModeMatchesCirculatingLfsr)
{
    auto seed = expandSeedBits(255, 17);
    RlfLogic rlf(255, seed, RlfUpdateMode::Single);
    CirculatingLfsr circ(255, maximalTaps(255), seed);

    for (int step = 0; step < 3000; ++step) {
        rlf.step();
        circ.step();
        ASSERT_EQ(rlf.sum(), circ.popcount()) << "step " << step;
        // Spot-check a few bit positions relative to the head.
        for (int offset : {0, 1, 100, 250, 254}) {
            ASSERT_EQ(rlf.bitFromHead(offset), circ.bitFromHead(offset))
                << "step " << step << " offset " << offset;
        }
    }
}

TEST(RlfLogic, CombinedEqualsTwoSingleSteps)
{
    auto seed = expandSeedBits(255, 23);
    RlfLogic combined(255, seed, RlfUpdateMode::Combined);
    RlfLogic single(255, seed, RlfUpdateMode::Single);

    for (int step = 0; step < 2000; ++step) {
        combined.step();
        single.step();
        single.step();
        ASSERT_EQ(combined.sum(), single.sum()) << "step " << step;
        ASSERT_EQ(combined.head(), single.head()) << "step " << step;
        for (int offset : {0, 3, 128, 251, 254}) {
            ASSERT_EQ(combined.bitFromHead(offset),
                      single.bitFromHead(offset))
                << "step " << step << " offset " << offset;
        }
    }
}

TEST(RlfLogic, CombinedDeltaBoundedByFive)
{
    // Section 4.1.2: combining two updates raises the maximum
    // cycle-to-cycle output difference from three to five.
    auto seed = expandSeedBits(255, 29);
    RlfLogic rlf(255, seed, RlfUpdateMode::Combined);
    EXPECT_EQ(rlf.maxStepDelta(), 5);
    int prev = rlf.sum();
    int peak = 0;
    for (int i = 0; i < 5000; ++i) {
        const int now = rlf.step();
        peak = std::max(peak, std::abs(now - prev));
        prev = now;
    }
    EXPECT_LE(peak, 5);
    EXPECT_GE(peak, 4); // the bound is actually approached
}

TEST(RlfLogic, SingleDeltaBoundedByThree)
{
    auto seed = expandSeedBits(255, 31);
    RlfLogic rlf(255, seed, RlfUpdateMode::Single);
    EXPECT_EQ(rlf.maxStepDelta(), 3);
    int prev = rlf.sum();
    for (int i = 0; i < 5000; ++i) {
        const int now = rlf.step();
        ASSERT_LE(std::abs(now - prev), 3);
        prev = now;
    }
}

TEST(RlfLogicMicro, MatchesFunctionalModel)
{
    auto seed = expandSeedBits(255, 37);
    RlfLogic functional(255, seed, RlfUpdateMode::Combined);
    RlfLogicMicro micro(255, seed);

    EXPECT_EQ(micro.sum(), functional.sum());
    for (int step = 0; step < 20000; ++step) {
        const int a = functional.step();
        const int b = micro.step();
        ASSERT_EQ(a, b) << "diverged at step " << step;
    }
}

TEST(RlfLogicMicro, TwoPortBudgetHonored)
{
    auto seed = expandSeedBits(255, 41);
    RlfLogicMicro micro(255, seed);
    for (int i = 0; i < 10000; ++i)
        micro.step();
    // <= 1 read + 1 write per bank per cycle; peak combined ops 2.
    EXPECT_LE(micro.peakBankOps(), 2);
    // Exactly 2 reads + 2 writes per iteration.
    EXPECT_EQ(micro.ramReads(), 20000u);
    EXPECT_EQ(micro.ramWrites(), 20000u);
}

TEST(RlfLogicMicro, RejectsUnbankableLength)
{
    // 256 is not divisible by 3 and lacks the {n-5,n-3,n-2} taps.
    auto seed = expandSeedBits(256, 1);
    EXPECT_DEATH(RlfLogicMicro(256, seed), "micro model|divisible");
}

TEST(RlfGrng, CountsInRange)
{
    RlfGrngConfig config;
    config.lanes = 8;
    config.seed = 5;
    RlfGrng grng(config);
    for (int i = 0; i < 10000; ++i) {
        const int count = grng.nextCount();
        ASSERT_GE(count, 0);
        ASSERT_LE(count, 255);
    }
}

TEST(RlfGrng, BalancedSeedsStartAtMode)
{
    RlfGrngConfig config;
    config.lanes = 4;
    config.seed = 9;
    RlfGrng grng(config);
    std::vector<int> counts;
    grng.nextCycleCounts(counts);
    // After one step from a balanced seed the sum is within 5 of the
    // binomial mode 127/128.
    for (int c : counts) {
        EXPECT_GE(c, 120);
        EXPECT_LE(c, 135);
    }
}

TEST(RlfGrng, MuxRotatesLanesAcrossPorts)
{
    RlfGrngConfig config;
    config.lanes = 4;
    config.seed = 11;
    config.outputMux = true;
    RlfGrng with_mux(config);
    config.outputMux = false;
    RlfGrng no_mux(config);

    // With rotation, port 0 must see a different lane each cycle: over
    // 4 cycles, port 0's values must equal the no-mux values of lanes
    // (0+c)%4 stepping in lockstep.
    std::vector<int> muxed, plain;
    for (int cycle = 0; cycle < 4; ++cycle) {
        std::vector<int> a, b;
        with_mux.nextCycleCounts(a);
        no_mux.nextCycleCounts(b);
        muxed.push_back(a[0]);
        plain.push_back(b[cycle % 4]);
    }
    EXPECT_EQ(muxed, plain);
}

TEST(RlfGrng, NormalizationTargetsUnitGaussian)
{
    RlfGrngConfig config;
    config.lanes = 16;
    config.seed = 13;
    RlfGrng grng(config);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = grng.next();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.06);
    EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RlfGrng, DeterministicGivenSeed)
{
    RlfGrngConfig config;
    config.seed = 99;
    RlfGrng a(config), b(config);
    for (int i = 0; i < 1000; ++i)
        ASSERT_DOUBLE_EQ(a.next(), b.next());
}
