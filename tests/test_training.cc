/**
 * @file
 * Tests for the batched SIMD training path (bnn/bnn_trainer.hh):
 * finite-difference gradient checks of the minibatch backward for both
 * estimators, trajectory parity of the batched engine at batch size 1
 * against the per-sample reference trainer, bit-identity of batched
 * training across thread counts and kernel tiers, the in-place
 * segmented Adam step against the historical gather/step/scatter
 * reference, pool-invariance of the parallel evaluator, and the
 * quantization-aware fine-tuning accuracy pin against post-hoc
 * quantization on the compiled accelerator program.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "accel/config.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "bnn/bayesian_mlp.hh"
#include "bnn/bnn_trainer.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "data/synth_mnist.hh"

using namespace vibnn;
namespace k = vibnn::accel::kernels;

namespace
{

/** Small Gaussian-blob classification set: `classes` clusters in
 *  dimension `dim`, labels by cluster. */
struct Blobs
{
    std::size_t dim;
    std::vector<float> features;
    std::vector<int> labels;

    nn::DataView
    view() const
    {
        nn::DataView v;
        v.count = labels.size();
        v.dim = dim;
        v.features = features.data();
        v.labels = labels.data();
        return v;
    }
};

Blobs
makeBlobs(std::size_t count, std::size_t dim, int classes,
          std::uint64_t seed)
{
    Rng rng(seed);
    Blobs b;
    b.dim = dim;
    b.features.resize(count * dim);
    b.labels.resize(count);
    std::vector<float> centers(
        static_cast<std::size_t>(classes) * dim);
    for (auto &c : centers)
        c = static_cast<float>(rng.uniform(-1.5, 1.5));
    for (std::size_t i = 0; i < count; ++i) {
        const int cls = static_cast<int>(i % classes);
        b.labels[i] = cls;
        for (std::size_t d = 0; d < dim; ++d)
            b.features[i * dim + d] =
                centers[static_cast<std::size_t>(cls) * dim + d] +
                static_cast<float>(rng.gaussian(0.0, 0.35));
    }
    return b;
}

std::vector<float>
flatParams(const bnn::BayesianMlp &net)
{
    std::vector<float> flat;
    net.gatherParams(flat);
    return flat;
}

bool
bitsEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/** Central finite differences of the fixed-eps loss surface against
 *  the analytic minibatch gradients, on a sampled subset of one
 *  parameter tensor; asserts small relative L2 error. */
void
checkGradientTensor(bnn::BayesianMlp &net, bnn::BnnBatchTrainer &engine,
                    const nn::DataView &data,
                    const std::vector<std::size_t> &idx, float *params,
                    const float *analytic, std::size_t count,
                    const char *what)
{
    Rng pick(977);
    const std::size_t probes = std::min<std::size_t>(count, 24);
    std::vector<std::size_t> which(count);
    std::iota(which.begin(), which.end(), 0);
    pick.shuffle(which);

    const float h = 2e-3f;
    double num2 = 0.0, ana2 = 0.0, diff2 = 0.0;
    for (std::size_t p = 0; p < probes; ++p) {
        const std::size_t i = which[p];
        const float saved = params[i];
        params[i] = saved + h;
        engine.refreshParams();
        const double lp =
            engine.forwardLoss(data, idx.data(), idx.size());
        params[i] = saved - h;
        engine.refreshParams();
        const double lm =
            engine.forwardLoss(data, idx.data(), idx.size());
        params[i] = saved;
        const double num = (lp - lm) / (2.0 * h);
        const double ana = analytic[i];
        num2 += num * num;
        ana2 += ana * ana;
        diff2 += (num - ana) * (num - ana);
    }
    engine.refreshParams();
    const double rel =
        std::sqrt(diff2) / std::max(std::sqrt(ana2), 1e-4);
    EXPECT_LT(rel, 5e-2) << what << " |num|=" << std::sqrt(num2)
                         << " |ana|=" << std::sqrt(ana2);
}

void
runGradCheck(bnn::BnnEstimator estimator)
{
    const auto blobs = makeBlobs(10, 6, 3, 41);
    const auto data = blobs.view();
    Rng rng(17);
    bnn::BayesianMlp net({6, 5, 3}, rng, /*rho_init=*/-2.0f);

    bnn::BnnBatchedTrainConfig cfg;
    cfg.estimator = estimator;
    cfg.seed = 5;
    bnn::BnnBatchTrainer engine(net, cfg);

    std::vector<std::size_t> idx = {0, 3, 5, 8};
    engine.zeroGrads();
    engine.forwardBackward(data, idx.data(), idx.size());

    const auto &grads = engine.gradients();
    auto &layers = net.layers();
    for (std::size_t l = 0; l < layers.size(); ++l) {
        checkGradientTensor(net, engine, data, idx,
                            layers[l].muWeight().data().data(),
                            grads[l].muWeight.data().data(),
                            layers[l].muWeight().size(), "muWeight");
        checkGradientTensor(net, engine, data, idx,
                            layers[l].rhoWeight().data().data(),
                            grads[l].rhoWeight.data().data(),
                            layers[l].rhoWeight().size(), "rhoWeight");
        checkGradientTensor(net, engine, data, idx,
                            layers[l].muBias().data(),
                            grads[l].muBias.data(),
                            layers[l].muBias().size(), "muBias");
        checkGradientTensor(net, engine, data, idx,
                            layers[l].rhoBias().data(),
                            grads[l].rhoBias.data(),
                            layers[l].rhoBias().size(), "rhoBias");
    }
}

} // namespace

TEST(BatchedGradients, MatchFiniteDifferencesLocalReparam)
{
    runGradCheck(bnn::BnnEstimator::LocalReparam);
}

TEST(BatchedGradients, MatchFiniteDifferencesDirectSample)
{
    runGradCheck(bnn::BnnEstimator::DirectWeightSample);
}

TEST(BatchedTrainer, BatchOneLrtMatchesPerSampleTrajectory)
{
    // At batch size 1 with hostRngEps the batched engine consumes
    // exactly the per-sample trainer's random stream (same shuffle,
    // same eps draws in the same order), so the loss trajectories must
    // agree up to the GEMM's different (but fixed) float summation
    // order.
    const auto blobs = makeBlobs(40, 8, 3, 71);
    const auto data = blobs.view();

    Rng ra(7);
    bnn::BayesianMlp netA({8, 7, 3}, ra, -2.0f);
    Rng rb(7);
    bnn::BayesianMlp netB({8, 7, 3}, rb, -2.0f);
    ASSERT_TRUE(bitsEqual(flatParams(netA), flatParams(netB)));

    bnn::BnnTrainConfig ref;
    ref.epochs = 2;
    ref.batchSize = 1;
    ref.seed = 3;
    ref.useLocalReparameterization = true;
    const auto histA = trainBnn(netA, data, ref);

    bnn::BnnBatchedTrainConfig cfg;
    cfg.epochs = 2;
    cfg.batchSize = 1;
    cfg.seed = 3;
    cfg.estimator = bnn::BnnEstimator::LocalReparam;
    cfg.hostRngEps = true;
    const auto histB = trainBnnBatched(netB, data, cfg);

    ASSERT_EQ(histA.trainLoss.size(), histB.trainLoss.size());
    EXPECT_NEAR(histA.trainLoss[0], histB.trainLoss[0],
                1e-3 * std::abs(histA.trainLoss[0]));
    EXPECT_NEAR(histA.trainLoss[1], histB.trainLoss[1],
                5e-2 * std::abs(histA.trainLoss[1]));

    const auto pa = flatParams(netA);
    const auto pb = flatParams(netB);
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < pa.size(); ++i)
        max_abs = std::max(max_abs, std::fabs(pa[i] - pb[i]));
    EXPECT_LT(max_abs, 1e-2f);
}

TEST(BatchedTrainer, BitIdenticalAcrossThreadCounts)
{
    const auto blobs = makeBlobs(30, 8, 3, 91);
    const auto data = blobs.view();

    auto run = [&](ThreadPool *pool) {
        Rng rng(13);
        bnn::BayesianMlp net({8, 10, 3}, rng, -2.0f);
        bnn::BnnBatchedTrainConfig cfg;
        cfg.epochs = 2;
        cfg.batchSize = 8; // 30 % 8 != 0: tail minibatch exercised
        cfg.seed = 29;
        cfg.pool = pool;
        const auto hist = trainBnnBatched(net, data, cfg);
        return std::make_pair(flatParams(net), hist.trainLoss);
    };

    const auto serial = run(nullptr);
    for (const std::size_t workers : {1u, 2u, 5u}) {
        ThreadPool pool(workers);
        const auto sharded = run(&pool);
        EXPECT_TRUE(bitsEqual(sharded.first, serial.first))
            << "workers=" << workers;
        EXPECT_EQ(sharded.second, serial.second)
            << "workers=" << workers;
    }
}

TEST(BatchedTrainer, BitIdenticalAcrossKernelTiers)
{
    const auto blobs = makeBlobs(24, 9, 3, 61);
    const auto data = blobs.view();

    auto run = [&](const k::KernelOps *ops,
                   bnn::BnnEstimator estimator) {
        Rng rng(19);
        bnn::BayesianMlp net({9, 11, 3}, rng, -2.0f);
        bnn::BnnBatchedTrainConfig cfg;
        cfg.epochs = 2;
        cfg.batchSize = 7;
        cfg.seed = 23;
        cfg.estimator = estimator;
        cfg.kernels = ops;
        trainBnnBatched(net, data, cfg);
        return flatParams(net);
    };

    for (const auto estimator : {bnn::BnnEstimator::LocalReparam,
                                 bnn::BnnEstimator::DirectWeightSample}) {
        const auto ref = run(&k::scalarKernels(), estimator);
        for (const k::KernelOps *ops : k::availableKernels())
            EXPECT_TRUE(bitsEqual(run(ops, estimator), ref))
                << ops->name;
    }
}

TEST(TrainBnn, InPlaceAdamMatchesGatherScatterReference)
{
    // The historical trainer gathered params/grads into flat copies,
    // stepped those, and scattered back each minibatch. The in-place
    // segmented sweep must produce the bit-identical trajectory.
    const auto blobs = makeBlobs(26, 7, 3, 51);
    const auto data = blobs.view();

    Rng ra(31);
    bnn::BayesianMlp netA({7, 6, 3}, ra, -2.0f);
    Rng rb(31);
    bnn::BayesianMlp netB({7, 6, 3}, rb, -2.0f);

    bnn::BnnTrainConfig cfg;
    cfg.epochs = 3;
    cfg.batchSize = 5;
    cfg.seed = 37;
    const auto hist = trainBnn(netA, data, cfg);

    // Reference: the pre-refactor loop, reproduced verbatim.
    std::vector<double> refLoss;
    {
        Rng rng(cfg.seed);
        nn::AdamOptimizer optimizer(cfg.learningRate);
        bnn::BnnWorkspace ws = netB.makeWorkspace();
        std::vector<float> params, grads;
        std::vector<std::size_t> order(data.count);
        std::iota(order.begin(), order.end(), 0);
        for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
            rng.shuffle(order);
            double epoch_loss = 0.0;
            std::size_t seen = 0;
            for (std::size_t start = 0; start < data.count;
                 start += cfg.batchSize) {
                const std::size_t end =
                    std::min(start + cfg.batchSize, data.count);
                netB.zeroGrads(ws);
                for (std::size_t s = start; s < end; ++s) {
                    const std::size_t i = order[s];
                    epoch_loss += netB.trainSample(
                        data.sample(i),
                        static_cast<std::size_t>(data.labels[i]), ws,
                        rng, cfg.useLocalReparameterization);
                }
                seen += end - start;
                const float kl_scale = cfg.klWeight *
                    static_cast<float>(end - start) /
                    static_cast<float>(data.count);
                const double kl =
                    netB.accumulateKl(ws, cfg.priorSigma, kl_scale);
                epoch_loss += kl * (end - start) / data.count;
                netB.gatherParams(params);
                netB.gatherGrads(ws, grads);
                optimizer.step(params.data(), grads.data(),
                               params.size());
                netB.scatterParams(params);
            }
            refLoss.push_back(epoch_loss /
                              static_cast<double>(seen));
        }
    }

    EXPECT_EQ(hist.trainLoss, refLoss);
    EXPECT_TRUE(bitsEqual(flatParams(netA), flatParams(netB)));
}

TEST(EvaluateBnn, PoolInvariantAccuracy)
{
    const auto blobs = makeBlobs(36, 8, 3, 81);
    const auto data = blobs.view();
    Rng rng(43);
    bnn::BayesianMlp net({8, 9, 3}, rng, -2.0f);

    const double serial =
        evaluateBnnAccuracy(net, data, /*mc_samples=*/4, /*seed=*/7);
    for (const std::size_t workers : {1u, 3u, 6u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(evaluateBnnAccuracy(net, data, 4, 7, &pool), serial)
            << "workers=" << workers;
    }
}

TEST(BatchedTrainer, DirectEstimatorLearnsWithTailBatch)
{
    const auto blobs = makeBlobs(45, 10, 3, 111);
    const auto data = blobs.view();
    Rng rng(53);
    bnn::BayesianMlp net({10, 12, 3}, rng, -3.0f);

    bnn::BnnBatchedTrainConfig cfg;
    cfg.epochs = 12;
    cfg.batchSize = 8; // 45 % 8 != 0
    cfg.learningRate = 5e-3f;
    cfg.seed = 59;
    cfg.estimator = bnn::BnnEstimator::DirectWeightSample;
    cfg.evalSet = &data;
    cfg.evalSamples = 8;
    const auto hist = trainBnnBatched(net, data, cfg);

    EXPECT_LT(hist.trainLoss.back(), hist.trainLoss.front());
    EXPECT_GT(hist.evalAccuracy.back(), 0.8);
}

TEST(Qat, CompiledProgramAccuracyAtLeastPostHoc)
{
    // Fine-tuning through the eq-(15) grids must not lose accuracy
    // against quantizing the float-trained net post hoc — measured on
    // the actual compiled program, batched executor, shared seeds. An
    // aggressive 5-bit deployment makes the post-hoc loss visible.
    data::SynthMnistConfig synth;
    synth.trainCount = 200;
    synth.testCount = 150;
    synth.seed = 211;
    const auto ds = data::makeSynthMnist(synth);
    const auto train = ds.train.view();
    const auto test = ds.test.view();

    Rng rng(67);
    bnn::BayesianMlp net({data::kMnistPixels, 32, 10}, rng, -4.0f);

    bnn::BnnBatchedTrainConfig pre;
    pre.epochs = 6;
    pre.batchSize = 16;
    pre.learningRate = 2e-3f;
    pre.seed = 73;
    trainBnnBatched(net, train, pre);

    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.bits = 5;
    config.mcSamples = 16;

    bnn::BayesianMlp tuned = net; // fine-tune a copy
    bnn::BnnBatchedTrainConfig qat;
    qat.epochs = 4;
    qat.batchSize = 16;
    qat.learningRate = 5e-4f;
    qat.seed = 79;
    qat.qatActivation = config.activationFormat();
    qat.qatWeight = config.weightFormat();
    qat.qatEps = config.epsFormat();
    qatFineTune(tuned, train, qat);

    auto acceleratorAccuracy = [&](const bnn::BayesianMlp &model) {
        const auto program = accel::compile(model, config);
        accel::McEngineConfig mc;
        mc.seedBase = 401;
        mc.backendId = "batched";
        mc.schedule = accel::McSchedule::PerRound;
        accel::McEngine engine(program, config, mc);
        const auto preds = engine.classifyBatch(test.features,
                                                test.count, test.dim);
        std::size_t correct = 0;
        for (std::size_t i = 0; i < test.count; ++i)
            correct += preds[i] ==
                static_cast<std::size_t>(test.labels[i]);
        return static_cast<double>(correct) /
            static_cast<double>(test.count);
    };

    const double posthoc = acceleratorAccuracy(net);
    const double finetuned = acceleratorAccuracy(tuned);
    EXPECT_GE(finetuned, posthoc)
        << "post-hoc=" << posthoc << " qat=" << finetuned;
    EXPECT_GT(finetuned, 0.5);
}
