/**
 * @file
 * Cross-cutting GRNG quality tests, parameterized over the generator
 * registry: every design that claims to produce unit Gaussians must
 * have the right moments; the continuous software baselines must pass
 * distributional tests; and the known-bad configurations must fail the
 * randomness tests they are supposed to fail.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>

#include "grng/baselines.hh"
#include "grng/clt_grng.hh"
#include "grng/registry.hh"
#include "grng/rlf_grng.hh"
#include "grng/wallace.hh"
#include "fixed/fixed_point.hh"
#include "stats/autocorr.hh"
#include "stats/chi_square.hh"
#include "stats/ks_test.hh"
#include "stats/moments.hh"
#include "stats/runs_test.hh"

using namespace vibnn;
using namespace vibnn::grng;

namespace
{

std::vector<double>
drawSamples(GaussianGenerator &gen, std::size_t count)
{
    std::vector<double> xs(count);
    for (auto &x : xs)
        x = gen.next();
    return xs;
}

} // anonymous namespace

/** Every generator in the registry targets N(0, 1). */
class AllGenerators : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllGenerators, MomentsNearStandardNormal)
{
    auto gen = makeGenerator(GetParam(), 12345);
    auto xs = drawSamples(*gen, 200000);
    stats::RunningMoments m;
    m.add(xs);
    EXPECT_NEAR(m.mean(), 0.0, 0.08) << gen->name();
    // The small-pool software Wallace is *expected* to carry its
    // initial pool's sampling error in sigma (Table 1); the loose
    // bound still catches real normalization bugs.
    EXPECT_NEAR(m.stddev(), 1.0, 0.12) << gen->name();
    EXPECT_NEAR(m.skewness(), 0.0, 0.15) << gen->name();
    // Binomial/recombination designs have slightly light tails; the
    // loose bound still catches gross errors.
    EXPECT_NEAR(m.excessKurtosis(), 0.0, 0.5) << gen->name();
}

TEST_P(AllGenerators, DeterministicGivenSeed)
{
    auto a = makeGenerator(GetParam(), 777);
    auto b = makeGenerator(GetParam(), 777);
    for (int i = 0; i < 256; ++i)
        ASSERT_DOUBLE_EQ(a->next(), b->next()) << a->name();
}

TEST_P(AllGenerators, FillMatchesNext)
{
    auto a = makeGenerator(GetParam(), 31);
    auto b = makeGenerator(GetParam(), 31);
    std::vector<double> filled(100);
    a->fill(filled);
    for (auto x : filled)
        ASSERT_DOUBLE_EQ(x, b->next());
}

TEST_P(AllGenerators, BlockFillMatchesNextBitExact)
{
    // The block API is the hot path: large fills must reproduce the
    // scalar stream bit for bit, including across the generators'
    // internal block boundaries (Wallace pool passes, RLF lane cycles).
    auto a = makeGenerator(GetParam(), 97);
    auto b = makeGenerator(GetParam(), 97);
    std::vector<double> filled(6000);
    a->fill(filled.data(), filled.size());
    for (std::size_t i = 0; i < filled.size(); ++i)
        ASSERT_DOUBLE_EQ(filled[i], b->next())
            << a->name() << " sample " << i;
}

TEST_P(AllGenerators, InterleavedFillAndNextStaysAligned)
{
    // Mixing scalar draws with oddly-sized block fills must never skip
    // or replay samples: the buffered partial blocks have to drain in
    // order.
    auto a = makeGenerator(GetParam(), 53);
    auto b = makeGenerator(GetParam(), 53);
    std::vector<double> stream;
    const std::size_t sizes[] = {1, 3, 7, 50, 2, 1000, 5, 129};
    std::vector<double> buf;
    for (std::size_t sz : sizes) {
        buf.resize(sz);
        a->fill(buf.data(), sz);
        stream.insert(stream.end(), buf.begin(), buf.end());
        stream.push_back(a->next());
    }
    for (std::size_t i = 0; i < stream.size(); ++i)
        ASSERT_DOUBLE_EQ(stream[i], b->next())
            << a->name() << " sample " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllGenerators,
    ::testing::ValuesIn(generatorIds()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

/** Continuous software baselines must pass shape tests outright. */
class ContinuousBaselines : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ContinuousBaselines, PassesKsTest)
{
    auto gen = makeGenerator(GetParam(), 202);
    auto xs = drawSamples(*gen, 50000);
    EXPECT_GT(stats::ksTestStandardNormal(xs).pValue, 1e-3)
        << gen->name();
}

TEST_P(ContinuousBaselines, PassesChiSquare)
{
    auto gen = makeGenerator(GetParam(), 203);
    auto xs = drawSamples(*gen, 50000);
    EXPECT_GT(stats::chiSquareGofNormal(xs, 32).pValue, 1e-3)
        << gen->name();
}

TEST_P(ContinuousBaselines, PassesRunsTests)
{
    auto gen = makeGenerator(GetParam(), 204);
    const double rate = stats::runsTestPassRate(
        [&gen](std::vector<double> &buf) {
            for (auto &x : buf)
                x = gen->next();
        },
        5000, 40);
    EXPECT_GT(rate, 0.75) << gen->name();
}

INSTANTIATE_TEST_SUITE_P(Software, ContinuousBaselines,
                         ::testing::Values("box-muller", "polar",
                                           "ziggurat", "cdf-inversion",
                                           "reference", "wallace-1024",
                                           "wallace-4096", "philox"));

TEST(CltLfsr, RawStreamIsHeavilyCorrelated)
{
    // The motivation for everything in Section 4: a 1-step-per-sample
    // CLT generator produces a popcount walk, not white noise.
    CltLfsrGrng gen(128, 5, 1);
    auto xs = drawSamples(gen, 20000);
    EXPECT_GT(stats::autocorrelation(xs, 1), 0.9);
    EXPECT_FALSE(stats::runsTest(xs).passed);
}

TEST(CltLfsr, ManyStepsDecorrelate)
{
    CltLfsrGrng gen(128, 5, 128); // full refresh between samples
    auto xs = drawSamples(gen, 20000);
    EXPECT_LT(std::fabs(stats::autocorrelation(xs, 1)), 0.05);
}

TEST(CltLfsr, CountMatchesBinomialMoments)
{
    CltLfsrGrng gen(64, 7, 16);
    stats::RunningMoments m;
    for (int i = 0; i < 50000; ++i)
        m.add(static_cast<double>(gen.nextCount()));
    EXPECT_NEAR(m.mean(), 32.0, 0.5);
    EXPECT_NEAR(m.variance(), 16.0, 1.0);
}

TEST(CltLfsr, RejectsTooShortRegister)
{
    EXPECT_DEATH(CltLfsrGrng(16, 1), "equation");
}

TEST(RlfQuality, MuxImprovesSinglePortRuns)
{
    // The ablation claim behind the Figure 8 multiplexers: a single
    // output port's stream fails the runs test badly without the
    // rotation and improves dramatically with it.
    auto collect_port0 = [](bool mux, std::size_t count) {
        RlfGrngConfig config;
        config.lanes = 4;
        config.outputMux = mux;
        config.seed = 55;
        RlfGrng grng(config);
        std::vector<double> port0;
        std::vector<int> cycle;
        for (std::size_t i = 0; i < count; ++i) {
            grng.nextCycleCounts(cycle);
            port0.push_back(grng.normalize(cycle[0]));
        }
        return port0;
    };

    const auto without = collect_port0(false, 4000);
    const auto with = collect_port0(true, 4000);
    const double ac_without = stats::autocorrelation(without, 1);
    const double ac_with = stats::autocorrelation(with, 1);
    EXPECT_GT(ac_without, 0.9);
    EXPECT_LT(ac_with, 0.2);
    EXPECT_FALSE(stats::runsTest(without).passed);
}

TEST(Registry, UnknownIdIsFatal)
{
    EXPECT_DEATH((void)makeGenerator("no-such-generator", 1),
                 "unknown generator");
}

TEST(Registry, ListsAllIds)
{
    const auto ids = generatorIds();
    EXPECT_GE(ids.size(), 12u);
    for (const auto &id : ids) {
        auto gen = makeGenerator(id, 1);
        EXPECT_FALSE(gen->name().empty());
    }
}

TEST(Ziggurat, TailSamplesExist)
{
    ZigguratGrng gen(606);
    int beyond3 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        beyond3 += std::fabs(gen.next()) > 3.0;
    // P(|Z| > 3) = 0.0027.
    EXPECT_NEAR(static_cast<double>(beyond3) / n, 0.0027, 0.001);
}

/** Golden stream pins captured before the transposed-kernel rewrite of
 *  RlfGrng and the kernelized Wallace pass: the eps streams feed every
 *  reproduced accuracy number, so the refactor must be provably
 *  stream-identical, not just statistically equivalent. The cases
 *  cover the default shape, a multi-group (64-lane) shape, the no-mux
 *  ablation, and a partial output-mux group (5 lanes). */
TEST(GoldenStreams, RlfCountStreamsUnchanged)
{
    {
        RlfGrngConfig c;
        c.seed = 123;
        RlfGrng g(c);
        EXPECT_TRUE(g.usesKernelPath());
        const int expected[32] = {
            128, 128, 127, 129, 129, 124, 126, 128, 128, 128, 129,
            128, 124, 124, 127, 129, 127, 129, 128, 126, 124, 127,
            129, 124, 132, 128, 126, 128, 127, 132, 124, 125};
        for (int i = 0; i < 32; ++i)
            ASSERT_EQ(g.nextCount(), expected[i]) << "i=" << i;
    }
    {
        RlfGrngConfig c;
        c.seed = 5;
        c.outputMux = false;
        RlfGrng g(c);
        const int expected[24] = {128, 128, 131, 128, 130, 127,
                                  127, 131, 129, 125, 130, 127,
                                  127, 128, 126, 132, 126, 126,
                                  130, 128, 128, 126, 127, 131};
        for (int i = 0; i < 24; ++i)
            ASSERT_EQ(g.nextCount(), expected[i]) << "i=" << i;
    }
    {
        RlfGrngConfig c;
        c.seed = 11;
        c.lanes = 5; // partial output-mux group
        RlfGrng g(c);
        const int expected[25] = {127, 128, 127, 125, 128, 128, 130,
                                  126, 130, 129, 126, 124, 126, 130,
                                  130, 124, 126, 129, 127, 130, 127,
                                  130, 128, 122, 130};
        for (int i = 0; i < 25; ++i)
            ASSERT_EQ(g.nextCount(), expected[i]) << "i=" << i;
    }
}

TEST(GoldenStreams, RlfFillStreamUnchanged)
{
    RlfGrngConfig c;
    c.seed = 7;
    c.lanes = 64;
    RlfGrng g(c);
    double out[16];
    g.fill(out, 16);
    const double expected[16] = {
        0.062622429108514954,  0.18786728732554486,
        -0.062622429108514954, 0.062622429108514954,
        0.31311214554257477,   0.062622429108514954,
        -0.062622429108514954, 0.062622429108514954,
        -0.31311214554257477,  -0.31311214554257477,
        0.062622429108514954,  -0.31311214554257477,
        0.18786728732554486,   0.062622429108514954,
        -0.062622429108514954, 0.18786728732554486};
    for (int i = 0; i < 16; ++i)
        ASSERT_EQ(out[i], expected[i]) << "i=" << i;
}

TEST(GoldenStreams, WallaceFillStreamsUnchanged)
{
    {
        WallaceConfig c;
        c.seed = 9;
        c.poolSize = 20; // below the AVX2 4-wide threshold
        WallaceGrng g(c);
        double out[12];
        g.fill(out, 12);
        const double expected[12] = {
            0.29915542319618971,   -1.4065803437289373,
            -0.19422911717280655,  1.2828426356170328,
            2.1558738507205142,    -1.0944544570060772,
            -0.60066960601116859,  -0.030038363471977858,
            0.39588479612145328,   0.61314055430410153,
            0.42706624145942529,   -0.44741604132986218};
        for (int i = 0; i < 12; ++i)
            ASSERT_EQ(out[i], expected[i]) << "i=" << i;
    }
    {
        WallaceConfig c;
        c.seed = 4; // default 1024 pool: the 4-wide main loop
        WallaceGrng g(c);
        double out[8];
        g.fill(out, 8);
        const double expected[8] = {
            0.41224927449868076, 1.7468027046810002,
            -1.9417333894062487, -0.216901181536159,
            0.46516019306318862, 1.0056017382370643,
            1.0043621291096836,  -0.11751925243811082};
        for (int i = 0; i < 8; ++i)
            ASSERT_EQ(out[i], expected[i]) << "i=" << i;
    }
}

TEST(FusedFill, FillFixedMatchesFillPlusQuantizeForAllGenerators)
{
    // The fillFixed contract: when a generator claims the fused path,
    // the raws must be bit-identical to fill() + fromReal(Nearest) at
    // the same stream positions — for every registered generator that
    // opts in, across ring-unaligned sizes and after scalar draws.
    const fixed::FixedPointFormat formats[] = {{8, 5}, {12, 8}, {6, 3}};
    for (const auto &id : generatorIds()) {
        for (const auto &fmt : formats) {
            auto fused = makeGenerator(id, 321);
            std::vector<std::int32_t> raws(5000);
            if (!fused->fillFixed(raws.data(), raws.size(), fmt))
                break; // no fused path for this generator
            auto ref = makeGenerator(id, 321);
            std::vector<double> reals(raws.size());
            ref->fill(reals.data(), reals.size());
            for (std::size_t i = 0; i < raws.size(); ++i)
                ASSERT_EQ(raws[i], fmt.fromReal(reals[i]))
                    << id << " fmt=" << fmt.name() << " i=" << i;

            // Interleave scalar draws and odd-sized fused fills: the
            // shared cycle buffer must keep both streams aligned.
            ASSERT_EQ(fused->next(), ref->next()) << id;
            std::int32_t tail[137];
            ASSERT_TRUE(fused->fillFixed(tail, 137, fmt));
            double tail_ref[137];
            ref->fill(tail_ref, 137);
            for (int i = 0; i < 137; ++i)
                ASSERT_EQ(tail[i], fmt.fromReal(tail_ref[i]))
                    << id << " tail i=" << i;
        }
    }
}

TEST(Philox, SplittableRandomAccessMatchesSequential)
{
    // The splittable contract: fillFixedAt(offset, n) must reproduce
    // exactly the samples the sequential stream hands out at those
    // positions, for any offset (including odd ones that land on the
    // second Box-Muller phase), without moving the cursor.
    const fixed::FixedPointFormat fmt{8, 5};
    auto gen = makeGenerator("philox", 777);
    ASSERT_TRUE(gen->splittable());

    auto seq = makeGenerator("philox", 777);
    std::vector<std::int32_t> reference(4096);
    ASSERT_TRUE(seq->fillFixed(reference.data(), reference.size(), fmt));

    const std::pair<std::uint64_t, std::size_t> shards[] = {
        {0, 1}, {1, 1}, {0, 4096}, {17, 333}, {500, 500},
        {4095, 1}, {2048, 2048}, {3, 8}};
    for (const auto &[offset, n] : shards) {
        std::vector<std::int32_t> got(n, -999);
        gen->fillFixedAt(offset, got.data(), n, fmt);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], reference[offset + i])
                << "offset=" << offset << " i=" << i;
    }
    // Random access left the sequential cursor untouched.
    std::vector<std::int32_t> head(64);
    ASSERT_TRUE(gen->fillFixed(head.data(), head.size(), fmt));
    for (std::size_t i = 0; i < head.size(); ++i)
        ASSERT_EQ(head[i], reference[i]) << "i=" << i;
}

TEST(Philox, SeekToRepositionsTheSequentialStream)
{
    const fixed::FixedPointFormat fmt{8, 5};
    auto a = makeGenerator("philox", 55);
    std::vector<std::int32_t> reference(1000);
    ASSERT_TRUE(a->fillFixed(reference.data(), reference.size(), fmt));

    auto b = makeGenerator("philox", 55);
    b->seekTo(437);
    std::vector<std::int32_t> tail(1000 - 437);
    ASSERT_TRUE(b->fillFixed(tail.data(), tail.size(), fmt));
    for (std::size_t i = 0; i < tail.size(); ++i)
        ASSERT_EQ(tail[i], reference[437 + i]) << "i=" << i;
}

TEST(Philox, ReseedMatchesFreshConstruction)
{
    // The in-place rekey the McEngine round loop uses must be
    // indistinguishable from constructing a new generator.
    auto recycled = makeGenerator("philox", 1);
    std::vector<double> warmup(100);
    recycled->fill(warmup.data(), warmup.size());
    ASSERT_TRUE(recycled->reseed(987654321));

    auto fresh = makeGenerator("philox", 987654321);
    for (int i = 0; i < 512; ++i)
        ASSERT_DOUBLE_EQ(recycled->next(), fresh->next()) << "i=" << i;
}

TEST(Philox, PairCacheInvalidatedByReseed)
{
    // next() memoizes the current Box-Muller pair (one transform per
    // two samples). After a rekey the same block index holds different
    // values, so a stale cache would replay the old key's pair —
    // drawing one sample (block 0 cached), reseeding, then drawing
    // from block 0 again is the exact aliasing scenario.
    auto recycled = makeGenerator("philox", 3);
    (void)recycled->next(); // caches block 0 of key(3)
    ASSERT_TRUE(recycled->reseed(99));

    auto fresh = makeGenerator("philox", 99);
    for (int i = 0; i < 4; ++i)
        ASSERT_DOUBLE_EQ(recycled->next(), fresh->next()) << "i=" << i;
}

TEST(Philox, NextAndFillInterleavingsShareOneStream)
{
    // Phase-at-a-time next(), bulk fill() at every parity, and
    // random-access fillFixedAt() all walk the same keyed stream; the
    // pair cache must be invisible across any interleaving.
    auto seq = makeGenerator("philox", 4242);
    std::vector<double> reference(512);
    seq->fill(reference.data(), reference.size());

    auto mixed = makeGenerator("philox", 4242);
    std::size_t at = 0;
    const std::size_t steps[] = {1, 1, 3, 1, 2, 7, 1, 1, 5, 4, 1, 9};
    for (const std::size_t n : steps) {
        if (n == 1) {
            ASSERT_DOUBLE_EQ(mixed->next(), reference[at]) << at;
            ++at;
        } else {
            std::vector<double> chunk(n);
            mixed->fill(chunk.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_DOUBLE_EQ(chunk[i], reference[at + i])
                    << at + i;
            at += n;
        }
    }
    // Random access through the same instance, then back to next().
    const fixed::FixedPointFormat fmt{8, 5};
    std::int32_t fixed_buf[33];
    mixed->fillFixedAt(101, fixed_buf, 33, fmt);
    for (int i = 0; i < 33; ++i)
        ASSERT_EQ(fixed_buf[i], fmt.fromReal(reference[101 + i]))
            << "i=" << i;
    ASSERT_DOUBLE_EQ(mixed->next(), reference[at]);
}

TEST(Philox, StatefulGeneratorsRejectSplitApis)
{
    auto rlf = makeGenerator("rlf", 1);
    EXPECT_FALSE(rlf->splittable());
    EXPECT_FALSE(rlf->reseed(2));
    EXPECT_DEATH(rlf->seekTo(10), "not splittable");
    const fixed::FixedPointFormat fmt{8, 5};
    std::int32_t buf[4];
    EXPECT_DEATH(rlf->fillFixedAt(0, buf, 4, fmt), "not splittable");
}
