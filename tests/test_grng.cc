/**
 * @file
 * Cross-cutting GRNG quality tests, parameterized over the generator
 * registry: every design that claims to produce unit Gaussians must
 * have the right moments; the continuous software baselines must pass
 * distributional tests; and the known-bad configurations must fail the
 * randomness tests they are supposed to fail.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "grng/baselines.hh"
#include "grng/clt_grng.hh"
#include "grng/registry.hh"
#include "grng/rlf_grng.hh"
#include "stats/autocorr.hh"
#include "stats/chi_square.hh"
#include "stats/ks_test.hh"
#include "stats/moments.hh"
#include "stats/runs_test.hh"

using namespace vibnn;
using namespace vibnn::grng;

namespace
{

std::vector<double>
drawSamples(GaussianGenerator &gen, std::size_t count)
{
    std::vector<double> xs(count);
    for (auto &x : xs)
        x = gen.next();
    return xs;
}

} // anonymous namespace

/** Every generator in the registry targets N(0, 1). */
class AllGenerators : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllGenerators, MomentsNearStandardNormal)
{
    auto gen = makeGenerator(GetParam(), 12345);
    auto xs = drawSamples(*gen, 200000);
    stats::RunningMoments m;
    m.add(xs);
    EXPECT_NEAR(m.mean(), 0.0, 0.08) << gen->name();
    // The small-pool software Wallace is *expected* to carry its
    // initial pool's sampling error in sigma (Table 1); the loose
    // bound still catches real normalization bugs.
    EXPECT_NEAR(m.stddev(), 1.0, 0.12) << gen->name();
    EXPECT_NEAR(m.skewness(), 0.0, 0.15) << gen->name();
    // Binomial/recombination designs have slightly light tails; the
    // loose bound still catches gross errors.
    EXPECT_NEAR(m.excessKurtosis(), 0.0, 0.5) << gen->name();
}

TEST_P(AllGenerators, DeterministicGivenSeed)
{
    auto a = makeGenerator(GetParam(), 777);
    auto b = makeGenerator(GetParam(), 777);
    for (int i = 0; i < 256; ++i)
        ASSERT_DOUBLE_EQ(a->next(), b->next()) << a->name();
}

TEST_P(AllGenerators, FillMatchesNext)
{
    auto a = makeGenerator(GetParam(), 31);
    auto b = makeGenerator(GetParam(), 31);
    std::vector<double> filled(100);
    a->fill(filled);
    for (auto x : filled)
        ASSERT_DOUBLE_EQ(x, b->next());
}

TEST_P(AllGenerators, BlockFillMatchesNextBitExact)
{
    // The block API is the hot path: large fills must reproduce the
    // scalar stream bit for bit, including across the generators'
    // internal block boundaries (Wallace pool passes, RLF lane cycles).
    auto a = makeGenerator(GetParam(), 97);
    auto b = makeGenerator(GetParam(), 97);
    std::vector<double> filled(6000);
    a->fill(filled.data(), filled.size());
    for (std::size_t i = 0; i < filled.size(); ++i)
        ASSERT_DOUBLE_EQ(filled[i], b->next())
            << a->name() << " sample " << i;
}

TEST_P(AllGenerators, InterleavedFillAndNextStaysAligned)
{
    // Mixing scalar draws with oddly-sized block fills must never skip
    // or replay samples: the buffered partial blocks have to drain in
    // order.
    auto a = makeGenerator(GetParam(), 53);
    auto b = makeGenerator(GetParam(), 53);
    std::vector<double> stream;
    const std::size_t sizes[] = {1, 3, 7, 50, 2, 1000, 5, 129};
    std::vector<double> buf;
    for (std::size_t sz : sizes) {
        buf.resize(sz);
        a->fill(buf.data(), sz);
        stream.insert(stream.end(), buf.begin(), buf.end());
        stream.push_back(a->next());
    }
    for (std::size_t i = 0; i < stream.size(); ++i)
        ASSERT_DOUBLE_EQ(stream[i], b->next())
            << a->name() << " sample " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllGenerators,
    ::testing::ValuesIn(generatorIds()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

/** Continuous software baselines must pass shape tests outright. */
class ContinuousBaselines : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ContinuousBaselines, PassesKsTest)
{
    auto gen = makeGenerator(GetParam(), 202);
    auto xs = drawSamples(*gen, 50000);
    EXPECT_GT(stats::ksTestStandardNormal(xs).pValue, 1e-3)
        << gen->name();
}

TEST_P(ContinuousBaselines, PassesChiSquare)
{
    auto gen = makeGenerator(GetParam(), 203);
    auto xs = drawSamples(*gen, 50000);
    EXPECT_GT(stats::chiSquareGofNormal(xs, 32).pValue, 1e-3)
        << gen->name();
}

TEST_P(ContinuousBaselines, PassesRunsTests)
{
    auto gen = makeGenerator(GetParam(), 204);
    const double rate = stats::runsTestPassRate(
        [&gen](std::vector<double> &buf) {
            for (auto &x : buf)
                x = gen->next();
        },
        5000, 40);
    EXPECT_GT(rate, 0.75) << gen->name();
}

INSTANTIATE_TEST_SUITE_P(Software, ContinuousBaselines,
                         ::testing::Values("box-muller", "polar",
                                           "ziggurat", "cdf-inversion",
                                           "reference", "wallace-1024",
                                           "wallace-4096"));

TEST(CltLfsr, RawStreamIsHeavilyCorrelated)
{
    // The motivation for everything in Section 4: a 1-step-per-sample
    // CLT generator produces a popcount walk, not white noise.
    CltLfsrGrng gen(128, 5, 1);
    auto xs = drawSamples(gen, 20000);
    EXPECT_GT(stats::autocorrelation(xs, 1), 0.9);
    EXPECT_FALSE(stats::runsTest(xs).passed);
}

TEST(CltLfsr, ManyStepsDecorrelate)
{
    CltLfsrGrng gen(128, 5, 128); // full refresh between samples
    auto xs = drawSamples(gen, 20000);
    EXPECT_LT(std::fabs(stats::autocorrelation(xs, 1)), 0.05);
}

TEST(CltLfsr, CountMatchesBinomialMoments)
{
    CltLfsrGrng gen(64, 7, 16);
    stats::RunningMoments m;
    for (int i = 0; i < 50000; ++i)
        m.add(static_cast<double>(gen.nextCount()));
    EXPECT_NEAR(m.mean(), 32.0, 0.5);
    EXPECT_NEAR(m.variance(), 16.0, 1.0);
}

TEST(CltLfsr, RejectsTooShortRegister)
{
    EXPECT_DEATH(CltLfsrGrng(16, 1), "equation");
}

TEST(RlfQuality, MuxImprovesSinglePortRuns)
{
    // The ablation claim behind the Figure 8 multiplexers: a single
    // output port's stream fails the runs test badly without the
    // rotation and improves dramatically with it.
    auto collect_port0 = [](bool mux, std::size_t count) {
        RlfGrngConfig config;
        config.lanes = 4;
        config.outputMux = mux;
        config.seed = 55;
        RlfGrng grng(config);
        std::vector<double> port0;
        std::vector<int> cycle;
        for (std::size_t i = 0; i < count; ++i) {
            grng.nextCycleCounts(cycle);
            port0.push_back(grng.normalize(cycle[0]));
        }
        return port0;
    };

    const auto without = collect_port0(false, 4000);
    const auto with = collect_port0(true, 4000);
    const double ac_without = stats::autocorrelation(without, 1);
    const double ac_with = stats::autocorrelation(with, 1);
    EXPECT_GT(ac_without, 0.9);
    EXPECT_LT(ac_with, 0.2);
    EXPECT_FALSE(stats::runsTest(without).passed);
}

TEST(Registry, UnknownIdIsFatal)
{
    EXPECT_DEATH((void)makeGenerator("no-such-generator", 1),
                 "unknown generator");
}

TEST(Registry, ListsAllIds)
{
    const auto ids = generatorIds();
    EXPECT_GE(ids.size(), 12u);
    for (const auto &id : ids) {
        auto gen = makeGenerator(id, 1);
        EXPECT_FALSE(gen->name().empty());
    }
}

TEST(Ziggurat, TailSamplesExist)
{
    ZigguratGrng gen(606);
    int beyond3 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        beyond3 += std::fabs(gen.next()) > 3.0;
    // P(|Z| > 3) = 0.0027.
    EXPECT_NEAR(static_cast<double>(beyond3) / n, 0.0027, 0.001);
}
