/**
 * @file
 * Tests for the GRNG hardware survey models: the comparison the paper
 * makes qualitatively in Section 2.3 (CLT and Wallace are the cheap
 * hardware families) must hold quantitatively in our cost models, and
 * the models must scale sensibly with the task size.
 */

#include <gtest/gtest.h>

#include "hwmodel/cyclonev.hh"
#include "hwmodel/grng_survey.hh"

using namespace vibnn::hw;

namespace
{

const GrngSurveyRow &
findRow(const std::vector<GrngSurveyRow> &rows, const std::string &family)
{
    for (const auto &r : rows) {
        if (r.family == family)
            return r;
    }
    ADD_FAILURE() << "missing family " << family;
    static GrngSurveyRow dummy;
    return dummy;
}

} // namespace

TEST(GrngSurvey, CoversAllFourFamilies)
{
    SurveyGrngConfig config;
    const auto rows = grngSurvey(config);
    ASSERT_EQ(rows.size(), 5u);
    // Section 2.3's taxonomy, plus the CLT representative.
    for (const char *family :
         {"CDF inversion", "transformation", "rejection", "CLT",
          "recursion"}) {
        const auto &row = findRow(rows, family);
        EXPECT_FALSE(row.design.empty());
        EXPECT_GT(row.estimate.fmaxMhz, 0.0);
        EXPECT_GT(row.estimate.powerMw, 0.0);
        EXPECT_GT(row.samplesPerCycle, 0.0);
    }
}

TEST(GrngSurvey, PaperFamiliesAreCheapestInLogic)
{
    SurveyGrngConfig config; // 64 lanes, the BNN task
    const auto rows = grngSurvey(config);
    const auto &rlf = findRow(rows, "CLT");
    const auto &wallace = findRow(rows, "recursion");
    const auto &icdf = findRow(rows, "CDF inversion");
    const auto &bm = findRow(rows, "transformation");

    // The paper's two designs beat both function-evaluation families
    // on soft logic...
    EXPECT_LT(rlf.estimate.total().alms, icdf.estimate.total().alms);
    EXPECT_LT(rlf.estimate.total().alms, bm.estimate.total().alms);
    EXPECT_LT(wallace.estimate.total().alms, icdf.estimate.total().alms);
    EXPECT_LT(wallace.estimate.total().alms, bm.estimate.total().alms);
    // ...and use no DSP multipliers at all, which the PE array needs
    // exclusively (Table 4 shows 342/342 DSPs on the network).
    EXPECT_EQ(rlf.estimate.total().dsps, 0);
    EXPECT_EQ(wallace.estimate.total().dsps, 0);
    EXPECT_GT(icdf.estimate.total().dsps, 0);
    EXPECT_GT(bm.estimate.total().dsps, 0);
}

TEST(GrngSurvey, FunctionEvaluationFamiliesWouldStarveThePeArray)
{
    // At the 64-lane task size, the multiplier families alone consume
    // a large share of the device's 342 DSPs — hardware that Table 4
    // shows the PE array needs at 100%.
    SurveyGrngConfig config;
    const auto icdf = cdfInversionEstimate(config);
    const auto bm = boxMullerEstimate(config);
    EXPECT_GT(icdf.total().dsps, CycloneVDevice::totalDsps / 4);
    EXPECT_GT(bm.total().dsps, CycloneVDevice::totalDsps / 4);
}

TEST(GrngSurvey, OnlyRejectionHasNonDeterministicRate)
{
    SurveyGrngConfig config;
    const auto rows = grngSurvey(config);
    for (const auto &row : rows) {
        if (row.family == "rejection") {
            EXPECT_FALSE(row.deterministicRate);
            EXPECT_LT(row.samplesPerCycle,
                      static_cast<double>(config.outputs));
        } else {
            EXPECT_TRUE(row.deterministicRate);
            EXPECT_DOUBLE_EQ(row.samplesPerCycle,
                             static_cast<double>(config.outputs));
        }
    }
}

TEST(GrngSurvey, CostsScaleWithLaneCount)
{
    SurveyGrngConfig small;
    small.outputs = 16;
    SurveyGrngConfig large;
    large.outputs = 64;

    for (auto *fn :
         {&cdfInversionEstimate, &boxMullerEstimate, &zigguratEstimate}) {
        const auto s = (*fn)(small).total();
        const auto l = (*fn)(large).total();
        EXPECT_GT(l.alms, s.alms);
        EXPECT_GE(l.dsps, s.dsps);
        EXPECT_GE(l.memoryBits, s.memoryBits);
        // Roughly linear in lanes: 4x lanes should give >= 3x ALMs.
        EXPECT_GT(l.alms, 3.0 * s.alms);
    }
}

TEST(GrngSurvey, WiderDatapathCostsMore)
{
    SurveyGrngConfig narrow;
    narrow.internalBits = 12;
    SurveyGrngConfig wide;
    wide.internalBits = 24;
    EXPECT_GT(boxMullerEstimate(wide).total().alms,
              boxMullerEstimate(narrow).total().alms);
    EXPECT_GT(zigguratEstimate(wide).total().memoryBits,
              zigguratEstimate(narrow).total().memoryBits);
}

TEST(GrngSurvey, EstimatesAreItemized)
{
    SurveyGrngConfig config;
    for (const auto &row : grngSurvey(config)) {
        EXPECT_GE(row.estimate.components.size(), 3u)
            << row.design << " should be itemized";
        // Totals must equal the component sum by construction.
        ResourceEstimate sum;
        for (const auto &c : row.estimate.components)
            sum += c.resources;
        EXPECT_DOUBLE_EQ(sum.alms, row.estimate.total().alms);
        EXPECT_EQ(sum.memoryBits, row.estimate.total().memoryBits);
    }
}
