/**
 * @file
 * Tests for the SIMD kernel layer (accel/kernels/): bit-exactness of
 * every available dispatch tier against the scalar reference — and of
 * the scalar reference against the DatapathKernel / FixedPointFormat
 * arithmetic it mirrors — across registered fixed-point formats, odd
 * and prime sizes that exercise tail lanes, and saturation at the grid
 * bounds; the fused WeightGenerator::sampleBlockFused path against the
 * classic sampleBlock staging path; activation-range saturation of the
 * int32-narrowed batched path; and thread-count invariance (1/2/5
 * runners) plus tile-size invariance of the intra-pass parallel
 * BatchedRunner on synth images.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "accel/batched_runner.hh"
#include "accel/config.hh"
#include "accel/kernels/kernels.hh"
#include "accel/program.hh"
#include "accel/weight_generator.hh"
#include "bnn/bayesian_cnn.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "fixed/fixed_point.hh"
#include "grng/lfsr.hh"
#include "grng/registry.hh"
#include "grng/rlf.hh"
#include "grng/wallace.hh"

using namespace vibnn;
using namespace vibnn::accel;
namespace k = vibnn::accel::kernels;

namespace
{

/** The fixed-point grids the datapath registers across the bit-length
 *  sweep (Figure 18): activation Q(B, B-4), weight Q(B, B-2), eps
 *  Q(8, 5), plus wider formats that defeat the int16/int32 SIMD fast
 *  paths so their fallbacks are exercised too. */
const fixed::FixedPointFormat kFormats[] = {
    {8, 5},  {8, 4},   {8, 6},  {6, 3},   {4, 0},
    {12, 8}, {16, 10}, {16, 0}, {24, 16}, {32, 24},
};

std::vector<double>
probeValues(const fixed::FixedPointFormat &fmt, std::uint64_t seed,
            std::size_t count)
{
    Rng rng(seed);
    std::vector<double> values;
    // Ties (k + 0.5 LSBs), the largest double below one half, the
    // saturation bounds and beyond, and zero: the rounding edge cases
    // `round half away from zero` has to get right.
    const double res = fmt.resolution();
    values.insert(values.end(),
                  {0.0, 0.5 * res, -0.5 * res, 1.5 * res, -2.5 * res,
                   0.49999999999999994 * res, -0.49999999999999994 * res,
                   fmt.realMax(), fmt.realMin(), fmt.realMax() + 7.3,
                   fmt.realMin() - 7.3, fmt.realMax() * 2.5,
                   fmt.realMin() * 2.5});
    while (values.size() < count)
        values.push_back((rng.uniform() * 2.0 - 1.0) *
                         (fmt.realMax() * 1.25));
    return values;
}

/** Weight/activation raws uniform over the format's full raw range. */
std::vector<std::int32_t>
randomRaws(const fixed::FixedPointFormat &fmt, std::uint64_t seed,
           std::size_t count)
{
    Rng rng(seed);
    const auto lo = fmt.rawMin();
    const auto span =
        static_cast<std::uint64_t>(fmt.rawMax() - fmt.rawMin() + 1);
    std::vector<std::int32_t> raws(count);
    for (auto &r : raws)
        r = static_cast<std::int32_t>(
            lo + static_cast<std::int64_t>(rng.uniformInt(span)));
    return raws;
}

AcceleratorConfig
smallConfig(int mc_samples = 1)
{
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = mc_samples;
    return config;
}

std::vector<float>
randomBatch(std::size_t count, std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(count * dim);
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform());
    return xs;
}

/** Drive one full round on a fresh stream and return the raw batch
 *  outputs. */
std::vector<std::int64_t>
roundOutputs(BatchedRunner &runner, const std::vector<float> &xs,
             std::size_t count, std::size_t dim, std::uint64_t seed)
{
    auto gen = grng::makeGenerator("rlf", seed);
    runner.setGenerator(gen.get());
    std::vector<std::int64_t> out(count * runner.program().outputDim());
    runner.runRoundBatch(xs.data(), count, dim, out.data());
    return out;
}

} // namespace

TEST(KernelDispatch, ScalarTierAlwaysAvailableAndActiveTierListed)
{
    const auto tiers = k::availableKernels();
    ASSERT_FALSE(tiers.empty());
    EXPECT_STREQ(tiers.front()->name, "scalar");
    EXPECT_NE(k::kernelsByName("scalar"), nullptr);
    EXPECT_EQ(k::kernelsByName("no-such-tier"), nullptr);

    bool active_listed = false;
    for (const auto *tier : tiers)
        active_listed |= std::string(tier->name) == k::activeKernelName();
    EXPECT_TRUE(active_listed)
        << "active tier " << k::activeKernelName()
        << " missing from availableKernels()";
}

TEST(KernelQuantize, MatchesFromRealAcrossFormatsAndTiers)
{
    for (const auto &fmt : kFormats) {
        // Prime count: every tier gets a ragged tail.
        const auto values = probeValues(fmt, 101 + fmt.totalBits(), 257);
        const std::size_t n = values.size();
        std::vector<float> floats(values.begin(), values.end());

        std::vector<std::int32_t> got(n);
        for (const auto *tier : k::availableKernels()) {
            tier->quantizeDouble(values.data(), got.data(), n,
                                 fmt.fracBits(),
                                 static_cast<std::int32_t>(fmt.rawMin()),
                                 static_cast<std::int32_t>(fmt.rawMax()));
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(got[i], fmt.fromReal(values[i]))
                    << tier->name << " " << fmt.name() << " value "
                    << values[i];

            tier->quantizeFloat(floats.data(), got.data(), n,
                                fmt.fracBits(),
                                static_cast<std::int32_t>(fmt.rawMin()),
                                static_cast<std::int32_t>(fmt.rawMax()));
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(got[i],
                          fmt.fromReal(static_cast<double>(floats[i])))
                    << tier->name << " " << fmt.name() << " float value "
                    << floats[i];
        }
    }
}

TEST(KernelSampleWeights, MatchesDatapathKernelAcrossFormatsAndTiers)
{
    const fixed::FixedPointFormat eps_formats[] = {{8, 5}, {16, 10}};
    for (const auto &wfmt : kFormats) {
        for (const auto &efmt : eps_formats) {
            // Prime count for tail lanes. Wide formats push the
            // sigma*eps bound past int32 and exercise the SIMD tiers'
            // scalar fallback branch.
            const std::size_t n = 131;
            const auto mu = randomRaws(wfmt, 7, n);
            const auto sigma = randomRaws(wfmt, 11, n);
            const auto eps = randomRaws(efmt, 13, n);

            DatapathKernel kernel({8, 4}, wfmt, efmt);
            k::SampleParams params;
            params.epsShift = efmt.fracBits();
            params.wMin = static_cast<std::int32_t>(wfmt.rawMin());
            params.wMax = static_cast<std::int32_t>(wfmt.rawMax());
            params.sigmaAbsMax = -wfmt.rawMin();
            params.epsAbsMax = -efmt.rawMin();

            std::vector<std::int32_t> got(n);
            for (const auto *tier : k::availableKernels()) {
                tier->sampleWeights(mu.data(), sigma.data(), eps.data(),
                                    got.data(), n, params);
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(got[i], kernel.sampleWeight(mu[i], sigma[i],
                                                          eps[i]))
                        << tier->name << " w=" << wfmt.name()
                        << " eps=" << efmt.name() << " i=" << i;
            }
        }
    }
}

TEST(KernelPack, PackInt16ExactOnOddSizes)
{
    Rng rng(5);
    for (const std::size_t n : {1u, 7u, 16u, 17u, 97u}) {
        std::vector<std::int32_t> in(n);
        for (auto &v : in)
            v = static_cast<std::int32_t>(
                    rng.uniformInt(std::uint64_t{65536})) -
                32768;
        std::vector<std::int16_t> got(n);
        for (const auto *tier : k::availableKernels()) {
            tier->packInt16(in.data(), got.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(got[i], static_cast<std::int16_t>(in[i]))
                    << tier->name << " n=" << n << " i=" << i;
        }
    }
}

namespace
{

/** Independent GEMM reference straight off DatapathKernel — pins the
 *  scalar kernel tier (and through it every SIMD tier) to the
 *  executor arithmetic, not just to itself. */
void
naiveGemm(const k::GemmArgs &a, const DatapathKernel &kernel,
          std::vector<std::int32_t> &out)
{
    for (std::size_t o = 0; o < a.outDim; ++o) {
        for (std::size_t b = 0; b < a.images; ++b) {
            std::int64_t acc = 0;
            for (std::size_t i = 0; i < a.inDim; ++i)
                acc += static_cast<std::int64_t>(
                           a.weights[o * a.ldw + i]) *
                    a.acts[b * a.lda + i];
            const std::int64_t v = a.finish.relu
                ? kernel.finishNeuron(acc, a.bias[o])
                : kernel.finishOutputNeuron(acc, a.bias[o]);
            out[o * a.outNeuronStride + b * a.outImageStride] =
                static_cast<std::int32_t>(v);
        }
    }
}

} // namespace

TEST(KernelGemm, MatchesDatapathFinishAcrossSizesTiersAndLayouts)
{
    // Odd/prime shapes exercise both the k tails (8/16-lane vectors)
    // and the image tails (4-image register tile).
    struct Shape
    {
        std::size_t inDim, outDim, images;
    };
    const Shape shapes[] = {
        {1, 1, 1},  {3, 2, 5},   {7, 5, 4},   {17, 3, 13},
        {31, 7, 6}, {97, 11, 9}, {128, 4, 8},
    };
    const fixed::FixedPointFormat act{8, 4}, weight{8, 6};
    DatapathKernel kernel(act, weight, {8, 5});

    for (const auto &shape : shapes) {
        for (const bool relu : {true, false}) {
            for (const bool neuron_major : {false, true}) {
                const std::size_t ldw = shape.inDim + 3; // padded strides
                const std::size_t lda = shape.inDim + 5;
                auto weights =
                    randomRaws(weight, 17 + shape.inDim,
                               shape.outDim * ldw);
                auto acts =
                    randomRaws(act, 19 + shape.images, shape.images * lda);
                auto bias = randomRaws(weight, 23, shape.outDim);

                k::GemmArgs args;
                args.weights = weights.data();
                args.ldw = ldw;
                args.acts = acts.data();
                args.lda = lda;
                args.bias = bias.data();
                args.inDim = shape.inDim;
                args.outDim = shape.outDim;
                args.images = shape.images;
                if (neuron_major) {
                    args.outNeuronStride = shape.images;
                    args.outImageStride = 1;
                } else {
                    args.outNeuronStride = 1;
                    args.outImageStride = shape.outDim;
                }
                args.finish.biasShift = act.fracBits();
                args.finish.outShift = weight.fracBits();
                args.finish.outMin =
                    static_cast<std::int32_t>(act.rawMin());
                args.finish.outMax =
                    static_cast<std::int32_t>(act.rawMax());
                args.finish.relu = relu;

                std::vector<std::int32_t> expected(shape.outDim *
                                                   shape.images);
                naiveGemm(args, kernel, expected);

                // 8-bit operands satisfy the int16 madd contract.
                std::vector<std::int16_t> w16(weights.size());
                std::vector<std::int16_t> a16(acts.size());
                k::scalarKernels().packInt16(weights.data(), w16.data(),
                                             weights.size());
                k::scalarKernels().packInt16(acts.data(), a16.data(),
                                             acts.size());

                std::vector<std::int32_t> got(expected.size());
                args.out = got.data();
                for (const auto *tier : k::availableKernels()) {
                    for (const bool use16 : {false, true}) {
                        args.weights16 = use16 ? w16.data() : nullptr;
                        args.acts16 = use16 ? a16.data() : nullptr;
                        std::fill(got.begin(), got.end(), -12345);
                        tier->gemmBatch(args);
                        ASSERT_EQ(got, expected)
                            << tier->name << " inDim=" << shape.inDim
                            << " images=" << shape.images
                            << " relu=" << relu << " use16=" << use16
                            << " neuronMajor=" << neuron_major;
                    }
                }
            }
        }
    }
}

TEST(KernelGemm, SaturatesOnActivationBoundsNotInt32)
{
    // Extreme operands drive the accumulator far past the activation
    // grid: the finish stage must clamp at the format bounds in every
    // tier (the int32 narrowing never truncates, it saturates).
    const fixed::FixedPointFormat act{8, 4}, weight{8, 6};
    DatapathKernel kernel(act, weight, {8, 5});
    const std::size_t in_dim = 33, images = 5;
    std::vector<std::int32_t> weights(in_dim, 127);  // rawMax
    std::vector<std::int32_t> acts(images * in_dim, 127);
    for (std::size_t i = 0; i < in_dim; i += 2)
        acts[in_dim + i] = -128; // one image swings negative
    std::vector<std::int32_t> bias = {-128};

    k::GemmArgs args;
    args.weights = weights.data();
    args.ldw = in_dim;
    args.acts = acts.data();
    args.lda = in_dim;
    args.bias = bias.data();
    args.inDim = in_dim;
    args.outDim = 1;
    args.images = images;
    args.outNeuronStride = 1;
    args.outImageStride = 1;
    args.finish.biasShift = act.fracBits();
    args.finish.outShift = weight.fracBits();
    args.finish.outMin = static_cast<std::int32_t>(act.rawMin());
    args.finish.outMax = static_cast<std::int32_t>(act.rawMax());

    std::vector<std::int32_t> expected(images);
    for (const bool relu : {true, false}) {
        args.finish.relu = relu;
        naiveGemm(args, kernel, expected);
        for (const auto v : expected) {
            ASSERT_GE(v, args.finish.outMin);
            ASSERT_LE(v, args.finish.outMax);
        }
        std::vector<std::int32_t> got(images);
        for (const auto *tier : k::availableKernels()) {
            args.out = got.data();
            tier->gemmBatch(args);
            ASSERT_EQ(got, expected) << tier->name << " relu=" << relu;
        }
    }
}

TEST(KernelFusedSampling, SampleBlockFusedMatchesStagedSampleBlock)
{
    // Crossing the 4096-eps ring boundary at a prime stride pins the
    // chunked fused path to the classic staged path on the identical
    // eps stream.
    const fixed::FixedPointFormat act{8, 4}, weight{8, 6}, eps{8, 5};
    DatapathKernel kernel(act, weight, eps);
    const std::size_t n = 10007;
    const auto mu = randomRaws(weight, 29, n);
    const auto sigma = randomRaws(weight, 31, n);

    auto gen_a = grng::makeGenerator("rlf", 77);
    WeightGenerator staged(kernel, gen_a.get());
    std::vector<std::int64_t> expected(n);
    staged.sampleBlock(mu.data(), sigma.data(), expected.data(), n);

    auto gen_b = grng::makeGenerator("rlf", 77);
    WeightGenerator fused(kernel, gen_b.get());
    std::vector<std::int32_t> got(n);
    fused.sampleBlockFused(mu.data(), sigma.data(), got.data(), n);

    EXPECT_EQ(staged.samplesDrawn(), fused.samplesDrawn());
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(static_cast<std::int64_t>(got[i]), expected[i])
            << "i=" << i;
}

TEST(KernelFusedSampling, EpsRingMatchesPerSampleConversion)
{
    // The vectorized refill conversion must reproduce the per-sample
    // fromReal stream exactly.
    const fixed::FixedPointFormat eps{8, 5};
    DatapathKernel kernel({8, 4}, {8, 6}, eps);
    auto gen = grng::makeGenerator("rlf", 99);
    WeightGenerator wg(kernel, gen.get());

    auto ref_gen = grng::makeGenerator("rlf", 99);
    std::vector<double> real(WeightGenerator::epsBlock);
    ref_gen->fill(real.data(), real.size());
    for (std::size_t i = 0; i < real.size(); ++i)
        ASSERT_EQ(wg.nextEpsRaw(), eps.fromReal(real[i])) << "i=" << i;
}

TEST(BatchedRunnerParallel, ThreadCountInvariantOnMlpAndCnn)
{
    const auto config = smallConfig();

    Rng mlp_rng(3);
    bnn::BayesianMlp mlp({24, 16, 4}, mlp_rng, /*rho_init=*/-2.0f);
    const auto mlp_program = compile(mlp, config);

    nn::ConvNetConfig cnn_cfg;
    cnn_cfg.inChannels = 1;
    cnn_cfg.imageHeight = 8;
    cnn_cfg.imageWidth = 8;
    cnn_cfg.blocks = {{/*outChannels=*/3, /*kernel=*/3, /*stride=*/1,
                       /*pad=*/1, /*pool=*/true, /*poolWindow=*/2}};
    cnn_cfg.denseHidden = {12};
    cnn_cfg.numClasses = 4;
    Rng cnn_rng(4);
    bnn::BayesianConvNet cnn(cnn_cfg, cnn_rng, /*rho_init=*/-2.0f);
    const auto cnn_program = compile(cnn, config);

    for (const auto *program : {&mlp_program, &cnn_program}) {
        const std::size_t dim = program->inputDim();
        const std::size_t count = 23; // odd: ragged shard boundaries
        const auto xs = randomBatch(count, dim, 55);

        auto idle = grng::makeGenerator("rlf", 1);
        BatchedRunner runner(*program, config, idle.get());
        const auto serial = roundOutputs(runner, xs, count, dim, 42);

        // 1/2/5 concurrent runners: a pool's parties() is workers + 1.
        for (const std::size_t workers : {0u, 1u, 4u}) {
            ThreadPool pool(workers);
            runner.setWorkPool(&pool);
            const auto parallel = roundOutputs(runner, xs, count, dim, 42);
            EXPECT_EQ(parallel, serial)
                << "workers=" << workers << " program input dim=" << dim;
            runner.setWorkPool(nullptr);
        }
    }
}

TEST(BatchedRunnerParallel, WideFormatsConstructAndRun)
{
    // The widest admissible grids (32-bit): the madd-eligibility bound
    // must be computed without overflowing (UBSan-enforced in the
    // sanitizer CI leg) and the round must still saturate on the
    // format, not on int32.
    QuantizedNetwork network;
    network.activationFormat = {32, 28};
    network.weightFormat = {32, 30};
    network.epsFormat = {8, 5};
    QuantizedLayer layer;
    layer.inDim = 6;
    layer.outDim = 3;
    Rng rng(9);
    const auto wfmt = network.weightFormat;
    for (std::size_t i = 0; i < layer.inDim * layer.outDim; ++i) {
        layer.muWeight.push_back(static_cast<std::int32_t>(
            wfmt.fromReal(rng.uniform() * 2.0 - 1.0)));
        layer.sigmaWeight.push_back(static_cast<std::int32_t>(
            wfmt.fromReal(rng.uniform() * 0.25)));
    }
    for (std::size_t o = 0; o < layer.outDim; ++o) {
        layer.muBias.push_back(static_cast<std::int32_t>(
            wfmt.fromReal(rng.uniform() - 0.5)));
        layer.sigmaBias.push_back(0);
    }
    network.layers.push_back(layer);
    const auto program = programFromNetwork(network);

    auto config = smallConfig();
    config.peSets = 1;
    config.pesPerSet = 2;
    auto gen = grng::makeGenerator("rlf", 3);
    BatchedRunner runner(program, config, gen.get());
    const auto xs = randomBatch(5, layer.inDim, 21);
    const auto out = roundOutputs(runner, xs, 5, layer.inDim, 8);
    for (const auto v : out) {
        EXPECT_GE(v, network.activationFormat.rawMin());
        EXPECT_LE(v, network.activationFormat.rawMax());
    }
}

TEST(BatchedRunnerParallel, GemmTileDoesNotChangeResults)
{
    const auto config = smallConfig();
    Rng rng(6);
    bnn::BayesianMlp net({24, 16, 4}, rng, /*rho_init=*/-2.0f);
    const auto program = compile(net, config);
    const std::size_t count = 19;
    const auto xs = randomBatch(count, program.inputDim(), 77);

    auto idle = grng::makeGenerator("rlf", 1);
    BatchedRunner runner(program, config, idle.get());
    const auto reference =
        roundOutputs(runner, xs, count, program.inputDim(), 13);

    for (const char *tile : {"1", "3", "64"}) {
        ::setenv("VIBNN_GEMM_TILE", tile, 1);
        auto idle2 = grng::makeGenerator("rlf", 1);
        BatchedRunner tiled(program, config, idle2.get());
        ::unsetenv("VIBNN_GEMM_TILE");
        EXPECT_EQ(tiled.imageTile(),
                  static_cast<std::size_t>(std::atoi(tile)));
        const auto got =
            roundOutputs(tiled, xs, count, program.inputDim(), 13);
        EXPECT_EQ(got, reference) << "tile=" << tile;
    }
}

TEST(KernelRlf, CycleCountsMatchRlfLogicAcrossTiers)
{
    // The transposed lane-parallel RLF kernel against the per-lane
    // RlfLogic functional model: pre-mux counts, in-place plane/sum
    // updates, and head advance must all agree for every tier, for
    // full and partial bit-plane groups, across burst boundaries at
    // prime cycle counts (a resumed burst must continue the stream,
    // not restart it).
    const int length = 255; // taps {250, 252, 253} = {n-5, n-3, n-2}
    for (const int lanes : {5, 8, 16}) {
        const int groups = (lanes + 7) / 8;

        // Reference: one RlfLogic per lane.
        Rng seeder(1234 + lanes);
        std::vector<std::vector<std::uint8_t>> seeds;
        for (int lane = 0; lane < lanes; ++lane)
            seeds.push_back(grng::expandSeedBits(length, seeder.next()));

        for (const auto *tier : k::availableKernels()) {
            std::vector<grng::RlfLogic> ref;
            for (int lane = 0; lane < lanes; ++lane)
                ref.emplace_back(length, seeds[lane],
                                 grng::RlfUpdateMode::Combined);

            // Transposed state: plane g byte p bit j = lane 8g+j's
            // state bit p; padding columns stay zero.
            std::vector<std::uint8_t> planes(
                static_cast<std::size_t>(length) * groups, 0);
            std::vector<std::int32_t> sums(
                static_cast<std::size_t>(groups) * 8, 0);
            for (int lane = 0; lane < lanes; ++lane)
                for (int p = 0; p < length; ++p)
                    if (seeds[lane][p]) {
                        planes[static_cast<std::size_t>(lane / 8) *
                                   length +
                               p] |= static_cast<std::uint8_t>(
                            1u << (lane & 7));
                        ++sums[lane];
                    }

            k::RlfState st;
            st.planes = planes.data();
            st.sums = sums.data();
            st.length = length;
            st.groups = groups;
            st.head = 0;

            const std::size_t bursts[] = {97, 31, 1, 128};
            std::vector<std::int32_t> counts;
            for (const std::size_t cycles : bursts) {
                counts.assign(cycles * groups * 8, -1);
                tier->rlfCycleCounts(st, cycles, counts.data());
                for (std::size_t c = 0; c < cycles; ++c)
                    for (int lane = 0; lane < lanes; ++lane)
                        ASSERT_EQ(counts[c * groups * 8 + lane],
                                  ref[lane].step())
                            << tier->name << " lanes=" << lanes
                            << " cycle=" << c << " lane=" << lane;
            }
            // In-place state agrees too: head and per-lane sums.
            for (int lane = 0; lane < lanes; ++lane)
                EXPECT_EQ(sums[lane], ref[lane].sum())
                    << tier->name << " lane=" << lane;
            EXPECT_EQ(st.head, ref[0].head()) << tier->name;
        }
    }
}

TEST(KernelWallace, PassMatchesSequentialQuadsAcrossTiers)
{
    // The wallacePass kernel against the sequential quadruple walk:
    // identical pool mutation and output block for every tier,
    // including pool sizes with a non-multiple-of-16 quad count (the
    // AVX2 4-wide main loop plus scalar tail) and sizes below the
    // 4-wide threshold entirely.
    for (const std::size_t pool_size : {8u, 20u, 28u, 64u, 1024u}) {
        Rng rng(99 + pool_size);
        std::vector<double> init(pool_size);
        for (auto &x : init)
            x = rng.gaussian();
        // A handful of (offset, stride) draws, all coprime strides.
        for (int draw = 0; draw < 4; ++draw) {
            const std::size_t offset = rng.uniformInt(pool_size);
            std::size_t stride;
            do {
                stride = 1 + rng.uniformInt(pool_size - 1);
            } while (std::gcd(stride, pool_size) != 1);

            // Sequential reference.
            std::vector<double> ref_pool = init;
            std::vector<double> ref_out(4 * (pool_size / 4));
            {
                std::size_t pos = offset;
                auto advance = [&] {
                    const std::size_t at = pos;
                    pos += stride;
                    if (pos >= pool_size)
                        pos -= pool_size;
                    return at;
                };
                for (std::size_t q = 0; q < pool_size / 4; ++q) {
                    const std::size_t i0 = advance(), i1 = advance();
                    const std::size_t i2 = advance(), i3 = advance();
                    const auto y = grng::hadamardTransform4(
                        {ref_pool[i0], ref_pool[i1], ref_pool[i2],
                         ref_pool[i3]});
                    ref_pool[i0] = y[0];
                    ref_pool[i1] = y[1];
                    ref_pool[i2] = y[2];
                    ref_pool[i3] = y[3];
                    for (int j = 0; j < 4; ++j)
                        ref_out[4 * q + j] = y[j];
                }
            }

            for (const auto *tier : k::availableKernels()) {
                std::vector<double> pool = init;
                std::vector<double> out(ref_out.size(), 0.0);
                tier->wallacePass(pool.data(), pool_size, offset,
                                  stride, out.data());
                for (std::size_t i = 0; i < pool_size; ++i)
                    ASSERT_EQ(pool[i], ref_pool[i])
                        << tier->name << " pool=" << pool_size
                        << " slot=" << i;
                for (std::size_t i = 0; i < out.size(); ++i)
                    ASSERT_EQ(out[i], ref_out[i])
                        << tier->name << " pool=" << pool_size
                        << " out=" << i;
                // The nullable-out form mutates the pool identically.
                std::vector<double> pool2 = init;
                tier->wallacePass(pool2.data(), pool_size, offset,
                                  stride, nullptr);
                ASSERT_EQ(pool2, ref_pool) << tier->name;
            }
        }
    }
}

TEST(BatchedRunnerSharded, PhiloxShardedDrawMatchesSerial)
{
    // With a splittable generator the round's weight draw itself
    // shards across the work pool via the counter-based random-access
    // eps path; outputs must be bit-identical to the serial draw for
    // any shard count, and the stream cursor must stay aligned across
    // consecutive rounds (round 2 of the sharded run matches round 2
    // of the serial run).
    const auto config = smallConfig();
    Rng rng(8);
    bnn::BayesianMlp net({24, 16, 4}, rng, /*rho_init=*/-2.0f);
    const auto program = compile(net, config);
    const std::size_t count = 9;
    const std::size_t dim = program.inputDim();
    const auto xs = randomBatch(count, dim, 31);

    auto run_rounds = [&](ThreadPool *pool) {
        auto gen = grng::makeGenerator("philox", 4242);
        BatchedRunner runner(program, config, gen.get());
        runner.setWorkPool(pool);
        std::vector<std::int64_t> out(
            2 * count * runner.program().outputDim());
        runner.runRoundBatch(xs.data(), count, dim, out.data());
        runner.runRoundBatch(xs.data(), count, dim,
                             out.data() +
                                 count * runner.program().outputDim());
        return out;
    };

    const auto serial = run_rounds(nullptr);
    for (const std::size_t workers : {1u, 4u}) {
        ThreadPool pool(workers);
        const auto sharded = run_rounds(&pool);
        EXPECT_EQ(sharded, serial) << "workers=" << workers;
    }
}

namespace
{

std::vector<float>
randomFloats(std::size_t count, std::uint64_t seed, float scale = 1.0f)
{
    Rng rng(seed);
    std::vector<float> v(count);
    for (auto &x : v)
        x = static_cast<float>((rng.uniform() * 2.0 - 1.0) * scale);
    return v;
}

/** Bitwise equality (0.0 vs -0.0 and NaN payloads included). */
bool
bitsEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

} // namespace

TEST(KernelGemmF32, BatchForwardTiersBitExact)
{
    // Shapes chosen to hit every code path: k below one SIMD step,
    // exact multiples, prime tails, and n not a multiple of the AVX2
    // 4-row blocking.
    const struct
    {
        std::size_t m, n, k;
    } shapes[] = {{1, 1, 1},   {3, 5, 7},   {4, 4, 8},  {5, 7, 131},
                  {2, 9, 16},  {7, 3, 33},  {1, 13, 257}};
    for (const auto &sh : shapes) {
        for (const bool with_bias : {false, true}) {
            const auto a = randomFloats(sh.m * sh.k, 11 + sh.k, 2.0f);
            const auto b = randomFloats(sh.n * sh.k, 23 + sh.n, 2.0f);
            const auto bias = randomFloats(sh.n, 37 + sh.m, 0.5f);
            k::GemmF32Args args;
            args.a = a.data();
            args.lda = sh.k;
            args.b = b.data();
            args.ldb = sh.k;
            args.ldc = sh.n;
            args.m = sh.m;
            args.n = sh.n;
            args.k = sh.k;
            args.bias = with_bias ? bias.data() : nullptr;

            std::vector<float> ref(sh.m * sh.n, 0.0f);
            args.c = ref.data();
            k::scalarKernels().gemmBatchF32(args);
            for (const k::KernelOps *ops : k::availableKernels()) {
                std::vector<float> out(sh.m * sh.n, -7.0f);
                args.c = out.data();
                ops->gemmBatchF32(args);
                EXPECT_TRUE(bitsEqual(out, ref))
                    << ops->name << " m=" << sh.m << " n=" << sh.n
                    << " k=" << sh.k << " bias=" << with_bias;
            }
        }
    }
}

TEST(KernelGemmF32, AtBAccumulateTiersBitExact)
{
    const struct
    {
        std::size_t m, n, k;
    } shapes[] = {{1, 1, 1}, {4, 5, 7}, {9, 3, 64}, {5, 8, 131},
                  {2, 17, 9}};
    for (const auto &sh : shapes) {
        for (const bool with_sums : {false, true}) {
            const auto a = randomFloats(sh.m * sh.n, 101 + sh.n, 1.5f);
            const auto b = randomFloats(sh.m * sh.k, 211 + sh.k, 1.5f);
            // Accumulating entry point: seed c / colSums non-zero.
            const auto c0 = randomFloats(sh.n * sh.k, 307, 0.25f);
            const auto s0 = randomFloats(sh.n, 401, 0.25f);
            k::GemmF32Args args;
            args.a = a.data();
            args.lda = sh.n;
            args.b = b.data();
            args.ldb = sh.k;
            args.ldc = sh.k;
            args.m = sh.m;
            args.n = sh.n;
            args.k = sh.k;

            std::vector<float> ref = c0, refSums = s0;
            args.c = ref.data();
            args.colSums = with_sums ? refSums.data() : nullptr;
            k::scalarKernels().gemmAtBF32(args);
            for (const k::KernelOps *ops : k::availableKernels()) {
                std::vector<float> out = c0, sums = s0;
                args.c = out.data();
                args.colSums = with_sums ? sums.data() : nullptr;
                ops->gemmAtBF32(args);
                EXPECT_TRUE(bitsEqual(out, ref))
                    << ops->name << " m=" << sh.m << " n=" << sh.n
                    << " k=" << sh.k;
                if (with_sums)
                    EXPECT_TRUE(bitsEqual(sums, refSums)) << ops->name;
            }
        }
    }
}

TEST(KernelGemmF32, ABOverwriteTiersBitExact)
{
    const struct
    {
        std::size_t m, n, k;
    } shapes[] = {{1, 1, 1}, {3, 7, 5}, {6, 9, 64}, {5, 4, 131},
                  {2, 31, 3}};
    for (const auto &sh : shapes) {
        const auto a = randomFloats(sh.m * sh.n, 501 + sh.n, 1.5f);
        const auto b = randomFloats(sh.n * sh.k, 601 + sh.k, 1.5f);
        k::GemmF32Args args;
        args.a = a.data();
        args.lda = sh.n;
        args.b = b.data();
        args.ldb = sh.k;
        args.ldc = sh.k;
        args.m = sh.m;
        args.n = sh.n;
        args.k = sh.k;

        std::vector<float> ref(sh.m * sh.k, 99.0f); // must be overwritten
        args.c = ref.data();
        k::scalarKernels().gemmABF32(args);
        for (const k::KernelOps *ops : k::availableKernels()) {
            std::vector<float> out(sh.m * sh.k, -99.0f);
            args.c = out.data();
            ops->gemmABF32(args);
            EXPECT_TRUE(bitsEqual(out, ref))
                << ops->name << " m=" << sh.m << " n=" << sh.n
                << " k=" << sh.k;
        }
    }
}

TEST(KernelAdamF32, StepTiersBitExact)
{
    for (const std::size_t n : {1u, 7u, 8u, 64u, 131u}) {
        const auto p0 = randomFloats(n, 701 + n, 1.0f);
        const auto g = randomFloats(n, 801 + n, 0.1f);
        const auto m0 = randomFloats(n, 901 + n, 0.01f);
        auto v0 = randomFloats(n, 1001 + n, 0.01f);
        for (auto &v : v0)
            v = std::fabs(v); // second moments are non-negative
        k::AdamStepArgs args;
        args.lr = 3e-3f;
        args.bc1 = 1.0f - 0.9f * 0.9f;
        args.bc2 = 1.0f - 0.999f * 0.999f;
        args.gradScale = 1.0f / 3.0f;

        std::vector<float> pr = p0, mr = m0, vr = v0;
        k::scalarKernels().adamStepF32(pr.data(), g.data(), mr.data(),
                                       vr.data(), n, args);
        for (const k::KernelOps *ops : k::availableKernels()) {
            std::vector<float> p = p0, m = m0, v = v0;
            ops->adamStepF32(p.data(), g.data(), m.data(), v.data(), n,
                             args);
            EXPECT_TRUE(bitsEqual(p, pr)) << ops->name << " n=" << n;
            EXPECT_TRUE(bitsEqual(m, mr)) << ops->name << " n=" << n;
            EXPECT_TRUE(bitsEqual(v, vr)) << ops->name << " n=" << n;
        }
    }
}
