/**
 * @file
 * Tests for the conv-on-accelerator lowering: with sigma = 0 the
 * simulator-executed conv layer must be bit-exact against a host
 * fixed-point reference built from the same DatapathKernel; the ReLU
 * clamp identity must hold on real data; the cycle accounting must
 * match the analytic model; and the sampled path must be an unbiased
 * spread around the deterministic output.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/config.hh"
#include "accel/conv_lowering.hh"
#include "bnn/variational_conv.hh"
#include "common/rng.hh"
#include "grng/registry.hh"
#include "nn/conv.hh"

using namespace vibnn;
using namespace vibnn::accel;

namespace
{

nn::ConvSpec
smallSpec()
{
    nn::ConvSpec s;
    s.inChannels = 1;
    s.inHeight = 6;
    s.inWidth = 6;
    s.outChannels = 2;
    s.kernel = 3;
    s.stride = 1;
    s.pad = 1;
    return s;
}

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.bits = 8;
    config.mcSamples = 1;
    return config;
}

/** Freeze the posterior at its mean: quantized sigma becomes 0. */
void
freezeSigma(bnn::VariationalConv2d &layer)
{
    layer.rhoWeight().fill(-20.0f);
    std::fill(layer.rhoBias().begin(), layer.rhoBias().end(), -20.0f);
}

/**
 * Host fixed-point reference: im2col, quantize patches on the
 * activation grid, accumulate mu_raw * x_raw, finish via the
 * DatapathKernel's hidden-layer path (bias + ReLU + requantize).
 */
std::vector<std::int64_t>
referenceFixedConv(const bnn::VariationalConv2d &layer,
                   const AcceleratorConfig &config, const float *x,
                   bool relu)
{
    const auto &spec = layer.spec();
    const auto lowered = quantizeConvLayer(layer, config);
    const DatapathKernel kernel(lowered);
    const auto &ql = lowered.layers.front();

    nn::Matrix patches;
    nn::im2col(spec, x, patches);
    const std::size_t positions = spec.positions();
    const std::size_t patch = spec.patchSize();

    std::vector<std::int64_t> out(spec.outputSize());
    for (std::size_t p = 0; p < positions; ++p) {
        std::vector<std::int64_t> xq(patch);
        for (std::size_t k = 0; k < patch; ++k) {
            xq[k] =
                lowered.activationFormat.fromReal(patches.at(p, k));
        }
        for (std::size_t oc = 0; oc < spec.outChannels; ++oc) {
            std::int64_t acc = 0;
            for (std::size_t k = 0; k < patch; ++k)
                acc += static_cast<std::int64_t>(
                           ql.muWeight[oc * patch + k]) *
                    xq[k];
            const std::int64_t bias = ql.muBias[oc];
            out[oc * positions + p] =
                relu ? kernel.finishNeuron(acc, bias)
                     : kernel.finishOutputNeuron(acc, bias);
        }
    }
    return out;
}

std::vector<float>
randomImage(const nn::ConvSpec &spec, Rng &rng)
{
    std::vector<float> x(spec.inputSize());
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(0, 1));
    return x;
}

} // namespace

TEST(ConvLowering, SigmaZeroIsBitExactAgainstHostReference)
{
    const auto spec = smallSpec();
    const auto config = smallConfig();
    Rng rng(3);
    bnn::VariationalConv2d layer(spec, rng);
    freezeSigma(layer);
    // Inject a negative bias so some accumulators go negative and the
    // ReLU path is genuinely exercised.
    layer.muBias()[0] = -0.5f;

    auto gen = grng::makeGenerator("rlf", 7);
    ConvLayerRunner runner(layer, config, gen.get(), /*relu=*/true);

    Rng data(11);
    for (int trial = 0; trial < 4; ++trial) {
        const auto x = randomImage(spec, data);
        const auto hw = runner.runPass(x.data());
        const auto ref = referenceFixedConv(layer, config, x.data(),
                                            /*relu=*/true);
        ASSERT_EQ(hw.size(), ref.size());
        for (std::size_t i = 0; i < hw.size(); ++i)
            EXPECT_EQ(hw[i], ref[i]) << "trial " << trial << " at "
                                     << i;
    }
}

TEST(ConvLowering, NoReluPathMatchesOutputFinish)
{
    const auto spec = smallSpec();
    const auto config = smallConfig();
    Rng rng(13);
    bnn::VariationalConv2d layer(spec, rng);
    freezeSigma(layer);
    layer.muBias()[1] = -0.8f; // force negative outputs through

    auto gen = grng::makeGenerator("rlf", 17);
    ConvLayerRunner runner(layer, config, gen.get(), /*relu=*/false);

    Rng data(19);
    const auto x = randomImage(spec, data);
    const auto hw = runner.runPass(x.data());
    const auto ref =
        referenceFixedConv(layer, config, x.data(), /*relu=*/false);
    bool saw_negative = false;
    for (std::size_t i = 0; i < hw.size(); ++i) {
        EXPECT_EQ(hw[i], ref[i]);
        saw_negative = saw_negative || hw[i] < 0;
    }
    EXPECT_TRUE(saw_negative) << "test did not exercise negatives";
}

TEST(ConvLowering, ReluClampEqualsFinishNeuron)
{
    // The identity the runner relies on:
    // max(0, finishOutputNeuron(acc, b)) == finishNeuron(acc, b).
    const auto config = smallConfig();
    Rng rng(23);
    bnn::VariationalConv2d layer(smallSpec(), rng);
    const auto lowered = quantizeConvLayer(layer, config);
    const DatapathKernel kernel(lowered);
    Rng probe(29);
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t acc = probe.uniformInt(-30000, 30000);
        const std::int64_t bias = probe.uniformInt(-128, 127);
        std::int64_t clamped = kernel.finishOutputNeuron(acc, bias);
        if (clamped < 0)
            clamped = 0;
        EXPECT_EQ(clamped, kernel.finishNeuron(acc, bias))
            << "acc=" << acc << " bias=" << bias;
    }
}

TEST(ConvLowering, CycleAccountingMatchesAnalyticModel)
{
    const auto spec = smallSpec();
    const auto config = smallConfig();
    Rng rng(31);
    bnn::VariationalConv2d layer(spec, rng);

    auto gen = grng::makeGenerator("rlf", 37);
    ConvLayerRunner runner(layer, config, gen.get());

    Rng data(41);
    const auto x = randomImage(spec, data);
    runner.runPass(x.data());
    EXPECT_EQ(runner.stats().totalCycles, runner.cyclesPerConvPass());
    runner.runPass(x.data());
    EXPECT_EQ(runner.stats().totalCycles,
              2 * runner.cyclesPerConvPass());
}

TEST(ConvLowering, SampledPassesSpreadAroundMean)
{
    const auto spec = smallSpec();
    const auto config = smallConfig();
    Rng rng(43);
    bnn::VariationalConv2d layer(spec, rng, /*rho_init=*/-2.0f);

    // Deterministic reference: the same layer with sigma frozen out.
    Rng rng2(43); // same init stream => same mu
    bnn::VariationalConv2d frozen(spec, rng2, -2.0f);
    freezeSigma(frozen);

    auto gen = grng::makeGenerator("rlf", 47);
    ConvLayerRunner sampled(layer, config, gen.get());
    auto gen2 = grng::makeGenerator("rlf", 47);
    ConvLayerRunner mean_runner(frozen, config, gen2.get());

    Rng data(53);
    const auto x = randomImage(spec, data);
    const auto mean_out = mean_runner.runPassReal(x.data());

    const int reps = 60;
    std::vector<double> sum(mean_out.size(), 0.0);
    std::vector<double> sum2(mean_out.size(), 0.0);
    for (int r = 0; r < reps; ++r) {
        const auto out = sampled.runPassReal(x.data());
        for (std::size_t i = 0; i < out.size(); ++i) {
            sum[i] += out[i];
            sum2[i] += static_cast<double>(out[i]) * out[i];
        }
    }

    double total_var = 0.0;
    std::size_t checked = 0;
    for (std::size_t i = 0; i < mean_out.size(); ++i) {
        const double m = sum[i] / reps;
        total_var += sum2[i] / reps - m * m;
        // ReLU clips the lower tail, so only clearly-positive outputs
        // have a symmetric spread worth asserting on.
        if (mean_out[i] > 0.5f) {
            EXPECT_NEAR(m, mean_out[i], 0.35) << "at " << i;
            ++checked;
        }
    }
    EXPECT_GT(checked, 0u) << "no strongly-positive outputs to check";
    EXPECT_GT(total_var, 0.0); // the GRNG is actually sampling
}

TEST(ConvLowering, OutputLayoutIsChw)
{
    // A 1x1 kernel with identity-ish filters makes the CHW layout
    // directly observable: channel c of the output equals the input
    // scaled by filter weight c.
    nn::ConvSpec spec;
    spec.inChannels = 1;
    spec.inHeight = 3;
    spec.inWidth = 3;
    spec.outChannels = 2;
    spec.kernel = 1;

    AcceleratorConfig config = smallConfig();
    config.peSets = 1; // patchSize = 1 -> only one chunk to drain
    Rng rng(59);
    bnn::VariationalConv2d layer(spec, rng);
    freezeSigma(layer);
    layer.muWeight().at(0, 0) = 1.0f;  // channel 0: identity
    layer.muWeight().at(1, 0) = 0.5f;  // channel 1: halved
    layer.muBias()[0] = 0.0f;
    layer.muBias()[1] = 0.0f;

    auto gen = grng::makeGenerator("rlf", 61);
    ConvLayerRunner runner(layer, config, gen.get());

    std::vector<float> x = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f,
                            0.6f, 0.7f, 0.8f, 0.9f};
    const auto out = runner.runPassReal(x.data());
    ASSERT_EQ(out.size(), 18u);
    for (std::size_t p = 0; p < 9; ++p) {
        EXPECT_NEAR(out[p], x[p], 0.05) << "ch0 at " << p;
        EXPECT_NEAR(out[9 + p], 0.5f * x[p], 0.05) << "ch1 at " << p;
    }
}
