/**
 * @file
 * Distribution-level property sweeps for the GRNG designs:
 *  - the RLF count stream matches the binomial B(n, 1/2) it is built
 *    on (chi-square over the count histogram);
 *  - the CLT-LFSR generator does the same across register widths;
 *  - the hardware Wallace generator stays well-formed across pool
 *    entry formats and unit counts;
 *  - software Wallace pool invariants hold across pool sizes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "grng/bnn_wallace.hh"
#include "grng/clt_grng.hh"
#include "grng/lfsr.hh"
#include "grng/registry.hh"
#include "grng/rlf_grng.hh"
#include "grng/wallace.hh"
#include "stats/ks_test.hh"
#include "stats/moments.hh"
#include "stats/special.hh"

using namespace vibnn;
using namespace vibnn::grng;

namespace
{

/**
 * Chi-square of observed integer counts against Binomial(n, 1/2),
 * pooling tail bins so every expected count is >= 5. Returns the
 * p-value.
 */
double
binomialChiSquare(const std::map<int, std::size_t> &histogram,
                  int n, std::size_t total)
{
    // log C(n, k) via lgamma.
    auto log_choose = [n](int k) {
        return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
            std::lgamma(n - k + 1.0);
    };
    const double log_half_n = n * std::log(0.5);

    // Walk k = 0..n, pooling bins until expected >= 5.
    double chi2 = 0.0;
    int dof = -1; // estimated-free, bins - 1
    double pooled_expected = 0.0;
    double pooled_observed = 0.0;
    for (int k = 0; k <= n; ++k) {
        const double p = std::exp(log_choose(k) + log_half_n);
        pooled_expected += p * static_cast<double>(total);
        const auto it = histogram.find(k);
        pooled_observed +=
            it == histogram.end() ? 0.0
                                  : static_cast<double>(it->second);
        if (pooled_expected >= 5.0 || k == n) {
            if (pooled_expected > 0.0) {
                const double d = pooled_observed - pooled_expected;
                chi2 += d * d / pooled_expected;
                ++dof;
            }
            pooled_expected = 0.0;
            pooled_observed = 0.0;
        }
    }
    if (dof < 1)
        return 1.0;
    return stats::chiSquareSf(chi2, dof);
}

} // anonymous namespace

TEST(RlfDistribution, CountsMatchBinomial255)
{
    // The popcount walk has a ~50-cycle correlation time; chi-square
    // requires (approximately) independent draws, so sample each lane
    // only every 128 cycles.
    RlfGrngConfig config;
    config.lanes = 8;
    config.seed = 7;
    RlfGrng gen(config);
    std::map<int, std::size_t> histogram;
    std::size_t total = 0;
    std::vector<int> cycle;
    for (int c = 0; c < 160000; ++c) {
        gen.nextCycleCounts(cycle);
        if (c % 128 != 0)
            continue;
        for (int count : cycle) {
            ++histogram[count];
            ++total;
        }
    }
    EXPECT_GT(binomialChiSquare(histogram, 255, total), 1e-4);
}

class CltWidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CltWidthSweep, CountsMatchBinomial)
{
    const int n = GetParam();
    CltLfsrGrng gen(n, 3, /*steps=*/n); // decorrelated samples
    std::map<int, std::size_t> histogram;
    const std::size_t total = 60000;
    for (std::size_t i = 0; i < total; ++i)
        ++histogram[gen.nextCount()];
    EXPECT_GT(binomialChiSquare(histogram, n, total), 1e-4)
        << "width " << n;
}

INSTANTIATE_TEST_SUITE_P(Widths, CltWidthSweep,
                         ::testing::Values(24, 32, 64, 128, 255));

class WallacePoolSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(WallacePoolSweep, EnergyConservedAndMomentsSane)
{
    WallaceConfig config;
    config.poolSize = GetParam();
    config.seed = 11;
    config.normalizeInitialPool = true;
    WallaceGrng gen(config);
    const double initial = gen.poolEnergy();
    stats::RunningMoments m;
    for (int i = 0; i < 50000; ++i)
        m.add(gen.next());
    EXPECT_NEAR(gen.poolEnergy(), initial, 1e-6 * initial);
    EXPECT_NEAR(m.mean(), 0.0, 0.05);
    EXPECT_NEAR(m.stddev(), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Pools, WallacePoolSweep,
                         ::testing::Values(16, 64, 256, 1024, 4096));

struct HwWallaceCase
{
    int units;
    int pool;
    int bits;
    int frac;
};

class HwWallaceSweep : public ::testing::TestWithParam<HwWallaceCase>
{
};

TEST_P(HwWallaceSweep, MomentsSaneAcrossFormats)
{
    const auto &p = GetParam();
    BnnWallaceConfig config;
    config.units = p.units;
    config.poolSize = p.pool;
    config.format = fixed::FixedPointFormat(p.bits, p.frac);
    config.seed = 13;
    BnnWallaceGrng gen(config);
    stats::RunningMoments m;
    for (int i = 0; i < 60000; ++i)
        m.add(gen.next());
    // Coarser formats quantize harder; tolerance scales with LSB.
    const double tol = 0.03 + config.format.resolution();
    EXPECT_NEAR(m.mean(), 0.0, tol) << gen.name();
    EXPECT_NEAR(m.stddev(), 1.0, 2.0 * tol) << gen.name();
}

TEST_P(HwWallaceSweep, EnergyDriftWithinLsbScale)
{
    const auto &p = GetParam();
    BnnWallaceConfig config;
    config.units = p.units;
    config.poolSize = p.pool;
    config.format = fixed::FixedPointFormat(p.bits, p.frac);
    config.seed = 17;
    BnnWallaceGrng gen(config);
    const double initial = gen.poolEnergy();
    std::vector<double> sink;
    for (int c = 0; c < 2000; ++c)
        gen.nextCycle(sink);
    // Truncation error per transform is O(LSB); allow a generous
    // multiple, scaled by the number of transforms.
    const double tol =
        std::max(0.02, 40.0 * config.format.resolution()) * initial;
    EXPECT_NEAR(gen.poolEnergy(), initial, tol) << gen.name();
}

INSTANTIATE_TEST_SUITE_P(
    Formats, HwWallaceSweep,
    ::testing::Values(HwWallaceCase{8, 256, 16, 11},
                      HwWallaceCase{8, 256, 12, 8},
                      HwWallaceCase{4, 512, 16, 11},
                      HwWallaceCase{16, 128, 16, 11},
                      HwWallaceCase{8, 256, 10, 6}),
    [](const ::testing::TestParamInfo<HwWallaceCase> &info) {
        const auto &p = info.param;
        return "u" + std::to_string(p.units) + "p" +
            std::to_string(p.pool) + "q" + std::to_string(p.bits) +
            "_" + std::to_string(p.frac);
    });

TEST(RlfLaneIndependence, CrossLaneCorrelationSmall)
{
    RlfGrngConfig config;
    config.lanes = 8;
    config.outputMux = false;
    config.seed = 19;
    RlfGrng gen(config);
    std::vector<int> cycle;
    std::vector<double> lane0, lane3;
    for (int c = 0; c < 20000; ++c) {
        gen.nextCycleCounts(cycle);
        lane0.push_back(gen.normalize(cycle[0]));
        lane3.push_back(gen.normalize(cycle[3]));
    }
    // Pearson correlation between distinct lanes.
    double m0 = 0, m3 = 0;
    for (std::size_t i = 0; i < lane0.size(); ++i) {
        m0 += lane0[i];
        m3 += lane3[i];
    }
    m0 /= lane0.size();
    m3 /= lane3.size();
    double cov = 0, v0 = 0, v3 = 0;
    for (std::size_t i = 0; i < lane0.size(); ++i) {
        cov += (lane0[i] - m0) * (lane3[i] - m3);
        v0 += (lane0[i] - m0) * (lane0[i] - m0);
        v3 += (lane3[i] - m3) * (lane3[i] - m3);
    }
    const double corr = cov / std::sqrt(v0 * v3);
    // Slowly-mixing walks need a loose bound, but independent seeds
    // must keep lanes uncorrelated in the long run.
    EXPECT_LT(std::fabs(corr), 0.2);
}

TEST(SeedSensitivity, DifferentSeedsDifferentStreams)
{
    for (const char *id : {"rlf", "bnnwallace", "wallace-1024"}) {
        auto a = grng::makeGenerator(id, 1);
        auto b = grng::makeGenerator(id, 2);
        int equal = 0;
        for (int i = 0; i < 256; ++i)
            equal += a->next() == b->next();
        // Discrete generators (the RLF's 256-level count grid) collide
        // by chance ~4-10% of the time even when fully independent;
        // only near-identical streams indicate a seeding bug.
        EXPECT_LT(equal, 64) << id;
    }
}

/**
 * The counter-based Philox generator is a *continuous* Gaussian source
 * (Box-Muller over 53-bit uniforms), so unlike the binomial designs it
 * must meet true-normal bounds: tight moments, a passing KS test, and
 * the exact N(0,1) tail mass. These are the properties the splittable
 * sharded-draw path leans on when it replaces the RLF ring.
 */
TEST(PhiloxDistribution, MomentsTightForContinuousGaussian)
{
    auto gen = makeGenerator("philox", 90210);
    stats::RunningMoments m;
    std::vector<double> buf(1 << 16);
    for (int block = 0; block < 8; ++block) {
        gen->fill(buf.data(), buf.size());
        m.add(buf);
    }
    // 524288 samples: the binomial designs get 0.08/0.12 slack in the
    // registry-wide suite; a continuous source has no quantization or
    // pool-recycling error to excuse, so hold it an order tighter.
    EXPECT_NEAR(m.mean(), 0.0, 0.01);
    EXPECT_NEAR(m.stddev(), 1.0, 0.01);
    EXPECT_NEAR(m.skewness(), 0.0, 0.02);
    EXPECT_NEAR(m.excessKurtosis(), 0.0, 0.05);
}

TEST(PhiloxDistribution, PassesKsTestAcrossDisjointKeys)
{
    // Three unrelated keys: splitmix64 keying must not leave any seed
    // class with a distorted shape.
    for (std::uint64_t seed : {1ull, 0xDEADBEEFull, (1ull << 63) + 5}) {
        auto gen = makeGenerator("philox", seed);
        std::vector<double> xs(50000);
        gen->fill(xs.data(), xs.size());
        EXPECT_GT(stats::ksTestStandardNormal(xs).pValue, 1e-3)
            << "seed=" << seed;
    }
}

TEST(PhiloxDistribution, TailMassMatchesStandardNormal)
{
    // P(|Z| > 3) = 2*(1-Phi(3)) ~= 0.0026998. Binomial designs clip
    // here; the Box-Muller path must not. 10^6 samples puts the
    // 5-sigma band at ~+-0.0003.
    auto gen = makeGenerator("philox", 31337);
    std::vector<double> buf(1 << 16);
    std::size_t total = 0, beyond3 = 0, beyond4 = 0;
    for (int block = 0; block < 16; ++block) {
        gen->fill(buf.data(), buf.size());
        for (double x : buf) {
            const double a = std::fabs(x);
            beyond3 += a > 3.0;
            beyond4 += a > 4.0;
        }
        total += buf.size();
    }
    const double p3 = static_cast<double>(beyond3) / total;
    EXPECT_NEAR(p3, 0.0026998, 0.0004);
    // P(|Z| > 4) ~= 6.33e-5: rare but must exist — a generator whose
    // uniforms cannot reach the extremes would zero this bin.
    EXPECT_GT(beyond4, 0u);
    EXPECT_LT(static_cast<double>(beyond4) / total, 2.5e-4);
}
