/**
 * @file
 * Tests for the LFSR infrastructure: the Ward-Molteno tap table, the
 * Fibonacci LFSR (maximal period on small widths), the circulating
 * LFSR of the paper's Figure 3, and the parallel counter model.
 */

#include <gtest/gtest.h>

#include <set>

#include "grng/lfsr.hh"
#include "grng/parallel_counter.hh"

using namespace vibnn::grng;

TEST(TapTable, PaperTapsFor255)
{
    // Section 4.1.2: "The taps for the 255-bit linear feedback function
    // are 250, 252, and 253."
    const auto taps = maximalTaps(255);
    EXPECT_EQ(taps, (std::vector<int>{250, 252, 253}));
}

TEST(TapTable, PaperTapsFor8)
{
    // Figure 3(a): "The taps for the 8-bit linear feedback function are
    // 4, 5, and 6."
    const auto taps = maximalTaps(8);
    EXPECT_EQ(taps, (std::vector<int>{4, 5, 6}));
}

TEST(TapTable, KnownAndUnknownLengths)
{
    EXPECT_TRUE(hasMaximalTaps(128));
    EXPECT_TRUE(hasMaximalTaps(2048));
    EXPECT_FALSE(hasMaximalTaps(999));
}

/** Fibonacci LFSRs with maximal taps must have period 2^n - 1. */
class LfsrPeriod : public ::testing::TestWithParam<int>
{
};

TEST_P(LfsrPeriod, MaximalPeriod)
{
    const int n = GetParam();
    Lfsr lfsr(n, 0xDEADBEEF);
    const auto initial = lfsr.state();
    const std::uint64_t period = (1ULL << n) - 1;
    std::uint64_t steps = 0;
    do {
        lfsr.step();
        ++steps;
    } while (lfsr.state() != initial && steps <= period);
    EXPECT_EQ(steps, period);
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, LfsrPeriod,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 14, 15, 16));

TEST(Lfsr, NeverAllZero)
{
    Lfsr lfsr(8, 123);
    for (int i = 0; i < 300; ++i) {
        lfsr.step();
        EXPECT_GT(lfsr.popcount(), 0);
    }
}

TEST(Lfsr, NextBitsPacksOutput)
{
    Lfsr a(16, 77), b(16, 77);
    std::uint64_t word = a.nextBits(16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ((word >> i) & 1, static_cast<std::uint64_t>(b.step()));
}

TEST(Lfsr, BitsAreBalanced)
{
    Lfsr lfsr(32, 99);
    int ones = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ones += lfsr.step();
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02);
}

TEST(ExpandSeedBits, NonZeroAndDeterministic)
{
    const auto a = expandSeedBits(255, 42);
    const auto b = expandSeedBits(255, 42);
    EXPECT_EQ(a, b);
    int ones = 0;
    for (auto bit : a)
        ones += bit;
    EXPECT_GT(ones, 0);
    EXPECT_NEAR(ones, 127.5, 40.0); // roughly balanced
}

TEST(CirculatingLfsr, PopcountDeltaBoundedByTaps)
{
    auto seed = expandSeedBits(255, 7);
    CirculatingLfsr circ(255, maximalTaps(255), seed);
    int prev = circ.popcount();
    for (int i = 0; i < 2000; ++i) {
        circ.step();
        const int now = circ.popcount();
        // Section 4.1.2: with 3 taps the output summation changes by
        // at most 3 per step.
        EXPECT_LE(std::abs(now - prev), 3);
        prev = now;
    }
}

TEST(CirculatingLfsr, StateDoesNotDegenerate)
{
    auto seed = expandSeedBits(255, 11);
    CirculatingLfsr circ(255, maximalTaps(255), seed);
    for (int i = 0; i < 10000; ++i)
        circ.step();
    EXPECT_GT(circ.popcount(), 60);
    EXPECT_LT(circ.popcount(), 195);
}

TEST(CirculatingLfsr, SmallWidthVisitsManyStates)
{
    auto seed = expandSeedBits(8, 3);
    CirculatingLfsr circ(8, maximalTaps(8), seed);
    std::set<std::vector<int>> states;
    for (int i = 0; i < 600; ++i) {
        std::vector<int> state(8);
        for (int b = 0; b < 8; ++b)
            state[b] = circ.bitFromHead(b);
        states.insert(state);
        circ.step();
    }
    EXPECT_GT(states.size(), 60u);
}

TEST(ParallelCounter, CountsOnes)
{
    ParallelCounter pc(8);
    std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0, 0, 1, 1};
    EXPECT_EQ(pc.count(bits), 5);
}

TEST(ParallelCounter, PaperFullAdderFigure)
{
    // Section 4.1.1: "a 127-input PC requires 120 full adders".
    ParallelCounter pc(127);
    EXPECT_EQ(pc.fullAdders(), 120);
    EXPECT_EQ(pc.outputBits(), 7);
}

TEST(ParallelCounter, OutputBitsCoverRange)
{
    EXPECT_EQ(ParallelCounter(1).outputBits(), 1);
    EXPECT_EQ(ParallelCounter(3).outputBits(), 2);
    EXPECT_EQ(ParallelCounter(255).outputBits(), 8);
    EXPECT_EQ(ParallelCounter(256).outputBits(), 9);
}

TEST(ParallelCounter, DepthGrowsLogarithmically)
{
    EXPECT_LE(ParallelCounter(8).depth(), 4);
    EXPECT_LE(ParallelCounter(255).depth(), 10);
    EXPECT_GT(ParallelCounter(255).depth(),
              ParallelCounter(8).depth() - 1);
}
