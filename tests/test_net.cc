/**
 * @file
 * Wire-protocol tests: framing round-trips for every message type
 * (floats bit-exact through encode/decode), and the malformed-input
 * contract — truncated, oversized, trailing-garbage, and random-byte
 * payloads are rejected with false + error, never a crash, hang, or
 * fatal().
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "serve/net/protocol.hh"

using namespace vibnn;
using namespace vibnn::serve::net;

namespace
{

/** Split a full frame into (header, payload) after validating it. */
void
splitFrame(const std::vector<std::uint8_t> &frame, FrameType &type,
           std::vector<std::uint8_t> &payload)
{
    ASSERT_GE(frame.size(), kFrameHeaderBytes);
    std::uint32_t len = 0;
    std::string error;
    ASSERT_TRUE(decodeFrameHeader(frame.data(), type, len, error))
        << error;
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + len);
    payload.assign(frame.begin() + kFrameHeaderBytes, frame.end());
}

WireClassifyRequest
sampleRequest()
{
    WireClassifyRequest req;
    req.id = 0xdeadbeefcafe1234ull;
    req.mcSamples = 16;
    req.deadlineMicros = 250'000;
    req.retryAttempt = 2;
    req.count = 3;
    req.dim = 4;
    req.features = {0.0f, -1.5f, 3.25f, 1e-30f, 1.0f, 2.0f,
                    3.0f, 4.0f,  -0.0f, 0.125f, 7.0f, 1e30f};
    return req;
}

} // anonymous namespace

// ---------------------------------------------------------- round trips

TEST(Protocol, ClassifyRequestRoundTripsBitExact)
{
    const WireClassifyRequest req = sampleRequest();
    const auto frame = encodeClassifyRequest(req);

    FrameType type;
    std::vector<std::uint8_t> payload;
    splitFrame(frame, type, payload);
    EXPECT_EQ(type, FrameType::ClassifyRequest);

    WireClassifyRequest out;
    std::string error;
    ASSERT_TRUE(decodeClassifyRequest(payload.data(), payload.size(),
                                      out, error))
        << error;
    EXPECT_EQ(out.id, req.id);
    EXPECT_EQ(out.mcSamples, req.mcSamples);
    EXPECT_EQ(out.deadlineMicros, req.deadlineMicros);
    EXPECT_EQ(out.retryAttempt, req.retryAttempt);
    EXPECT_EQ(out.count, req.count);
    EXPECT_EQ(out.dim, req.dim);
    ASSERT_EQ(out.features.size(), req.features.size());
    // Bit-exact, not approximately-equal: the serving bit-exactness
    // pin depends on floats travelling verbatim.
    EXPECT_EQ(std::memcmp(out.features.data(), req.features.data(),
                          req.features.size() * sizeof(float)),
              0);
}

TEST(Protocol, ClassifyResponseRoundTripsBitExact)
{
    WireClassifyResponse resp;
    resp.id = 99;
    resp.mcSamples = 32;
    resp.outDim = 3;
    resp.meanRounds = 17.5;
    resp.serverMicros = 1234.25;
    resp.flags = kResponseFlagDegraded;
    for (int i = 0; i < 2; ++i) {
        WirePrediction p;
        p.predicted = static_cast<std::uint32_t>(i);
        p.achievedSamples = 20 + i;
        p.exitReason = static_cast<std::uint8_t>(i);
        p.confidence = 0.75f + 0.1f * static_cast<float>(i);
        p.entropy = 0.5 * i;
        p.mutualInformation = 0.25 * i;
        p.probs = {0.2f, 0.3f, 0.5f};
        resp.predictions.push_back(p);
    }
    const auto frame = encodeClassifyResponse(resp);

    FrameType type;
    std::vector<std::uint8_t> payload;
    splitFrame(frame, type, payload);
    EXPECT_EQ(type, FrameType::ClassifyResponse);

    WireClassifyResponse out;
    std::string error;
    ASSERT_TRUE(decodeClassifyResponse(payload.data(), payload.size(),
                                       out, error))
        << error;
    EXPECT_EQ(out.id, resp.id);
    EXPECT_EQ(out.mcSamples, resp.mcSamples);
    EXPECT_EQ(out.outDim, resp.outDim);
    EXPECT_EQ(out.meanRounds, resp.meanRounds);
    EXPECT_EQ(out.serverMicros, resp.serverMicros);
    EXPECT_EQ(out.flags, resp.flags);
    EXPECT_TRUE(out.degraded());
    ASSERT_EQ(out.predictions.size(), resp.predictions.size());
    for (std::size_t i = 0; i < out.predictions.size(); ++i) {
        const auto &a = out.predictions[i];
        const auto &b = resp.predictions[i];
        EXPECT_EQ(a.predicted, b.predicted);
        EXPECT_EQ(a.achievedSamples, b.achievedSamples);
        EXPECT_EQ(a.exitReason, b.exitReason);
        EXPECT_EQ(std::memcmp(&a.confidence, &b.confidence,
                              sizeof(float)),
                  0);
        EXPECT_EQ(a.entropy, b.entropy);
        EXPECT_EQ(a.mutualInformation, b.mutualInformation);
        ASSERT_EQ(a.probs.size(), b.probs.size());
        EXPECT_EQ(std::memcmp(a.probs.data(), b.probs.data(),
                              a.probs.size() * sizeof(float)),
                  0);
    }
}

TEST(Protocol, ErrorFrameRoundTrips)
{
    WireError err;
    err.id = 7;
    err.code = ErrorCode::Overloaded;
    err.message = "shard queue full";
    const auto frame = encodeError(err);

    FrameType type;
    std::vector<std::uint8_t> payload;
    splitFrame(frame, type, payload);
    EXPECT_EQ(type, FrameType::Error);

    WireError out;
    std::string error;
    ASSERT_TRUE(decodeError(payload.data(), payload.size(), out,
                            error))
        << error;
    EXPECT_EQ(out.id, err.id);
    EXPECT_EQ(out.code, err.code);
    EXPECT_EQ(out.message, err.message);
}

TEST(Protocol, MetricsResponseRoundTrips)
{
    const std::string json = "{\"requests\": 5, \"p99_us\": 123.4}";
    const auto frame = encodeMetricsResponse(json);

    FrameType type;
    std::vector<std::uint8_t> payload;
    splitFrame(frame, type, payload);
    EXPECT_EQ(type, FrameType::MetricsResponse);

    std::string out, error;
    ASSERT_TRUE(decodeMetricsResponse(payload.data(), payload.size(),
                                      out, error))
        << error;
    EXPECT_EQ(out, json);
}

TEST(Protocol, EmptyPayloadFramesCarryHeaderOnly)
{
    const auto frame = encodeFrame(FrameType::Ping);
    EXPECT_EQ(frame.size(), kFrameHeaderBytes);
    FrameType type;
    std::uint32_t len = 0;
    std::string error;
    ASSERT_TRUE(decodeFrameHeader(frame.data(), type, len, error));
    EXPECT_EQ(type, FrameType::Ping);
    EXPECT_EQ(len, 0u);
}

// ------------------------------------------------------- header defense

TEST(Protocol, HeaderRejectsBadMagic)
{
    auto frame = encodeFrame(FrameType::Ping);
    frame[0] ^= 0xff;
    FrameType type;
    std::uint32_t len = 0;
    std::string error;
    EXPECT_FALSE(decodeFrameHeader(frame.data(), type, len, error));
    EXPECT_FALSE(error.empty());
}

TEST(Protocol, HeaderRejectsUnknownVersion)
{
    auto frame = encodeFrame(FrameType::Ping);
    frame[4] = kVersion + 1;
    FrameType type;
    std::uint32_t len = 0;
    std::string error;
    EXPECT_FALSE(decodeFrameHeader(frame.data(), type, len, error));
}

TEST(Protocol, HeaderRejectsUnknownFrameType)
{
    auto frame = encodeFrame(FrameType::Ping);
    frame[5] = 0;
    FrameType type;
    std::uint32_t len = 0;
    std::string error;
    EXPECT_FALSE(decodeFrameHeader(frame.data(), type, len, error));
    frame[5] = 200;
    EXPECT_FALSE(decodeFrameHeader(frame.data(), type, len, error));
}

TEST(Protocol, HeaderRejectsHostileLengthPrefix)
{
    // A length just above the cap must be refused before any
    // allocation happens.
    auto frame = encodeFrame(FrameType::Ping);
    const std::uint32_t hostile = kMaxPayloadBytes + 1;
    std::memcpy(frame.data() + 8, &hostile, sizeof(hostile));
    FrameType type;
    std::uint32_t len = 0;
    std::string error;
    EXPECT_FALSE(decodeFrameHeader(frame.data(), type, len, error));
}

// ------------------------------------------------------ payload defense

TEST(Protocol, TruncatedClassifyRequestIsRejectedAtEveryLength)
{
    const auto frame = encodeClassifyRequest(sampleRequest());
    const std::uint8_t *payload = frame.data() + kFrameHeaderBytes;
    const std::size_t full = frame.size() - kFrameHeaderBytes;
    for (std::size_t len = 0; len < full; ++len) {
        WireClassifyRequest out;
        std::string error;
        EXPECT_FALSE(
            decodeClassifyRequest(payload, len, out, error))
            << "accepted truncation at " << len;
        EXPECT_FALSE(error.empty());
    }
}

TEST(Protocol, TrailingBytesAreRejected)
{
    auto frame = encodeClassifyRequest(sampleRequest());
    frame.push_back(0x00); // one byte past the encoded payload
    WireClassifyRequest out;
    std::string error;
    EXPECT_FALSE(decodeClassifyRequest(
        frame.data() + kFrameHeaderBytes,
        frame.size() - kFrameHeaderBytes, out, error));
}

TEST(Protocol, ClassifyRequestRejectsAbsurdGeometry)
{
    WireClassifyRequest req = sampleRequest();
    std::string error;

    // Zero images.
    req.count = 0;
    req.features.clear();
    auto frame = encodeClassifyRequest(req);
    WireClassifyRequest out;
    EXPECT_FALSE(decodeClassifyRequest(
        frame.data() + kFrameHeaderBytes,
        frame.size() - kFrameHeaderBytes, out, error));

    // count over the per-frame cap: forge the header fields of a
    // valid frame (the encoder itself refuses to build one). Request
    // payload layout: id(8) mcSamples(4) deadline(8) retryAttempt(2)
    // count(4) dim(4).
    frame = encodeClassifyRequest(sampleRequest());
    const std::uint32_t big_count = kMaxImagesPerFrame + 1;
    std::memcpy(frame.data() + kFrameHeaderBytes + 22, &big_count, 4);
    EXPECT_FALSE(decodeClassifyRequest(
        frame.data() + kFrameHeaderBytes,
        frame.size() - kFrameHeaderBytes, out, error));

    // dim over the cap.
    frame = encodeClassifyRequest(sampleRequest());
    const std::uint32_t big_dim = kMaxImageDim + 1;
    std::memcpy(frame.data() + kFrameHeaderBytes + 26, &big_dim, 4);
    EXPECT_FALSE(decodeClassifyRequest(
        frame.data() + kFrameHeaderBytes,
        frame.size() - kFrameHeaderBytes, out, error));
}

TEST(Protocol, ClassifyRequestRejectsOverCapDeadline)
{
    // A deadline licenses the coalescer to HOLD the request, so an
    // unbounded client-chosen value would be a remotely triggerable
    // dispatcher park (and overflows wait_for's duration math near
    // INT64_MAX). The decoder must refuse anything over the cap.
    for (const std::int64_t hostile :
         {kMaxDeadlineMicros + 1,
          std::int64_t{1} << 62,
          std::int64_t{-1}}) {
        WireClassifyRequest req = sampleRequest();
        req.deadlineMicros = hostile;
        const auto frame = encodeClassifyRequest(req);
        WireClassifyRequest out;
        std::string error;
        EXPECT_FALSE(decodeClassifyRequest(
            frame.data() + kFrameHeaderBytes,
            frame.size() - kFrameHeaderBytes, out, error))
            << "accepted deadline " << hostile;
        EXPECT_FALSE(error.empty());
    }

    // The cap itself is legal.
    WireClassifyRequest req = sampleRequest();
    req.deadlineMicros = kMaxDeadlineMicros;
    const auto frame = encodeClassifyRequest(req);
    WireClassifyRequest out;
    std::string error;
    EXPECT_TRUE(decodeClassifyRequest(
        frame.data() + kFrameHeaderBytes,
        frame.size() - kFrameHeaderBytes, out, error))
        << error;
    EXPECT_EQ(out.deadlineMicros, kMaxDeadlineMicros);
}

TEST(Protocol, ShutdownAckHeaderRoundTrips)
{
    const auto frame = encodeFrame(FrameType::ShutdownAck);
    EXPECT_EQ(frame.size(), kFrameHeaderBytes);
    FrameType type;
    std::uint32_t len = 0;
    std::string error;
    ASSERT_TRUE(decodeFrameHeader(frame.data(), type, len, error))
        << error;
    EXPECT_EQ(type, FrameType::ShutdownAck);
    EXPECT_EQ(len, 0u);

    // One past ShutdownAck is still an unknown type.
    auto forged = encodeFrame(FrameType::ShutdownAck);
    forged[5] =
        static_cast<std::uint8_t>(FrameType::ShutdownAck) + 1;
    EXPECT_FALSE(decodeFrameHeader(forged.data(), type, len, error));
}

TEST(Protocol, RandomGarbagePayloadsNeverCrashDecoders)
{
    Rng rng(1234);
    for (int trial = 0; trial < 500; ++trial) {
        const std::size_t len =
            static_cast<std::size_t>(rng.uniform() * 256);
        std::vector<std::uint8_t> junk(len);
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.uniform() * 256);
        std::string error;
        WireClassifyRequest req;
        WireClassifyResponse resp;
        WireError err;
        std::string json;
        // Any of these may "succeed" only if the bytes happen to form
        // a valid message; what they must never do is crash, hang, or
        // read out of bounds (ASan/UBSan builds check the latter).
        decodeClassifyRequest(junk.data(), junk.size(), req, error);
        decodeClassifyResponse(junk.data(), junk.size(), resp, error);
        decodeError(junk.data(), junk.size(), err, error);
        decodeMetricsResponse(junk.data(), junk.size(), json, error);
    }
    SUCCEED();
}

TEST(Protocol, ExitReasonAboveRangeIsRejected)
{
    WireClassifyResponse resp;
    resp.id = 1;
    resp.mcSamples = 4;
    resp.outDim = 2;
    WirePrediction p;
    p.probs = {0.5f, 0.5f};
    resp.predictions.push_back(p);
    auto frame = encodeClassifyResponse(resp);
    // Locate and corrupt the exitReason byte: payload layout is
    // id(8) mcSamples(4) outDim(4) meanRounds(8) serverMicros(8)
    // flags(1) count(4) then per-prediction predicted(4) achieved(4)
    // reason(1).
    const std::size_t reason_off = kFrameHeaderBytes + 37 + 8;
    frame[reason_off] = 4; // one past McExitReason::Deadline
    WireClassifyResponse out;
    std::string error;
    EXPECT_FALSE(decodeClassifyResponse(
        frame.data() + kFrameHeaderBytes,
        frame.size() - kFrameHeaderBytes, out, error));
}

TEST(Protocol, UnknownResponseFlagBitsAreRejected)
{
    // This build speaks protocol version 1 exactly: a response with
    // flag bits beyond kResponseFlagDegraded is a version-skewed or
    // corrupted peer and must be refused, not silently masked.
    WireClassifyResponse resp;
    resp.id = 1;
    resp.mcSamples = 4;
    resp.outDim = 2;
    WirePrediction p;
    p.probs = {0.5f, 0.5f};
    resp.predictions.push_back(p);
    auto frame = encodeClassifyResponse(resp);
    const std::size_t flags_off = kFrameHeaderBytes + 32;
    frame[flags_off] = 0x02; // one past the degraded bit
    WireClassifyResponse out;
    std::string error;
    EXPECT_FALSE(decodeClassifyResponse(
        frame.data() + kFrameHeaderBytes,
        frame.size() - kFrameHeaderBytes, out, error));
    EXPECT_FALSE(error.empty());

    // The degraded bit itself is legal and surfaces via degraded().
    frame[flags_off] = kResponseFlagDegraded;
    EXPECT_TRUE(decodeClassifyResponse(
        frame.data() + kFrameHeaderBytes,
        frame.size() - kFrameHeaderBytes, out, error))
        << error;
    EXPECT_TRUE(out.degraded());
}
