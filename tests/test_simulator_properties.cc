/**
 * @file
 * Property-style sweeps over the accelerator simulator: cycle-count
 * closed form, traffic accounting identities, determinism, and
 * behaviour across bit widths, geometries and GRNG choices. These
 * complement test_accel.cc's pointwise checks with invariants that
 * must hold over the whole configuration space.
 */

#include <gtest/gtest.h>

#include "accel/functional.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_mlp.hh"
#include "grng/registry.hh"

using namespace vibnn;
using namespace vibnn::accel;

namespace
{

struct Sweep
{
    std::vector<std::size_t> layers;
    int peSets;
    int pesPerSet;
    int bits;
    std::string grng;
};

std::vector<Sweep>
sweepCases()
{
    return {
        {{32, 16, 4}, 2, 4, 8, "rlf"},
        {{32, 16, 4}, 2, 4, 8, "bnnwallace"},
        {{32, 16, 4}, 2, 4, 8, "ziggurat"},
        {{64, 32, 8}, 2, 8, 6, "rlf"},
        {{64, 32, 8}, 2, 8, 10, "rlf"},
        {{64, 32, 8}, 2, 8, 12, "rlf"},
        {{100, 50, 25, 5}, 4, 4, 8, "rlf"},
        {{40, 10}, 1, 4, 8, "rlf"},       // single layer
        {{48, 96, 6}, 2, 4, 8, "rlf"},    // expanding hidden layer
    };
}

/** Closed-form cycle count the controller must achieve. */
std::uint64_t
analyticCycles(const std::vector<std::size_t> &layers, int t_sets,
               int s_pes)
{
    const int m = t_sets * s_pes;
    const int n = s_pes;
    std::uint64_t cycles = 0;
    for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
        const std::size_t in = layers[l], out = layers[l + 1];
        const std::size_t rounds = (out + m - 1) / m;
        const std::size_t chunks = (in + n - 1) / n;
        cycles += rounds * (chunks + 5);
        // Tail writes: live sets of the final round.
        const std::size_t first = (rounds - 1) * m;
        std::size_t live_sets = 0;
        for (int t = 0; t < t_sets; ++t) {
            if (first + static_cast<std::size_t>(t) * s_pes < out)
                ++live_sets;
        }
        cycles += live_sets + 2;
    }
    return cycles;
}

} // anonymous namespace

class SimulatorSweep : public ::testing::TestWithParam<Sweep>
{
  protected:
    void
    SetUp() override
    {
        const auto &p = GetParam();
        Rng rng(77);
        net_ = std::make_unique<bnn::BayesianMlp>(p.layers, rng);
        config_.peSets = p.peSets;
        config_.pesPerSet = p.pesPerSet;
        config_.bits = p.bits;
        quantized_ = quantizeNetwork(*net_, config_);
        input_.resize(p.layers.front());
        Rng in_rng(5);
        for (auto &v : input_)
            v = static_cast<float>(in_rng.uniform());
    }

    std::unique_ptr<bnn::BayesianMlp> net_;
    AcceleratorConfig config_;
    QuantizedNetwork quantized_;
    std::vector<float> input_;
};

TEST_P(SimulatorSweep, CycleCountMatchesClosedForm)
{
    auto gen = grng::makeGenerator(GetParam().grng, 3);
    Simulator sim(quantized_, config_, gen.get());
    sim.runPass(input_.data());
    EXPECT_EQ(sim.stats().totalCycles,
              analyticCycles(GetParam().layers, config_.peSets,
                             config_.pesPerSet));
}

TEST_P(SimulatorSweep, FunctionalBitExact)
{
    auto gen_a = grng::makeGenerator(GetParam().grng, 11);
    auto gen_b = grng::makeGenerator(GetParam().grng, 11);
    Simulator sim(quantized_, config_, gen_a.get());
    FunctionalRunner fun(quantized_, config_, gen_b.get());
    for (int pass = 0; pass < 3; ++pass)
        ASSERT_EQ(sim.runPass(input_.data()), fun.runPass(input_.data()))
            << "pass " << pass;
}

TEST_P(SimulatorSweep, DeterministicGivenSeed)
{
    auto gen_a = grng::makeGenerator(GetParam().grng, 13);
    auto gen_b = grng::makeGenerator(GetParam().grng, 13);
    Simulator sim_a(quantized_, config_, gen_a.get());
    Simulator sim_b(quantized_, config_, gen_b.get());
    EXPECT_EQ(sim_a.runPass(input_.data()),
              sim_b.runPass(input_.data()));
}

TEST_P(SimulatorSweep, TrafficAccountingIdentities)
{
    auto gen = grng::makeGenerator(GetParam().grng, 17);
    Simulator sim(quantized_, config_, gen.get());
    sim.runPass(input_.data());
    const auto &stats = sim.stats();

    // One IFMem read and 2*T WPMem reads per chunk cycle; M*N eps per
    // chunk cycle; MACs = eps (every sampled weight is multiplied).
    std::uint64_t chunk_cycles = 0;
    const int m = config_.totalPes();
    const int n = config_.peInputs();
    for (std::size_t l = 0; l + 1 < GetParam().layers.size(); ++l) {
        const std::size_t in = GetParam().layers[l];
        const std::size_t out = GetParam().layers[l + 1];
        chunk_cycles += ((out + m - 1) / m) * ((in + n - 1) / n);
    }
    EXPECT_EQ(stats.ifmemReads, chunk_cycles);
    EXPECT_EQ(stats.wpmemReads,
              chunk_cycles * 2 * static_cast<std::uint64_t>(
                                     config_.peSets));
    EXPECT_EQ(stats.grnSamples,
              chunk_cycles * static_cast<std::uint64_t>(m) * n);
    EXPECT_EQ(stats.macs, stats.grnSamples);
}

TEST_P(SimulatorSweep, OutputsOnActivationGrid)
{
    auto gen = grng::makeGenerator(GetParam().grng, 19);
    Simulator sim(quantized_, config_, gen.get());
    const auto out = sim.runPass(input_.data());
    EXPECT_EQ(out.size(), GetParam().layers.back());
    for (auto raw : out) {
        EXPECT_GE(raw, quantized_.activationFormat.rawMin());
        EXPECT_LE(raw, quantized_.activationFormat.rawMax());
    }
}

TEST_P(SimulatorSweep, UtilizationBounded)
{
    auto gen = grng::makeGenerator(GetParam().grng, 23);
    Simulator sim(quantized_, config_, gen.get());
    sim.runPass(input_.data());
    const double u = sim.stats().utilization(config_.totalPes(),
                                             config_.peInputs());
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SimulatorSweep, ::testing::ValuesIn(sweepCases()),
    [](const ::testing::TestParamInfo<Sweep> &info) {
        const auto &p = info.param;
        std::string name;
        for (auto l : p.layers)
            name += std::to_string(l) + "_";
        name += "T" + std::to_string(p.peSets) + "S" +
            std::to_string(p.pesPerSet) + "B" + std::to_string(p.bits) +
            "_" + p.grng;
        for (auto &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

TEST(SimulatorEdge, McSamplesScaleImages)
{
    Rng rng(31);
    bnn::BayesianMlp net({16, 8, 2}, rng);
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 4;
    config.mcSamples = 7;
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 3);
    Simulator sim(q, config, gen.get());
    std::vector<float> x(16, 0.5f);
    sim.classify(x.data());
    EXPECT_EQ(sim.stats().images, 7u);
    const double per_pass = sim.stats().cyclesPerPass();
    sim.classify(x.data());
    EXPECT_DOUBLE_EQ(sim.stats().cyclesPerPass(), per_pass);
}

TEST(SimulatorEdge, RepeatedPassesAccumulateStats)
{
    Rng rng(37);
    bnn::BayesianMlp net({16, 8, 2}, rng);
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 4;
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 3);
    Simulator sim(q, config, gen.get());
    std::vector<float> x(16, 0.5f);
    sim.runPass(x.data());
    const auto cycles_one = sim.stats().totalCycles;
    sim.runPass(x.data());
    EXPECT_EQ(sim.stats().totalCycles, 2 * cycles_one);
}

TEST(SimulatorEdge, InputOutsideRangeSaturates)
{
    Rng rng(41);
    bnn::BayesianMlp net({8, 4, 2}, rng);
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 4;
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 3);
    FunctionalRunner fun(q, config, gen.get());
    std::vector<float> x(8, 1e6f); // saturates the activation grid
    const auto out = fun.runPass(x.data());
    for (auto raw : out) {
        EXPECT_GE(raw, q.activationFormat.rawMin());
        EXPECT_LE(raw, q.activationFormat.rawMax());
    }
}
