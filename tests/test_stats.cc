/**
 * @file
 * Unit tests for the statistics library: moments, stability metric,
 * runs test, KS, chi-square, autocorrelation and the normal/special
 * functions they depend on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/autocorr.hh"
#include "stats/chi_square.hh"
#include "stats/histogram.hh"
#include "stats/ks_test.hh"
#include "stats/moments.hh"
#include "stats/normal.hh"
#include "stats/runs_test.hh"
#include "stats/sequential_test.hh"
#include "stats/special.hh"

using namespace vibnn;
using namespace vibnn::stats;

TEST(Normal, CdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(Normal, InvCdfRoundTrip)
{
    for (double p = 0.001; p < 1.0; p += 0.013) {
        const double x = normalInvCdf(p);
        EXPECT_NEAR(normalCdf(x), p, 1e-9) << "p=" << p;
    }
}

TEST(Normal, PdfIntegratesToOne)
{
    double integral = 0.0;
    const double dx = 0.001;
    for (double x = -8.0; x < 8.0; x += dx)
        integral += normalPdf(x) * dx;
    EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST(Special, GammaPQComplementary)
{
    for (double a : {0.5, 1.0, 2.5, 10.0}) {
        for (double x : {0.1, 1.0, 5.0, 20.0}) {
            EXPECT_NEAR(regularizedGammaP(a, x) + regularizedGammaQ(a, x),
                        1.0, 1e-12);
        }
    }
}

TEST(Special, ChiSquareKnownQuantile)
{
    // P(chi2_1 > 3.841) = 0.05.
    EXPECT_NEAR(chiSquareSf(3.841459, 1), 0.05, 1e-4);
    // P(chi2_10 > 18.307) = 0.05.
    EXPECT_NEAR(chiSquareSf(18.30704, 10), 0.05, 1e-4);
}

TEST(Special, KolmogorovTail)
{
    EXPECT_NEAR(kolmogorovQ(1.3581), 0.05, 1e-3);
    EXPECT_GT(kolmogorovQ(0.5), 0.95);
    EXPECT_LT(kolmogorovQ(2.5), 1e-4);
}

TEST(RunningMoments, MatchesClosedForm)
{
    RunningMoments m;
    const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
    m.add(xs);
    EXPECT_DOUBLE_EQ(m.mean(), 4.5);
    EXPECT_NEAR(m.variance(), 6.0, 1e-12); // unbiased variance of 1..8
    EXPECT_NEAR(m.skewness(), 0.0, 1e-12);
}

TEST(RunningMoments, GaussianSampleMoments)
{
    Rng rng(5);
    RunningMoments m;
    for (int i = 0; i < 100000; ++i)
        m.add(rng.gaussian());
    EXPECT_NEAR(m.mean(), 0.0, 0.02);
    EXPECT_NEAR(m.stddev(), 1.0, 0.02);
    EXPECT_NEAR(m.skewness(), 0.0, 0.05);
    EXPECT_NEAR(m.excessKurtosis(), 0.0, 0.1);
}

TEST(Stability, PerfectStreamHasSmallError)
{
    Rng rng(9);
    std::vector<double> xs(65536);
    for (auto &x : xs)
        x = rng.gaussian();
    const auto r = measureStability(xs, 4096);
    EXPECT_EQ(r.windows, 16u);
    EXPECT_LT(r.muError, 0.05);
    EXPECT_LT(r.sigmaError, 0.05);
}

TEST(Stability, ScaledStreamDetected)
{
    Rng rng(10);
    std::vector<double> xs(32768);
    for (auto &x : xs)
        x = 1.5 * rng.gaussian() + 0.4;
    const auto r = measureStability(xs, 4096);
    EXPECT_NEAR(r.muError, 0.4, 0.05);
    EXPECT_NEAR(r.sigmaError, 0.5, 0.05);
}

TEST(Stability, EmptyOrShortStream)
{
    const auto r = measureStability({1.0, 2.0}, 10);
    EXPECT_EQ(r.windows, 0u);
}

TEST(RunsTest, IidGaussianPasses)
{
    Rng rng(17);
    int passed = 0;
    for (int rep = 0; rep < 40; ++rep) {
        std::vector<double> xs(2000);
        for (auto &x : xs)
            x = rng.gaussian();
        passed += runsTest(xs).passed;
    }
    EXPECT_GE(passed, 33); // ~95% expected
}

TEST(RunsTest, AlternatingSequenceFails)
{
    std::vector<double> xs(1000);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = (i % 2 == 0) ? 1.0 : -1.0;
    const auto r = runsTest(xs);
    EXPECT_FALSE(r.passed);
    EXPECT_GT(r.z, 10.0); // far too many runs
}

TEST(RunsTest, BlockSequenceFails)
{
    std::vector<double> xs;
    for (int block = 0; block < 10; ++block)
        for (int i = 0; i < 100; ++i)
            xs.push_back(block % 2 == 0 ? 1.0 : -1.0);
    const auto r = runsTest(xs);
    EXPECT_FALSE(r.passed);
    EXPECT_LT(r.z, -10.0); // far too few runs
}

TEST(RunsTest, RandomWalkFails)
{
    Rng rng(23);
    std::vector<double> xs(5000);
    double walk = 0.0;
    for (auto &x : xs) {
        walk += rng.gaussian();
        x = walk;
    }
    EXPECT_FALSE(runsTest(xs).passed);
}

TEST(RunsTest, PassRateHelper)
{
    Rng rng(29);
    const double rate = runsTestPassRate(
        [&rng](std::vector<double> &buf) {
            for (auto &x : buf)
                x = rng.gaussian();
        },
        1000, 50);
    EXPECT_GT(rate, 0.8);
}

TEST(KsTest, GaussianSamplePasses)
{
    Rng rng(31);
    std::vector<double> xs(20000);
    for (auto &x : xs)
        x = rng.gaussian();
    const auto r = ksTestStandardNormal(xs);
    EXPECT_LT(r.statistic, 0.02);
    EXPECT_GT(r.pValue, 0.01);
}

TEST(KsTest, UniformSampleFails)
{
    Rng rng(37);
    std::vector<double> xs(5000);
    for (auto &x : xs)
        x = rng.uniform(-1.0, 1.0);
    const auto r = ksTestStandardNormal(xs);
    EXPECT_LT(r.pValue, 1e-6);
}

TEST(ChiSquare, GaussianSamplePasses)
{
    Rng rng(41);
    std::vector<double> xs(50000);
    for (auto &x : xs)
        x = rng.gaussian();
    const auto r = chiSquareGofNormal(xs, 32);
    EXPECT_GT(r.pValue, 0.001);
}

TEST(ChiSquare, ShiftedSampleFails)
{
    Rng rng(43);
    std::vector<double> xs(50000);
    for (auto &x : xs)
        x = rng.gaussian() + 0.2;
    const auto r = chiSquareGofNormal(xs, 32);
    EXPECT_LT(r.pValue, 1e-8);
}

TEST(Autocorr, WhiteNoiseNearZero)
{
    Rng rng(47);
    std::vector<double> xs(50000);
    for (auto &x : xs)
        x = rng.gaussian();
    EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.02);
    EXPECT_NEAR(autocorrelation(xs, 7), 0.0, 0.02);
}

TEST(Autocorr, Ar1ProcessDetected)
{
    Rng rng(53);
    std::vector<double> xs(50000);
    double prev = 0.0;
    for (auto &x : xs) {
        prev = 0.8 * prev + rng.gaussian();
        x = prev;
    }
    EXPECT_NEAR(autocorrelation(xs, 1), 0.8, 0.03);
    EXPECT_NEAR(autocorrelation(xs, 2), 0.64, 0.04);
}

TEST(Autocorr, LagSeries)
{
    std::vector<double> xs = {1, -1, 1, -1, 1, -1, 1, -1};
    const auto acs = autocorrelations(xs, 2);
    ASSERT_EQ(acs.size(), 2u);
    EXPECT_LT(acs[0], -0.8);
    EXPECT_GT(acs[1], 0.5);
}

TEST(Histogram, CountsAndEdges)
{
    Histogram h(-1.0, 1.0, 4);
    h.add({-2.0, -0.9, -0.1, 0.1, 0.9, 2.0});
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_NEAR(h.binCenter(0), -0.75, 1e-12);
    EXPECT_FALSE(h.renderAscii().empty());
}

// ---- SequentialPosteriorTest (the adaptive early-exit decision rule)

TEST(SequentialTest, ContinuesBeforeMinSamples)
{
    SequentialPosteriorTest test(3);
    SequentialTestConfig config;
    config.minSamples = 4;
    const float certain[3] = {1.0f, 0.0f, 0.0f};
    for (int s = 0; s < 3; ++s) {
        test.add(certain);
        EXPECT_EQ(test.decide(config, 32), SequentialDecision::Continue)
            << "sample " << s;
    }
    test.add(certain);
    EXPECT_NE(test.decide(config, 32), SequentialDecision::Continue);
}

TEST(SequentialTest, DecidedWhenGapExceedsRemainingBudget)
{
    // After 4 unanimous samples the gap is 4; with budget 7 only 3
    // rounds remain, and each can shift the gap by at most 1 — the
    // argmax is mathematically frozen.
    SequentialPosteriorTest test(2);
    SequentialTestConfig config;
    config.minSamples = 4;
    const float certain[2] = {1.0f, 0.0f};
    for (int s = 0; s < 4; ++s)
        test.add(certain);
    EXPECT_EQ(test.decide(config, 7), SequentialDecision::Decided);
    // With 4 or more rounds remaining the hard bound cannot fire (a
    // zero-variance stream converges statistically instead).
    EXPECT_NE(test.decide(config, 9), SequentialDecision::Decided);
}

TEST(SequentialTest, ConvergesOnConsistentSamples)
{
    // A clear, low-noise margin converges statistically long before
    // the vote gap could freeze against a large budget.
    SequentialPosteriorTest test(3);
    SequentialTestConfig config;
    config.minSamples = 4;
    config.confidence = 0.999;
    Rng rng(5);
    for (int s = 0; s < 8; ++s) {
        const float eps = static_cast<float>(rng.uniform()) * 0.02f;
        const float sample[3] = {0.7f - eps, 0.2f, 0.1f + eps};
        test.add(sample);
    }
    EXPECT_EQ(test.decide(config, 1024),
              SequentialDecision::Converged);
}

TEST(SequentialTest, ContinuesWhileContested)
{
    // Alternating winners: the mean gap stays near zero relative to
    // its spread, so no exit fires while budget remains.
    SequentialPosteriorTest test(2);
    SequentialTestConfig config;
    config.minSamples = 4;
    for (int s = 0; s < 16; ++s) {
        const float a[2] = {0.9f, 0.1f};
        const float b[2] = {0.1f, 0.9f};
        test.add((s % 2) ? b : a);
        if (test.samples() >= config.minSamples)
            EXPECT_EQ(test.decide(config, 1024),
                      SequentialDecision::Continue)
                << "sample " << s;
    }
}

TEST(SequentialTest, HigherConfidenceIsMoreCautious)
{
    // The exact state that converges at a loose confidence must not
    // converge at a strict one when the margin sits between the two
    // thresholds.
    SequentialPosteriorTest test(2);
    Rng rng(11);
    for (int s = 0; s < 6; ++s) {
        const float noise = static_cast<float>(rng.gaussian()) * 0.08f;
        const float sample[2] = {0.56f + noise, 0.44f - noise};
        test.add(sample);
    }
    SequentialTestConfig loose;
    loose.confidence = 0.6;
    SequentialTestConfig strict;
    strict.confidence = 0.999999;
    EXPECT_EQ(test.decide(loose, 1 << 20),
              SequentialDecision::Converged);
    EXPECT_EQ(test.decide(strict, 1 << 20),
              SequentialDecision::Continue);
}

TEST(SequentialTest, MeanAndPredictedTrackRunningAverage)
{
    SequentialPosteriorTest test(3);
    const float s1[3] = {0.5f, 0.3f, 0.2f};
    const float s2[3] = {0.1f, 0.7f, 0.2f};
    test.add(s1);
    test.add(s2);
    float mean[3];
    test.mean(mean);
    EXPECT_FLOAT_EQ(mean[0], 0.3f);
    EXPECT_FLOAT_EQ(mean[1], 0.5f);
    EXPECT_FLOAT_EQ(mean[2], 0.2f);
    EXPECT_EQ(test.predicted(), 1u);
    EXPECT_EQ(test.samples(), 2);
}

TEST(SequentialTest, DecisionIsPureFunctionOfState)
{
    // Re-evaluating at the same accumulated state answers the same —
    // the property that makes chunk-boundary checks schedule-free.
    SequentialPosteriorTest test(4);
    SequentialTestConfig config;
    Rng rng(17);
    for (int s = 0; s < 12; ++s) {
        float sample[4];
        float sum = 0.0f;
        for (auto &v : sample)
            sum += v = static_cast<float>(rng.uniform());
        for (auto &v : sample)
            v /= sum;
        test.add(sample);
    }
    const auto first = test.decide(config, 64);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(test.decide(config, 64), first);
}
