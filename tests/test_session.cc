/**
 * @file
 * Tests for the serving layer: the shared uncertainty math against
 * hand-computed references, session results against the raw
 * Monte-Carlo engine (the pre-session classifyBatch path) in both exec
 * modes, exact sync/async equivalence under micro-batch coalescing for
 * any thread count, per-request ensemble-size overrides, the
 * environment/string option parsing, and the builder's validation
 * error paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/rng.hh"
#include "core/model_io.hh"
#include "core/vibnn.hh"
#include "data/synth_mnist.hh"
#include "nn/uncertainty.hh"
#include "serve/session.hh"

using namespace vibnn;
using namespace vibnn::serve;

namespace
{

accel::AcceleratorConfig
smallConfig(int mc_samples = 4)
{
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = mc_samples;
    return config;
}

accel::QuantizedProgram
mlpProgram(const accel::AcceleratorConfig &config, std::uint64_t seed,
           float rho_init = -3.0f)
{
    Rng rng(seed);
    bnn::BayesianMlp net({24, 16, 4}, rng, rho_init);
    return compile(net, config);
}

std::vector<float>
randomBatch(std::size_t count, std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(count * dim);
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform());
    return xs;
}

/** Builder preloaded with the standard small MLP program. */
InferenceSession::Builder
smallBuilder(const accel::AcceleratorConfig &config,
             std::uint64_t seed = 211)
{
    return std::move(InferenceSession::Builder()
                         .program(mlpProgram(config, 7))
                         .accelerator(config)
                         .seed(seed));
}

} // anonymous namespace

// ----------------------------------------------------- uncertainty math

TEST(Uncertainty, EntropyMatchesHandComputedReferences)
{
    const float uniform[4] = {0.25f, 0.25f, 0.25f, 0.25f};
    EXPECT_NEAR(nn::predictiveEntropy(uniform, 4), std::log(4.0),
                1e-12);

    const float point[4] = {0.0f, 1.0f, 0.0f, 0.0f};
    EXPECT_EQ(nn::predictiveEntropy(point, 4), 0.0);

    // H(0.75, 0.25) = -(3/4) ln(3/4) - (1/4) ln(1/4).
    const float skew[2] = {0.75f, 0.25f};
    EXPECT_NEAR(nn::predictiveEntropy(skew, 2),
                -(0.75 * std::log(0.75) + 0.25 * std::log(0.25)),
                1e-7);
}

TEST(Uncertainty, MutualInformationSeparatesDisagreementFromNoise)
{
    // Two confident but opposite samples: every sample has zero
    // entropy, the mean is uniform -> MI = H(mean) = ln 2 (pure
    // epistemic disagreement).
    const float disagree[4] = {1.0f, 0.0f, 0.0f, 1.0f};
    const float mean_of_disagree[2] = {0.5f, 0.5f};
    EXPECT_NEAR(nn::meanSampleEntropy(disagree, 2, 2), 0.0, 1e-12);
    EXPECT_NEAR(nn::mutualInformation(mean_of_disagree, disagree, 2, 2),
                std::log(2.0), 1e-7);

    // Two identical uniform samples: the mean entropy equals the
    // per-sample entropy -> MI = 0 (pure aleatoric noise).
    const float agree[4] = {0.5f, 0.5f, 0.5f, 0.5f};
    EXPECT_NEAR(nn::mutualInformation(mean_of_disagree, agree, 2, 2),
                0.0, 1e-7);
}

TEST(Uncertainty, TopKRanksAndBreaksTies)
{
    const float probs[5] = {0.1f, 0.4f, 0.1f, 0.25f, 0.15f};
    const auto top3 = nn::topK(probs, 5, 3);
    ASSERT_EQ(top3.size(), 3u);
    EXPECT_EQ(top3[0].classIndex, 1u);
    EXPECT_FLOAT_EQ(top3[0].prob, 0.4f);
    EXPECT_EQ(top3[1].classIndex, 3u);
    EXPECT_EQ(top3[2].classIndex, 4u);

    // Tie on 0.1 keeps the lower class index first; k clamps to count.
    const auto all = nn::topK(probs, 5, 99);
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[3].classIndex, 0u);
    EXPECT_EQ(all[4].classIndex, 2u);

    EXPECT_FLOAT_EQ(nn::maxProbability(probs, 5), 0.4f);
}

// ------------------------------------------- session vs. the raw engine

TEST(InferenceSession, MatchesRawEngineInBothModes)
{
    // The session must report exactly what the pre-session path — a
    // fresh McEngine with the same policy — computes at the same
    // seeds, in both exec modes.
    const auto config = smallConfig(5);
    const auto program = mlpProgram(config, 7);
    const std::size_t count = 6, dim = program.inputDim();
    const auto xs = randomBatch(count, dim, 17);

    struct
    {
        ExecMode mode;
        const char *backend;
        accel::McSchedule schedule;
    } cases[2] = {
        {ExecMode::Fidelity, "functional", accel::McSchedule::PerUnit},
        {ExecMode::Throughput, "batched", accel::McSchedule::PerRound},
    };
    for (const auto &c : cases) {
        auto session = InferenceSession::Builder()
                           .program(program)
                           .accelerator(config)
                           .seed(19)
                           .mode(c.mode)
                           .build();
        EXPECT_STREQ(session->backendId().c_str(), c.backend);
        const auto result = session->run(
            InferenceRequest::borrow(xs.data(), count, dim));

        accel::McEngineConfig mc;
        mc.seedBase = 19;
        mc.backendId = c.backend;
        mc.schedule = c.schedule;
        accel::McEngine engine(program, config, mc);
        std::vector<float> probs(count * program.outputDim());
        const auto preds = engine.classifyBatch(xs.data(), count, dim,
                                                probs.data());

        ASSERT_EQ(result.predictions.size(), count);
        EXPECT_EQ(result.predictedClasses(), preds);
        for (std::size_t i = 0; i < count; ++i) {
            const auto &p = result.predictions[i].probs;
            for (std::size_t j = 0; j < p.size(); ++j)
                EXPECT_EQ(p[j],
                          probs[i * program.outputDim() + j])
                    << execModeName(c.mode) << " image " << i
                    << " class " << j;
        }
    }
}

TEST(InferenceSession, ServesSynthMnistBitIdenticalToFacadeClassifyBatch)
{
    // The acceptance bar of the redesign: the synth-MNIST batch served
    // through a session in BOTH exec modes must predict bit-identically
    // to VibnnSystem::classifyBatch (the pre-redesign entry) at the
    // same seeds.
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = 4;
    Rng rng(59);
    bnn::BayesianMlp net({data::kMnistPixels, 12, 10}, rng, -3.0f);
    const core::VibnnSystem system(net, config, "rlf", 61);

    data::SynthMnistConfig synth;
    synth.trainCount = 1;
    synth.testCount = 10;
    synth.seed = 67;
    const auto ds = data::makeSynthMnist(synth);
    const auto view = ds.test.view();

    for (const ExecMode mode :
         {ExecMode::Fidelity, ExecMode::Throughput}) {
        std::vector<float> facade_probs(view.count * 10);
        const auto facade_preds = system.classifyBatch(
            view, 1, facade_probs.data(), mode);

        serve::SessionOptions opts;
        opts.mode = mode;
        auto session = system.makeSession(opts);
        const auto result =
            session->run(InferenceRequest::borrow(view));
        EXPECT_EQ(result.predictedClasses(), facade_preds)
            << execModeName(mode);
        for (std::size_t i = 0; i < view.count; ++i) {
            const auto &p = result.predictions[i].probs;
            for (std::size_t j = 0; j < p.size(); ++j)
                EXPECT_EQ(p[j], facade_probs[i * 10 + j])
                    << execModeName(mode) << " image " << i;
        }
    }
}

TEST(InferenceSession, DecoratesPredictionsConsistently)
{
    const auto config = smallConfig(6);
    auto session = smallBuilder(config).topK(2).build();
    const auto xs = randomBatch(3, session->inputDim(), 23);
    const auto result =
        session->run(InferenceRequest::borrow(xs.data(), 3,
                                              session->inputDim()));

    for (const auto &p : result.predictions) {
        // The decorations must all derive from the same probs buffer.
        EXPECT_EQ(p.predicted, static_cast<std::size_t>(
                                   std::max_element(p.probs.begin(),
                                                    p.probs.end()) -
                                   p.probs.begin()));
        EXPECT_FLOAT_EQ(p.confidence,
                        nn::maxProbability(p.probs.data(),
                                           p.probs.size()));
        EXPECT_NEAR(p.entropy,
                    nn::predictiveEntropy(p.probs.data(),
                                          p.probs.size()),
                    1e-12);
        ASSERT_EQ(p.topk.size(), 2u);
        EXPECT_EQ(p.topk[0].classIndex, p.predicted);
        EXPECT_FLOAT_EQ(p.topk[0].prob, p.confidence);
        EXPECT_GE(p.topk[0].prob, p.topk[1].prob);
        // MI <= H (the decomposition), both nonnegative.
        EXPECT_GE(p.mutualInformation, 0.0);
        EXPECT_LE(p.mutualInformation, p.entropy + 1e-9);
        float mass = 0.0f;
        for (float v : p.probs)
            mass += v;
        EXPECT_NEAR(mass, 1.0f, 1e-4f);
    }
}

// --------------------------------------------------- async / coalescing

TEST(InferenceSession, AsyncSubmitMatchesSynchronousRunExactly)
{
    const auto config = smallConfig(4);
    for (const ExecMode mode :
         {ExecMode::Fidelity, ExecMode::Throughput}) {
        auto session = smallBuilder(config).mode(mode).build();
        const std::size_t dim = session->inputDim();
        const std::size_t requests = 7;
        const auto xs = randomBatch(requests, dim, 29);

        std::vector<ResultHandle> handles;
        for (std::size_t i = 0; i < requests; ++i) {
            handles.push_back(session->submit(InferenceRequest::borrow(
                xs.data() + i * dim, 1, dim)));
        }
        session->drain();

        for (std::size_t i = 0; i < requests; ++i) {
            auto async_result = handles[i].get();
            const auto sync_result = session->run(
                InferenceRequest::borrow(xs.data() + i * dim, 1, dim));
            ASSERT_EQ(async_result.predictions.size(), 1u);
            const auto &a = async_result.predictions.front();
            const auto &s = sync_result.predictions.front();
            EXPECT_EQ(a.predicted, s.predicted)
                << execModeName(mode) << " request " << i;
            EXPECT_EQ(a.probs, s.probs)
                << execModeName(mode) << " request " << i;
            EXPECT_EQ(a.entropy, s.entropy);
            EXPECT_EQ(a.mutualInformation, s.mutualInformation);
        }

        const auto counters = session->counters();
        EXPECT_EQ(counters.requests, 2 * requests);
        EXPECT_EQ(counters.images, 2 * requests);
        // Whatever the coalescing pattern was, it can never take more
        // passes than requests, and merged passes must be accounted.
        EXPECT_LE(counters.passes, counters.requests);
        if (counters.maxCoalescedRequests > 1)
            EXPECT_GE(counters.coalescedPasses, 1u);
    }
}

TEST(InferenceSession, CoalescedResultsBitIdenticalAcrossThreadCounts)
{
    // The coalescer plus the engine's round scheduling must be
    // invisible: any thread count, any merge pattern, same bits.
    const auto config = smallConfig(8);
    const auto program = mlpProgram(config, 7);
    const std::size_t dim = program.inputDim();
    const std::size_t requests = 5;
    const auto xs = randomBatch(requests, dim, 31);

    std::vector<std::vector<float>> probs_by_threads;
    for (const std::size_t threads : {1u, 2u, 5u}) {
        auto session = InferenceSession::Builder()
                           .program(program)
                           .accelerator(config)
                           .seed(211)
                           .mode(ExecMode::Throughput)
                           .threads(threads)
                           .build();
        std::vector<ResultHandle> handles;
        for (std::size_t i = 0; i < requests; ++i) {
            handles.push_back(session->submit(InferenceRequest::borrow(
                xs.data() + i * dim, 1, dim)));
        }
        std::vector<float> flat;
        for (auto &handle : handles) {
            const auto result = handle.get();
            for (const auto &p : result.predictions)
                flat.insert(flat.end(), p.probs.begin(),
                            p.probs.end());
        }
        probs_by_threads.push_back(std::move(flat));
    }
    EXPECT_EQ(probs_by_threads[0], probs_by_threads[1]);
    EXPECT_EQ(probs_by_threads[0], probs_by_threads[2]);
}

TEST(InferenceSession, NoCoalescingOnBackendsWithoutBatchedRounds)
{
    // Throughput mode on an explicit backend WITHOUT batchedRounds
    // caps: the round fallback streams a pass's images off one
    // sequential generator, so merging requests would change their
    // epsilons. The dispatcher must therefore serve such sessions one
    // request per pass — submit() still equals run() exactly.
    const auto config = smallConfig(3);
    auto session = smallBuilder(config)
                       .mode(ExecMode::Throughput)
                       .backend("functional")
                       .build();
    const std::size_t dim = session->inputDim();
    const std::size_t requests = 5;
    const auto xs = randomBatch(requests, dim, 71);

    std::vector<ResultHandle> handles;
    for (std::size_t i = 0; i < requests; ++i) {
        handles.push_back(session->submit(
            InferenceRequest::borrow(xs.data() + i * dim, 1, dim)));
    }
    session->drain();
    const auto counters = session->counters();
    EXPECT_EQ(counters.passes, requests);
    EXPECT_EQ(counters.coalescedPasses, 0u);
    EXPECT_EQ(counters.maxCoalescedRequests, 1u);

    for (std::size_t i = 0; i < requests; ++i) {
        const auto async_result = handles[i].get();
        const auto sync_result = session->run(
            InferenceRequest::borrow(xs.data() + i * dim, 1, dim));
        EXPECT_EQ(async_result.predictions.front().probs,
                  sync_result.predictions.front().probs)
            << "request " << i;
    }
}

TEST(InferenceSession, LeanModeSkipsSampleDistributionsOnly)
{
    // uncertainty(false) must not change predictions, mean probs or
    // entropy — only the per-sample-derived mutual information, which
    // reads 0 because the buffer is never materialized.
    const auto config = smallConfig(4);
    const auto xs = randomBatch(2, 24, 53);
    auto rich = smallBuilder(config).build();
    auto lean = smallBuilder(config).uncertainty(false).build();
    const auto rich_result =
        rich->run(InferenceRequest::borrow(xs.data(), 2, 24));
    const auto lean_result =
        lean->run(InferenceRequest::borrow(xs.data(), 2, 24));
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &r = rich_result.predictions[i];
        const auto &l = lean_result.predictions[i];
        EXPECT_EQ(l.predicted, r.predicted);
        EXPECT_EQ(l.probs, r.probs);
        EXPECT_EQ(l.entropy, r.entropy);
        EXPECT_EQ(l.mutualInformation, 0.0);
    }
}

TEST(InferenceSession, PerRequestEnsembleSizeOverride)
{
    const auto config = smallConfig(8);
    auto session = smallBuilder(config).build();
    const auto xs = randomBatch(1, session->inputDim(), 37);

    InferenceRequest small = InferenceRequest::borrow(
        xs.data(), 1, session->inputDim());
    small.mcSamples = 3;
    const auto result = session->run(small);
    EXPECT_EQ(result.mcSamples, 3);

    // A request at T=3 must match a whole session built at T=3 (the
    // per-unit stream seeds depend only on (seed, unit), not on T).
    auto session_t3 = smallBuilder(config).mcSamples(3).build();
    const auto reference = session_t3->run(InferenceRequest::borrow(
        xs.data(), 1, session->inputDim()));
    EXPECT_EQ(result.predictions.front().probs,
              reference.predictions.front().probs);
}

// ------------------------------------------------ construction plumbing

TEST(InferenceSession, BuildsFromSystemAndFromSavedProgramFile)
{
    const auto config = smallConfig(4);
    Rng rng(43);
    bnn::BayesianMlp net({24, 16, 4}, rng, -3.0f);
    const core::VibnnSystem system(net, config, "rlf", 77);
    const auto xs = randomBatch(2, 24, 41);

    // Via the facade: adopts the system's grng id and seed, so the
    // facade's own classifyBatch must agree bit for bit.
    auto from_system = serve::InferenceSession::Builder()
                           .system(system)
                           .build();
    const auto result = from_system->run(
        InferenceRequest::borrow(xs.data(), 2, 24));
    std::vector<float> facade_probs(2 * system.program().outputDim());
    const auto facade_preds = system.classifyBatch(
        nn::DataView{2, 24, xs.data(), nullptr}, 1,
        facade_probs.data());
    EXPECT_EQ(result.predictedClasses(), facade_preds);
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &p = result.predictions[i].probs;
        for (std::size_t j = 0; j < p.size(); ++j)
            EXPECT_EQ(p[j], facade_probs[i * p.size() + j]);
    }

    // Via a saved program image: same program, same bits.
    const std::string path = "/tmp/vibnn_test_session_program.bin";
    ASSERT_TRUE(core::saveQuantizedProgram(system.program(), path));
    auto from_file = serve::InferenceSession::Builder()
                         .programFile(path)
                         .accelerator(config)
                         .seed(77)
                         .build();
    const auto file_result = from_file->run(
        InferenceRequest::borrow(xs.data(), 2, 24));
    EXPECT_EQ(file_result.predictedClasses(),
              result.predictedClasses());
    for (std::size_t i = 0; i < 2; ++i)
        EXPECT_EQ(file_result.predictions[i].probs,
                  result.predictions[i].probs);
    std::remove(path.c_str());
}

TEST(SessionOptions, EnvironmentOverlayAndModeParsing)
{
    EXPECT_EQ(parseExecMode("fidelity"), ExecMode::Fidelity);
    EXPECT_EQ(parseExecMode("throughput"), ExecMode::Throughput);

    setenv("VIBNN_SERVE_MODE", "throughput", 1);
    setenv("VIBNN_SERVE_GRNG", "bnnwallace", 1);
    setenv("VIBNN_SERVE_T", "12", 1);
    setenv("VIBNN_SERVE_THREADS", "3", 1);
    setenv("VIBNN_SERVE_SEED", "99", 1);
    const auto opts = SessionOptions::fromEnv();
    unsetenv("VIBNN_SERVE_MODE");
    unsetenv("VIBNN_SERVE_GRNG");
    unsetenv("VIBNN_SERVE_T");
    unsetenv("VIBNN_SERVE_THREADS");
    unsetenv("VIBNN_SERVE_SEED");

    EXPECT_EQ(opts.mode, ExecMode::Throughput);
    EXPECT_EQ(opts.grngId, "bnnwallace");
    EXPECT_EQ(opts.mcSamples, 12);
    EXPECT_EQ(opts.threads, 3u);
    EXPECT_EQ(opts.seed, 99u);
}

// ------------------------------------------------------ validation paths

TEST(SessionValidationDeathTest, BuilderRejectsBadInput)
{
    const auto config = smallConfig();
    EXPECT_DEATH((void)InferenceSession::Builder().build(),
                 "no model source");
    EXPECT_DEATH((void)smallBuilder(config)
                     .backend("no-such-backend")
                     .build(),
                 "unknown executor backend.*registered: simulator, "
                 "functional, batched");
    EXPECT_DEATH((void)smallBuilder(config).grng("no-such-grng").build(),
                 "unknown GRNG id.*registered:.*rlf");
    EXPECT_DEATH((void)smallBuilder(config).mcSamples(-2).build(),
                 "mcSamples must be >= 0");
    EXPECT_DEATH((void)InferenceSession::Builder()
                     .programFile("/nonexistent/vibnn program.bin")
                     .build(),
                 "cannot load");
    EXPECT_DEATH(parseExecMode("warp-speed"), "unknown exec mode");
}

TEST(SessionValidationDeathTest, RequestsAreValidated)
{
    const auto config = smallConfig();
    auto session = smallBuilder(config).build();
    const auto xs = randomBatch(1, session->inputDim(), 47);

    EXPECT_DEATH((void)session->run(InferenceRequest::borrow(
                     xs.data(), 1, session->inputDim() + 1)),
                 "does not match the program input dim");
    EXPECT_DEATH((void)session->run(InferenceRequest::borrow(
                     xs.data(), 0, session->inputDim())),
                 "no images");
}

// ------------------------------------------- deadline-aware dispatching

TEST(SessionOptions, DeadlineAndMaxBatchEnvKnobs)
{
    setenv("VIBNN_SERVE_DEADLINE_US", "2500", 1);
    setenv("VIBNN_SERVE_MAX_BATCH", "32", 1);
    const auto opts = SessionOptions::fromEnv();
    unsetenv("VIBNN_SERVE_DEADLINE_US");
    unsetenv("VIBNN_SERVE_MAX_BATCH");
    EXPECT_EQ(opts.defaultDeadlineMicros, 2500);
    EXPECT_EQ(opts.maxBatchImages, 32u);
}

TEST(SessionOptionsDeathTest, DeadlineEnvKnobsParseStrictly)
{
    // The PR 4 convention: a garbled knob is fatal, never silently
    // ignored.
    setenv("VIBNN_SERVE_DEADLINE_US", "soon-ish", 1);
    EXPECT_DEATH((void)SessionOptions::fromEnv(),
                 "VIBNN_SERVE_DEADLINE_US must be a base-10 integer");
    setenv("VIBNN_SERVE_DEADLINE_US", "-5", 1);
    EXPECT_DEATH((void)SessionOptions::fromEnv(),
                 "VIBNN_SERVE_DEADLINE_US must be in");
    // Over the cap is just as fatal as negative: a deadline licenses
    // the dispatcher to hold work, so it must be bounded.
    setenv("VIBNN_SERVE_DEADLINE_US",
           std::to_string(serve::kMaxDeadlineMicros + 1).c_str(), 1);
    EXPECT_DEATH((void)SessionOptions::fromEnv(),
                 "VIBNN_SERVE_DEADLINE_US must be in");
    unsetenv("VIBNN_SERVE_DEADLINE_US");

    setenv("VIBNN_SERVE_MAX_BATCH", "many", 1);
    EXPECT_DEATH((void)SessionOptions::fromEnv(),
                 "VIBNN_SERVE_MAX_BATCH must be a base-10 integer");
    setenv("VIBNN_SERVE_MAX_BATCH", "-1", 1);
    EXPECT_DEATH((void)SessionOptions::fromEnv(),
                 "VIBNN_SERVE_MAX_BATCH must be >= 0");
    unsetenv("VIBNN_SERVE_MAX_BATCH");
}

TEST(SessionValidationDeathTest, DeadlinesAreValidated)
{
    const auto config = smallConfig();
    EXPECT_DEATH((void)smallBuilder(config).defaultDeadline(-1).build(),
                 "defaultDeadlineMicros must be in");
    EXPECT_DEATH(
        (void)smallBuilder(config)
            .defaultDeadline(serve::kMaxDeadlineMicros + 1)
            .build(),
        "defaultDeadlineMicros must be in");

    auto session = smallBuilder(config).build();
    const auto xs = randomBatch(1, session->inputDim(), 47);
    InferenceRequest request =
        InferenceRequest::borrow(xs.data(), 1, session->inputDim());
    request.deadlineMicros = -100;
    EXPECT_DEATH((void)session->run(request),
                 "deadlineMicros must be in");
    request.deadlineMicros = serve::kMaxDeadlineMicros + 1;
    EXPECT_DEATH((void)session->run(request),
                 "deadlineMicros must be in");
}

TEST(InferenceSession, DeadlinedSubmitBitIdenticalToRun)
{
    // A latency budget shapes WHEN the dispatcher executes, never the
    // outputs: a held submit() returns exactly what run() returns.
    const auto config = smallConfig(8);
    auto session =
        smallBuilder(config).mode(ExecMode::Throughput).build();
    const auto xs = randomBatch(2, session->inputDim(), 33);

    const auto reference = session->run(
        InferenceRequest::borrow(xs.data(), 2, session->inputDim()));

    InferenceRequest request = InferenceRequest::copy(
        xs.data(), 2, session->inputDim());
    request.deadlineMicros = 50'000;
    auto result = session->submit(std::move(request)).get();

    ASSERT_EQ(result.predictions.size(), reference.predictions.size());
    for (std::size_t i = 0; i < result.predictions.size(); ++i) {
        EXPECT_EQ(result.predictions[i].probs,
                  reference.predictions[i].probs);
        EXPECT_EQ(result.predictions[i].predicted,
                  reference.predictions[i].predicted);
        EXPECT_EQ(result.predictions[i].entropy,
                  reference.predictions[i].entropy);
    }
    // The lone deadlined request had a license to hold, and nothing
    // arrived to fill the round.
    EXPECT_GE(session->counters().heldPasses, 1u);
}

TEST(InferenceSession, MaxBatchImagesDispatchesAFullRoundEarly)
{
    // Two single-image requests against maxBatchImages=2: the second
    // arrival fills the round, so a 5-second budget must NOT be
    // waited out — completion in milliseconds is the pin that the
    // full-round early dispatch works.
    const auto config = smallConfig(8);
    auto session = smallBuilder(config)
                       .mode(ExecMode::Throughput)
                       .defaultDeadline(5'000'000)
                       .maxBatchImages(2)
                       .build();
    const auto xs = randomBatch(2, session->inputDim(), 81);

    const auto started = std::chrono::steady_clock::now();
    auto a = session->submit(InferenceRequest::copy(
        xs.data(), 1, session->inputDim()));
    auto b = session->submit(InferenceRequest::copy(
        xs.data() + session->inputDim(), 1, session->inputDim()));
    const auto result_a = a.get();
    const auto result_b = b.get();
    const double waited_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    EXPECT_LT(waited_s, 2.0)
        << "full round did not dispatch early against its deadline";

    // Still bit-identical to solo runs.
    const auto ref_a = session->run(InferenceRequest::borrow(
        xs.data(), 1, session->inputDim()));
    const auto ref_b = session->run(InferenceRequest::borrow(
        xs.data() + session->inputDim(), 1, session->inputDim()));
    EXPECT_EQ(result_a.predictions[0].probs, ref_a.predictions[0].probs);
    EXPECT_EQ(result_b.predictions[0].probs, ref_b.predictions[0].probs);

    const auto counters = session->counters();
    EXPECT_LE(counters.maxBatchedImages, 2u);
}
