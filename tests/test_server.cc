/**
 * @file
 * End-to-end tests of the vibnn-serve network server: socket-served
 * predictions bit-identical to in-process InferenceSession::run()
 * under any shard count and connection interleaving, per-request T
 * overrides over the wire, deterministic overload rejection from
 * admission control, held (deadline-licensed) coalescing across
 * connections, malformed-byte resilience (error frames / clean close,
 * never a crash or hang), the metrics endpoint, and the client-driven
 * shutdown handshake.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/program.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/rng.hh"
#include "serve/client.hh"
#include "serve/net/protocol.hh"
#include "serve/net/socket.hh"
#include "serve/server.hh"
#include "serve/session.hh"

using namespace vibnn;
using namespace vibnn::serve;

namespace
{

accel::AcceleratorConfig
smallConfig(int mc_samples = 8)
{
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = mc_samples;
    return config;
}

accel::QuantizedProgram
mlpProgram(const accel::AcceleratorConfig &config, std::uint64_t seed)
{
    Rng rng(seed);
    bnn::BayesianMlp net({24, 16, 4}, rng, -3.0f);
    return compile(net, config);
}

std::vector<float>
randomBatch(std::size_t count, std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(count * dim);
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform());
    return xs;
}

SessionOptions
throughputOptions()
{
    SessionOptions opts;
    opts.mode = ExecMode::Throughput;
    opts.seed = 211;
    return opts;
}

std::unique_ptr<Server>
startServer(const accel::AcceleratorConfig &config,
            ServerOptions options)
{
    auto server = std::make_unique<Server>(mlpProgram(config, 7),
                                           config, options);
    std::string error;
    EXPECT_TRUE(server->start(error)) << error;
    return server;
}

/** Reference in-process session, configured exactly like a shard. */
std::unique_ptr<InferenceSession>
referenceSession(const accel::AcceleratorConfig &config,
                 const SessionOptions &opts)
{
    return InferenceSession::Builder()
        .program(mlpProgram(config, 7))
        .accelerator(config)
        .options(opts)
        .build();
}

/** The served reply must be byte-for-byte the run() result. */
void
expectBitExact(const Client::Reply &reply,
               const InferenceResult &reference)
{
    ASSERT_TRUE(reply.ok()) << reply.message;
    const auto &resp = reply.response;
    ASSERT_EQ(resp.predictions.size(), reference.predictions.size());
    EXPECT_EQ(static_cast<int>(resp.mcSamples), reference.mcSamples);
    for (std::size_t i = 0; i < resp.predictions.size(); ++i) {
        const auto &served = resp.predictions[i];
        const auto &ref = reference.predictions[i];
        EXPECT_EQ(served.predicted, ref.predicted);
        EXPECT_EQ(served.achievedSamples,
                  static_cast<std::uint32_t>(ref.achievedSamples));
        EXPECT_EQ(served.exitReason,
                  static_cast<std::uint8_t>(ref.exitReason));
        ASSERT_EQ(served.probs.size(), ref.probs.size());
        EXPECT_EQ(std::memcmp(served.probs.data(), ref.probs.data(),
                              ref.probs.size() * sizeof(float)),
                  0)
            << "probs diverged at image " << i;
        EXPECT_EQ(std::memcmp(&served.confidence, &ref.confidence,
                              sizeof(float)),
                  0);
        EXPECT_EQ(served.entropy, ref.entropy);
        EXPECT_EQ(served.mutualInformation, ref.mutualInformation);
    }
}

} // anonymous namespace

// --------------------------------------------------------- bit-exactness

TEST(Server, ServedPredictionsMatchRunBitExactAcrossShardCounts)
{
    const auto config = smallConfig(8);
    const SessionOptions session = throughputOptions();
    auto reference = referenceSession(config, session);

    const std::size_t dim = reference->inputDim();
    const auto xs = randomBatch(6, dim, 99);

    for (std::size_t shards : {std::size_t(1), std::size_t(3)}) {
        ServerOptions options;
        options.shards = shards;
        options.session = session;
        auto server = startServer(config, options);
        ASSERT_EQ(server->shardCount(), shards);

        Client client;
        std::string error;
        ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error))
            << error;

        // Whole batch in one frame.
        const auto batch_ref =
            reference->run(InferenceRequest::borrow(xs.data(), 6, dim));
        expectBitExact(client.classify(xs.data(), 6, dim), batch_ref);

        // Image by image — shard routing and frame boundaries must be
        // invisible in the outputs.
        for (std::size_t i = 0; i < 6; ++i) {
            const float *row = xs.data() + i * dim;
            const auto ref =
                reference->run(InferenceRequest::borrow(row, 1, dim));
            expectBitExact(client.classify(row, 1, dim), ref);
        }
        server->stop();
    }
}

TEST(Server, InterleavedConnectionsStayBitExact)
{
    const auto config = smallConfig(8);
    const SessionOptions session = throughputOptions();
    auto reference = referenceSession(config, session);
    const std::size_t dim = reference->inputDim();

    ServerOptions options;
    options.shards = 3;
    options.session = session;
    auto server = startServer(config, options);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 8;
    std::vector<std::string> failures(kThreads);
    std::vector<std::thread> threads;
    for (int tid = 0; tid < kThreads; ++tid) {
        threads.emplace_back([&, tid] {
            Client client;
            std::string error;
            if (!client.connect("127.0.0.1", server->port(), error)) {
                failures[tid] = "connect: " + error;
                return;
            }
            for (int i = 0; i < kPerThread; ++i) {
                const auto xs = randomBatch(
                    1, dim,
                    1000 + static_cast<std::uint64_t>(tid) * 100 +
                        static_cast<std::uint64_t>(i));
                const auto reply = client.classify(xs.data(), 1, dim);
                if (!reply.ok()) {
                    failures[tid] = "classify: " + reply.message;
                    return;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (const auto &f : failures)
        EXPECT_TRUE(f.empty()) << f;

    // Re-derive every expected answer serially and compare.
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    for (int tid = 0; tid < kThreads; ++tid) {
        for (int i = 0; i < kPerThread; ++i) {
            const auto xs = randomBatch(
                1, dim,
                1000 + static_cast<std::uint64_t>(tid) * 100 +
                    static_cast<std::uint64_t>(i));
            const auto ref = reference->run(
                InferenceRequest::borrow(xs.data(), 1, dim));
            expectBitExact(client.classify(xs.data(), 1, dim), ref);
        }
    }
    server->stop();
}

TEST(Server, PerRequestEnsembleOverrideOverTheWire)
{
    const auto config = smallConfig(8);
    const SessionOptions session = throughputOptions();
    auto reference = referenceSession(config, session);
    const std::size_t dim = reference->inputDim();
    const auto xs = randomBatch(2, dim, 5);

    ServerOptions options;
    options.session = session;
    auto server = startServer(config, options);
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));

    for (std::uint32_t t : {4u, 16u}) {
        InferenceRequest request =
            InferenceRequest::borrow(xs.data(), 2, dim);
        request.mcSamples = static_cast<int>(t);
        const auto ref = reference->run(request);
        Client::Options copts;
        copts.mcSamples = t;
        const auto reply = client.classify(xs.data(), 2, dim, copts);
        ASSERT_TRUE(reply.ok()) << reply.message;
        EXPECT_EQ(reply.response.mcSamples, t);
        expectBitExact(reply, ref);
    }
    server->stop();
}

// ------------------------------------------------------ admission control

TEST(Server, OverloadIsRejectedExplicitly)
{
    const auto config = smallConfig(8);
    SessionOptions session = throughputOptions();
    // A generous default budget makes the dispatcher HOLD the first
    // request (waiting to fill the round), pinning the shard at
    // capacity for a deterministic window.
    session.defaultDeadlineMicros = 400'000;

    ServerOptions options;
    options.shards = 1;
    options.queueCapacity = 1;
    options.session = session;
    auto server = startServer(config, options);

    const std::size_t dim = 24;
    const auto xs = randomBatch(1, dim, 3);

    Client holder;
    std::string error;
    ASSERT_TRUE(holder.connect("127.0.0.1", server->port(), error));
    std::thread held([&] {
        // Occupies the shard's only slot for ~the whole budget.
        const auto reply = holder.classify(xs.data(), 1, dim);
        EXPECT_TRUE(reply.ok()) << reply.message;
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Client prober;
    ASSERT_TRUE(prober.connect("127.0.0.1", server->port(), error));
    bool saw_reject = false;
    const auto probe_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < probe_deadline) {
        const auto reply = prober.classify(xs.data(), 1, dim);
        if (reply.status == Client::Status::Overloaded) {
            EXPECT_FALSE(reply.message.empty());
            saw_reject = true;
            break;
        }
        ASSERT_TRUE(reply.ok()) << reply.message;
    }
    held.join();
    EXPECT_TRUE(saw_reject)
        << "no Overloaded rejection inside the hold window";

    const ServerStats stats = server->stats();
    EXPECT_GE(stats.rejects, 1u);
    EXPECT_GE(stats.shards.at(0).heldPasses, 1u);
    server->stop();
}

// ------------------------------------------------- held coalescing e2e

TEST(Server, DeadlineLicensedHoldMergesAcrossConnections)
{
    const auto config = smallConfig(8);
    SessionOptions session = throughputOptions();
    session.defaultDeadlineMicros = 300'000;
    auto reference = referenceSession(config, throughputOptions());
    const std::size_t dim = reference->inputDim();

    ServerOptions options;
    options.shards = 1;
    options.queueCapacity = 8;
    options.session = session;
    auto server = startServer(config, options);

    const auto xs_a = randomBatch(1, dim, 21);
    const auto xs_b = randomBatch(1, dim, 22);
    Client::Reply reply_a, reply_b;
    std::thread ta([&] {
        Client c;
        std::string error;
        ASSERT_TRUE(c.connect("127.0.0.1", server->port(), error));
        reply_a = c.classify(xs_a.data(), 1, dim);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    std::thread tb([&] {
        Client c;
        std::string error;
        ASSERT_TRUE(c.connect("127.0.0.1", server->port(), error));
        reply_b = c.classify(xs_b.data(), 1, dim);
    });
    ta.join();
    tb.join();

    // Holding shapes WHEN the pass runs, never its outputs: both
    // replies are still bit-identical to solo run() — deadlines have
    // no license to change results.
    expectBitExact(reply_a,
                   reference->run(InferenceRequest::borrow(
                       xs_a.data(), 1, dim)));
    expectBitExact(reply_b,
                   reference->run(InferenceRequest::borrow(
                       xs_b.data(), 1, dim)));

    const ServerStats stats = server->stats();
    EXPECT_GE(stats.shards.at(0).heldPasses, 1u);
    EXPECT_GE(stats.shards.at(0).coalescedPasses, 1u);
    server->stop();
}

// ------------------------------------------------------ malformed input

TEST(Server, GarbageMagicClosesTheConnectionNotTheServer)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);

    std::string error;
    net::Socket raw =
        net::connectTcp("127.0.0.1", server->port(), error);
    ASSERT_TRUE(raw.valid()) << error;
    const char junk[32] = "this is not a vibnn frame at al";
    ASSERT_TRUE(net::writeAll(raw, junk, sizeof junk));
    // The server drops the connection: the next read sees EOF.
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(net::readFrame(raw, type, payload, error));
    raw.close();

    // The server itself survives and serves fresh connections.
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    ASSERT_TRUE(client.ping(error)) << error;
    server->stop();
}

TEST(Server, HostileLengthPrefixIsRefusedWithoutAllocation)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);

    std::string error;
    net::Socket raw =
        net::connectTcp("127.0.0.1", server->port(), error);
    ASSERT_TRUE(raw.valid()) << error;
    // Valid magic/version/type, 4 GiB-ish length prefix.
    auto frame = net::encodeFrame(net::FrameType::Ping);
    const std::uint32_t hostile = 0xfffffff0u;
    std::memcpy(frame.data() + 8, &hostile, sizeof hostile);
    ASSERT_TRUE(net::writeAll(raw, frame.data(), frame.size()));
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(net::readFrame(raw, type, payload, error));
    raw.close();

    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    ASSERT_TRUE(client.ping(error)) << error;
    server->stop();
}

TEST(Server, MalformedClassifyPayloadGetsErrorFrameAndConnectionLives)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);

    std::string error;
    net::Socket raw =
        net::connectTcp("127.0.0.1", server->port(), error);
    ASSERT_TRUE(raw.valid()) << error;
    // A well-framed ClassifyRequest whose payload is garbage: the
    // frame boundary is intact, so the server answers BadRequest and
    // keeps the connection.
    const std::vector<std::uint8_t> junk(10, 0xab);
    ASSERT_TRUE(net::writeFrame(raw, net::FrameType::ClassifyRequest,
                                junk));
    net::FrameType type;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(net::readFrame(raw, type, payload, error)) << error;
    ASSERT_EQ(type, net::FrameType::Error);
    net::WireError err;
    ASSERT_TRUE(net::decodeError(payload.data(), payload.size(), err,
                                 error));
    EXPECT_EQ(err.code, net::ErrorCode::BadRequest);

    // Same connection still serves a valid request.
    ASSERT_TRUE(net::writeFrame(raw, net::FrameType::Ping));
    ASSERT_TRUE(net::readFrame(raw, type, payload, error));
    EXPECT_EQ(type, net::FrameType::Pong);
    raw.close();
    server->stop();
}

TEST(Server, WrongGeometryIsABadRequestNotACrash)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);

    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    // dim 7 against a 24-input program.
    const auto xs = randomBatch(1, 7, 1);
    const auto reply = client.classify(xs.data(), 1, 7);
    EXPECT_EQ(reply.status, Client::Status::BadRequest);
    EXPECT_FALSE(reply.message.empty());

    // The connection survives the rejection.
    const auto good = randomBatch(1, 24, 1);
    EXPECT_TRUE(client.classify(good.data(), 1, 24).ok());
    server->stop();
}

TEST(Server, TruncatedFrameThenCloseDoesNotHangTheServer)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);

    std::string error;
    {
        net::Socket raw =
            net::connectTcp("127.0.0.1", server->port(), error);
        ASSERT_TRUE(raw.valid()) << error;
        // Header promising 100 bytes, then only 3, then close.
        auto frame = net::encodeFrame(net::FrameType::ClassifyRequest);
        const std::uint32_t promised = 100;
        std::memcpy(frame.data() + 8, &promised, sizeof promised);
        frame.push_back(1);
        frame.push_back(2);
        frame.push_back(3);
        ASSERT_TRUE(net::writeAll(raw, frame.data(), frame.size()));
    } // close with the frame unfinished

    // stop() must join the half-fed connection thread promptly; the
    // ctest timeout is the hang detector here.
    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    ASSERT_TRUE(client.ping(error)) << error;
    server->stop();
    SUCCEED();
}

// -------------------------------------------------------- observability

TEST(Server, MetricsEndpointReportsServingCounters)
{
    const auto config = smallConfig(8);
    ServerOptions options;
    options.shards = 2;
    options.session = throughputOptions();
    auto server = startServer(config, options);

    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    const auto xs = randomBatch(3, 24, 17);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(client.classify(xs.data(), 3, 24).ok());

    std::string json;
    ASSERT_TRUE(client.metrics(json, error)) << error;
    // Spot-check the schema (docs/SERVING.md documents it in full).
    for (const char *key :
         {"\"requests\": 4", "\"images\": 12", "\"rejects\": 0",
          "\"rounds\"", "\"rounds_per_s\"", "\"p50_us\"", "\"p95_us\"",
          "\"p99_us\"", "\"shards\": [", "\"queue_depth\"",
          "\"merge_images_per_pass\"", "\"held_passes\"",
          "\"active_connections\""}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "metrics JSON missing " << key << "\n"
            << json;
    }

    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_EQ(stats.images, 12u);
    EXPECT_EQ(stats.rejects, 0u);
    // 8 rounds x 3 images x 4 requests on the fixed-T path.
    EXPECT_EQ(stats.rounds, 8u * 12u);
    EXPECT_EQ(stats.shards.size(), 2u);
    EXPECT_GT(stats.p50Micros, 0.0);
    EXPECT_GE(stats.p99Micros, stats.p50Micros);
    server->stop();
}

TEST(Server, LatencyHistogramQuantilesLandInTheRightBucket)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.quantileMicros(0.99), 0.0); // empty
    for (int i = 0; i < 99; ++i)
        hist.record(100.0);
    hist.record(50'000.0);
    EXPECT_EQ(hist.count(), 100u);
    // Geometric buckets: answers are bucket upper bounds, within the
    // ~25% bucket width of the true value.
    EXPECT_NEAR(hist.quantileMicros(0.50), 100.0, 100.0 * 0.30);
    EXPECT_NEAR(hist.quantileMicros(1.0), 50'000.0, 50'000.0 * 0.30);
    EXPECT_LT(hist.quantileMicros(0.95), 200.0);
}

// ------------------------------------------------------------- lifecycle

TEST(Server, PingAndClientDrivenShutdownHandshake)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);
    EXPECT_FALSE(server->shutdownRequested());

    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    ASSERT_TRUE(client.ping(error)) << error;
    ASSERT_TRUE(client.requestShutdown(error)) << error;

    server->waitForShutdownRequest();
    EXPECT_TRUE(server->shutdownRequested());
    server->stop();
    EXPECT_FALSE(server->running());
}

TEST(Server, DisabledRemoteShutdownIsRefusedAndServingContinues)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    options.remoteShutdown = RemoteShutdown::Disabled;
    auto server = startServer(config, options);

    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    // The Shutdown frame comes back as an explicit refusal carrying
    // the server's reason, and the connection keeps serving.
    EXPECT_FALSE(client.requestShutdown(error));
    EXPECT_NE(error.find("remote shutdown disabled"),
              std::string::npos)
        << error;
    EXPECT_FALSE(server->shutdownRequested());
    EXPECT_TRUE(client.ping(error)) << error;

    server->stop(); // the owner can always stop
    EXPECT_FALSE(server->running());
}

TEST(Server, StopIsIdempotentAndStartReportsBindFailures)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);
    const std::uint16_t port = server->port();
    EXPECT_GT(port, 0);

    // A second server on the same port must fail with an error
    // string, not fatal().
    ServerOptions clashing = options;
    clashing.port = port;
    Server second(mlpProgram(config, 7), config, clashing);
    std::string error;
    EXPECT_FALSE(second.start(error));
    EXPECT_FALSE(error.empty());

    server->stop();
    server->stop(); // idempotent
    second.stop();  // never started — still safe
    SUCCEED();
}
