/**
 * @file
 * Tests for the QuantizedProgram IR and its compile-and-execute
 * pipeline: compiler front-ends for MLP and CNN models, bit-exact
 * equivalence of the two executors on multi-op CNN programs, the
 * per-position fresh-weight-sample semantics inherited from the conv
 * lowering, the analytic cycle model, McEngine thread-count invariance
 * on CNN programs, and the empty-program fatal contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "accel/config.hh"
#include "accel/conv_lowering.hh"
#include "accel/design_space.hh"
#include "accel/functional.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_cnn.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/rng.hh"
#include "grng/registry.hh"
#include "nn/cnn.hh"

using namespace vibnn;
using namespace vibnn::accel;

namespace
{

/** A small conv-pool-conv-pool-dense topology on 1x8x8 inputs: the
 *  LeNet shape at test scale. */
nn::ConvNetConfig
tinyCnnTopology()
{
    nn::ConvNetConfig cfg;
    cfg.inChannels = 1;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {
        {/*outChannels=*/3, /*kernel=*/3, /*stride=*/1, /*pad=*/1,
         /*pool=*/true, /*poolWindow=*/2}, // 1x8x8 -> 3x8x8 -> 3x4x4
        {/*outChannels=*/4, /*kernel=*/3, /*stride=*/1, /*pad=*/1,
         /*pool=*/true, /*poolWindow=*/2}, // -> 4x4x4 -> 4x2x2
    };
    cfg.denseHidden = {12};
    cfg.numClasses = 4;
    return cfg;
}

AcceleratorConfig
tinyConfig(int mc_samples = 1)
{
    AcceleratorConfig config;
    // Smallest conv bank input is patchSize = 1*3*3 = 9 -> 3 chunks of
    // 4, so T = 2 satisfies the write-drain condition.
    config.peSets = 2;
    config.pesPerSet = 4;
    config.bits = 8;
    config.mcSamples = mc_samples;
    return config;
}

bnn::BayesianConvNet
tinyCnn(std::uint64_t seed, float rho_init = -2.0f)
{
    Rng rng(seed);
    return bnn::BayesianConvNet(tinyCnnTopology(), rng, rho_init);
}

std::vector<float>
randomImage(std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> x(dim);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(0, 1));
    return x;
}

} // namespace

TEST(ProgramCompile, MlpProgramShape)
{
    Rng rng(3);
    bnn::BayesianMlp net({32, 16, 4}, rng);
    AcceleratorConfig config = tinyConfig();
    const auto program = compile(net, config);

    ASSERT_EQ(program.ops.size(), 3u); // dense, dense, output
    EXPECT_EQ(program.ops[0].kind, OpKind::Dense);
    EXPECT_TRUE(program.ops[0].relu);
    EXPECT_EQ(program.ops[1].kind, OpKind::Dense);
    EXPECT_FALSE(program.ops[1].relu);
    EXPECT_EQ(program.ops[2].kind, OpKind::Output);
    EXPECT_EQ(program.inputDim(), 32u);
    EXPECT_EQ(program.outputDim(), 4u);
}

TEST(ProgramCompile, CnnProgramShape)
{
    auto net = tinyCnn(5);
    AcceleratorConfig config = tinyConfig();
    const auto program = compile(net, config);

    // conv pool conv pool flatten dense dense output
    const OpKind expected[] = {OpKind::ConvLowered, OpKind::Pool,
                               OpKind::ConvLowered, OpKind::Pool,
                               OpKind::Flatten,     OpKind::Dense,
                               OpKind::Dense,       OpKind::Output};
    ASSERT_EQ(program.ops.size(), 8u);
    for (std::size_t i = 0; i < program.ops.size(); ++i)
        EXPECT_EQ(program.ops[i].kind, expected[i]) << "op " << i;
    EXPECT_EQ(program.inputDim(), 64u);
    EXPECT_EQ(program.outputDim(), 4u);
    // Hidden dense keeps ReLU, classifier does not.
    EXPECT_TRUE(program.ops[5].relu);
    EXPECT_FALSE(program.ops[6].relu);
    // Sizes chain.
    EXPECT_EQ(program.ops[0].outSize, 3u * 8 * 8);
    EXPECT_EQ(program.ops[1].outSize, 3u * 4 * 4);
    EXPECT_EQ(program.ops[3].outSize, 4u * 2 * 2);
    EXPECT_EQ(program.ops[5].inSize, 16u);
}

TEST(ProgramCompile, MlpProgramMatchesLegacyNetworkPath)
{
    // The compiled MLP program and the legacy flat-QuantizedNetwork
    // constructors must execute identically, bit for bit, on both
    // executors (the refactor cannot move the MLP results).
    Rng rng(7);
    bnn::BayesianMlp net({32, 16, 4}, rng);
    AcceleratorConfig config = tinyConfig();
    const auto program = compile(net, config);
    const auto network = quantizeNetwork(net, config);

    auto gen_a = grng::makeGenerator("rlf", 99);
    auto gen_b = grng::makeGenerator("rlf", 99);
    auto gen_c = grng::makeGenerator("rlf", 99);
    Simulator sim_program(program, config, gen_a.get());
    Simulator sim_legacy(network, config, gen_b.get());
    FunctionalRunner fun_program(program, config, gen_c.get());

    const auto x = randomImage(32, 11);
    for (int pass = 0; pass < 3; ++pass) {
        const auto a = sim_program.runPass(x.data());
        const auto b = sim_legacy.runPass(x.data());
        const auto c = fun_program.runPass(x.data());
        ASSERT_EQ(a, b) << "pass " << pass;
        ASSERT_EQ(a, c) << "pass " << pass;
    }
}

TEST(ProgramExecution, CnnSimulatorAndFunctionalBitExact)
{
    // The acceptance-criterion test: a whole conv-pool-conv-pool-dense
    // program classifies on both executors with bit-identical outputs.
    auto net = tinyCnn(13);
    AcceleratorConfig config = tinyConfig();
    const auto program = compile(net, config);

    for (const std::string grng_id : {"rlf", "bnnwallace"}) {
        auto gen_a = grng::makeGenerator(grng_id, 55);
        auto gen_b = grng::makeGenerator(grng_id, 55);
        Simulator sim(program, config, gen_a.get());
        FunctionalRunner fun(program, config, gen_b.get());

        for (int image = 0; image < 3; ++image) {
            const auto x =
                randomImage(program.inputDim(), 17 + image);
            for (int pass = 0; pass < 2; ++pass) {
                const auto a = sim.runPass(x.data());
                const auto b = fun.runPass(x.data());
                ASSERT_EQ(a, b) << grng_id << " image " << image
                                << " pass " << pass;
            }
        }
    }
}

TEST(ProgramExecution, PerOpCycleAccounting)
{
    auto net = tinyCnn(19);
    AcceleratorConfig config = tinyConfig();
    const auto program = compile(net, config);

    auto gen = grng::makeGenerator("rlf", 23);
    Simulator sim(program, config, gen.get());
    const auto x = randomImage(program.inputDim(), 29);
    sim.runPass(x.data());

    const auto &stats = sim.stats();
    ASSERT_EQ(stats.opCycles.size(), program.ops.size());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        const auto &op = program.ops[i];
        if (op.isCompute() || op.kind == OpKind::Pool)
            EXPECT_GT(stats.opCycles[i], 0u) << "op " << i;
        else
            EXPECT_EQ(stats.opCycles[i], 0u) << "op " << i;
        sum += stats.opCycles[i];
    }
    EXPECT_EQ(sum, stats.totalCycles);
}

TEST(ProgramExecution, CycleCountMatchesAnalyticProgramModel)
{
    auto net = tinyCnn(31);
    AcceleratorConfig config = tinyConfig();
    const auto program = compile(net, config);

    auto gen = grng::makeGenerator("rlf", 37);
    Simulator sim(program, config, gen.get());
    const auto x = randomImage(program.inputDim(), 41);
    sim.runPass(x.data());
    EXPECT_EQ(sim.stats().totalCycles,
              predictProgramCycles(program, config));
    sim.runPass(x.data());
    EXPECT_EQ(sim.stats().totalCycles,
              2 * predictProgramCycles(program, config));
}

TEST(ProgramExecution, ConvOpDrawsFreshSamplesPerPosition)
{
    // The semantics inherited from ConvLayerRunner: every output
    // position re-samples the filter bank. With a constant input map
    // every position sees the identical patch, so any spread across
    // positions can only come from fresh eps draws.
    auto net = tinyCnn(43, /*rho_init=*/-1.0f);
    AcceleratorConfig config = tinyConfig();
    const auto program = compile(net, config);
    const auto &conv = program.ops.front();
    ASSERT_EQ(conv.kind, OpKind::ConvLowered);

    // Single-op program: just the first conv + output staging.
    QuantizedProgram single;
    single.activationFormat = program.activationFormat;
    single.weightFormat = program.weightFormat;
    single.epsFormat = program.epsFormat;
    single.ops.push_back(conv);
    ProgramOp out;
    out.kind = OpKind::Output;
    out.inSize = conv.outSize;
    out.outSize = conv.outSize;
    out.label = "output";
    single.ops.push_back(out);

    auto gen = grng::makeGenerator("rlf", 47);
    Simulator sim(single, config, gen.get());
    std::vector<float> x(single.inputDim(), 0.5f);
    const auto raw = sim.runPass(x.data());

    // Interior positions (the border sees zero padding): same patch,
    // fresh samples -> not all equal.
    const std::size_t w = conv.conv.outWidth();
    std::vector<std::int64_t> interior;
    for (std::size_t y = 1; y + 1 < conv.conv.outHeight(); ++y)
        for (std::size_t xp = 1; xp + 1 < w; ++xp)
            interior.push_back(raw[y * w + xp]); // channel 0 plane
    ASSERT_GT(interior.size(), 4u);
    const bool all_equal = std::all_of(
        interior.begin(), interior.end(),
        [&](std::int64_t v) { return v == interior.front(); });
    EXPECT_FALSE(all_equal)
        << "positions shared a weight sample (no fresh eps per position)";

    // And the eps consumption is exactly one per lane per chunk cycle
    // per position: positions * rounds * chunks * M * N.
    const int m = config.totalPes();
    const int n = config.peInputs();
    const std::size_t rounds =
        (conv.bank.outDim + m - 1) / static_cast<std::size_t>(m);
    const std::size_t chunks =
        (conv.bank.inDim + n - 1) / static_cast<std::size_t>(n);
    EXPECT_EQ(sim.stats().grnSamples,
              conv.conv.positions() * rounds * chunks *
                  static_cast<std::uint64_t>(m) * n);
}

TEST(ProgramExecution, SigmaZeroCnnIsDeterministic)
{
    // With sigma frozen out, the program is a plain quantized CNN: two
    // different GRNGs must agree exactly, and pooling on the raw grid
    // must match pooling semantics (monotone max).
    auto net = tinyCnn(53, /*rho_init=*/-40.0f);
    AcceleratorConfig config = tinyConfig();
    const auto program = compile(net, config);

    auto gen_a = grng::makeGenerator("rlf", 1);
    auto gen_b = grng::makeGenerator("ziggurat", 999);
    Simulator sim_a(program, config, gen_a.get());
    Simulator sim_b(program, config, gen_b.get());
    const auto x = randomImage(program.inputDim(), 59);
    EXPECT_EQ(sim_a.runPass(x.data()), sim_b.runPass(x.data()));
}

TEST(ProgramExecution, ConvProgramMatchesConvLayerRunner)
{
    // A one-conv program executed through the generic pipeline must
    // reproduce ConvLayerRunner (itself now a wrapper) bit for bit —
    // same lowering, same eps order.
    nn::ConvSpec spec;
    spec.inChannels = 1;
    spec.inHeight = 6;
    spec.inWidth = 6;
    spec.outChannels = 2;
    spec.kernel = 3;
    spec.pad = 1;

    AcceleratorConfig config = tinyConfig();
    Rng rng(61);
    bnn::VariationalConv2d layer(spec, rng, -2.0f);

    auto gen_a = grng::makeGenerator("rlf", 67);
    ConvLayerRunner runner(layer, config, gen_a.get(), /*relu=*/true);

    QuantizedProgram program;
    program.activationFormat = config.activationFormat();
    program.weightFormat = config.weightFormat();
    program.epsFormat = config.epsFormat();
    ProgramOp op;
    op.kind = OpKind::ConvLowered;
    op.conv = spec;
    op.inSize = spec.inputSize();
    op.outSize = spec.outputSize();
    op.relu = true;
    op.bank = quantizeConvLayer(layer, config).layers.front();
    program.ops.push_back(op);
    ProgramOp out;
    out.kind = OpKind::Output;
    out.inSize = spec.outputSize();
    out.outSize = spec.outputSize();
    out.label = "output";
    program.ops.push_back(out);

    auto gen_b = grng::makeGenerator("rlf", 67);
    Simulator sim(program, config, gen_b.get());

    const auto x = randomImage(spec.inputSize(), 71);
    EXPECT_EQ(runner.runPass(x.data()), sim.runPass(x.data()));
}

TEST(ProgramExecution, McEngineCnnThreadCountInvariance)
{
    auto net = tinyCnn(73);
    AcceleratorConfig config = tinyConfig(/*mc_samples=*/4);
    const auto program = compile(net, config);
    const auto x = randomImage(program.inputDim(), 79);

    McResult results[3];
    const std::size_t thread_counts[3] = {1, 2, 5};
    for (int i = 0; i < 3; ++i) {
        McEngineConfig mc;
        mc.threads = thread_counts[i];
        mc.seedBase = 83;
        McEngine engine(program, config, mc);
        results[i] = engine.classifyDetailed(x.data());
    }
    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(results[i].predicted, results[0].predicted);
        ASSERT_EQ(results[i].rawSamples.size(),
                  results[0].rawSamples.size());
        for (std::size_t s = 0; s < results[0].rawSamples.size(); ++s)
            EXPECT_EQ(results[i].rawSamples[s], results[0].rawSamples[s])
                << "threads=" << thread_counts[i] << " sample " << s;
        ASSERT_EQ(results[i].probs.size(), results[0].probs.size());
        for (std::size_t c = 0; c < results[0].probs.size(); ++c)
            EXPECT_EQ(results[i].probs[c], results[0].probs[c])
                << "threads=" << thread_counts[i] << " class " << c;
    }
}

TEST(ProgramExecution, PatchWiderThanMapsStillBitExact)
{
    // A kernel overhanging a small padded input makes patchSize (36)
    // exceed both the op's input (16) and output (8) windows: the
    // simulator's IFMem must still hold the staged patch, and the two
    // executors must still agree (regression for the IFMem sizing).
    nn::ConvSpec spec;
    spec.inChannels = 4;
    spec.inHeight = 2;
    spec.inWidth = 2;
    spec.outChannels = 2;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 1;
    ASSERT_TRUE(spec.valid());
    ASSERT_GT(spec.patchSize(), spec.inputSize());

    AcceleratorConfig config = tinyConfig();
    Rng rng(101);
    bnn::VariationalConv2d layer(spec, rng, -2.0f);

    QuantizedProgram program;
    program.activationFormat = config.activationFormat();
    program.weightFormat = config.weightFormat();
    program.epsFormat = config.epsFormat();
    ProgramOp op;
    op.kind = OpKind::ConvLowered;
    op.conv = spec;
    op.inSize = spec.inputSize();
    op.outSize = spec.outputSize();
    op.relu = true;
    op.bank = quantizeConvLayer(layer, config).layers.front();
    program.ops.push_back(op);
    ProgramOp out;
    out.kind = OpKind::Output;
    out.inSize = spec.outputSize();
    out.outSize = spec.outputSize();
    out.label = "output";
    program.ops.push_back(out);

    auto gen_a = grng::makeGenerator("rlf", 103);
    auto gen_b = grng::makeGenerator("rlf", 103);
    Simulator sim(program, config, gen_a.get());
    FunctionalRunner fun(program, config, gen_b.get());
    const auto x = randomImage(spec.inputSize(), 107);
    EXPECT_EQ(sim.runPass(x.data()), fun.runPass(x.data()));
}

TEST(ProgramValidation, EmptyProgramIsFatal)
{
    QuantizedProgram program;
    EXPECT_DEATH(program.inputDim(), "no ops");
    EXPECT_DEATH(program.outputDim(), "no ops");
    AcceleratorConfig config = tinyConfig();
    EXPECT_DEATH(validateProgram(program, config), "no ops");
}

TEST(ProgramValidation, EmptyQuantizedNetworkIsFatal)
{
    QuantizedNetwork network;
    EXPECT_DEATH(network.inputDim(), "no layers");
    EXPECT_DEATH(network.outputDim(), "no layers");
}

TEST(ProgramValidation, DrainConstraintAppliesToConvBanks)
{
    // The write-drain condition ranges over every compute op: a conv
    // bank whose patch is too small for the PE-set count must be
    // rejected even when the dense head is wide enough.
    auto net = tinyCnn(89);
    AcceleratorConfig config;
    config.peSets = 16; // conv1 patch 9 -> 3 chunks < 16 sets
    config.pesPerSet = 4;
    EXPECT_DEATH(compile(net, config), "drain|14a");
}

TEST(ProgramValidation, ChainMismatchIsFatal)
{
    Rng rng(97);
    bnn::BayesianMlp net({16, 8, 4}, rng);
    AcceleratorConfig config = tinyConfig();
    auto program = compile(net, config);
    program.ops[1].inSize = 9; // break the op chain
    EXPECT_DEATH(validateProgram(program, config), "chain");
}
