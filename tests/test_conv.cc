/**
 * @file
 * Tests for the convolution substrate: geometry arithmetic, im2col /
 * col2im adjointness, convolution forward against a naive reference,
 * gradient checks against numerical differentiation, max-pooling
 * semantics, and ConvNet end-to-end training.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "nn/cnn.hh"
#include "nn/conv.hh"

using namespace vibnn;
using namespace vibnn::nn;

namespace
{

/** Naive direct convolution, no im2col — the oracle. */
void
referenceConv(const ConvSpec &spec, const float *x, const Matrix &w,
              const std::vector<float> &b, float *out)
{
    const std::size_t out_h = spec.outHeight();
    const std::size_t out_w = spec.outWidth();
    for (std::size_t oc = 0; oc < spec.outChannels; ++oc) {
        for (std::size_t oy = 0; oy < out_h; ++oy) {
            for (std::size_t ox = 0; ox < out_w; ++ox) {
                double acc = b[oc];
                for (std::size_t c = 0; c < spec.inChannels; ++c) {
                    for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                        for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
                            const std::ptrdiff_t iy =
                                static_cast<std::ptrdiff_t>(
                                    oy * spec.stride + ky) -
                                static_cast<std::ptrdiff_t>(spec.pad);
                            const std::ptrdiff_t ix =
                                static_cast<std::ptrdiff_t>(
                                    ox * spec.stride + kx) -
                                static_cast<std::ptrdiff_t>(spec.pad);
                            if (iy < 0 || ix < 0 ||
                                iy >= static_cast<std::ptrdiff_t>(
                                          spec.inHeight) ||
                                ix >= static_cast<std::ptrdiff_t>(
                                          spec.inWidth))
                                continue;
                            const std::size_t widx =
                                (c * spec.kernel + ky) * spec.kernel + kx;
                            acc += w.at(oc, widx) *
                                x[(c * spec.inHeight + iy) * spec.inWidth +
                                  ix];
                        }
                    }
                }
                out[(oc * out_h + oy) * out_w + ox] =
                    static_cast<float>(acc);
            }
        }
    }
}

std::vector<float>
randomVector(std::size_t n, Rng &rng, double lo = -1.0, double hi = 1.0)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(lo, hi));
    return v;
}

} // namespace

TEST(ConvSpec, GeometryMatchesFormula)
{
    ConvSpec s;
    s.inChannels = 3;
    s.inHeight = 28;
    s.inWidth = 28;
    s.outChannels = 8;
    s.kernel = 5;
    s.stride = 1;
    s.pad = 2;
    EXPECT_EQ(s.outHeight(), 28u); // "same" padding
    EXPECT_EQ(s.outWidth(), 28u);
    EXPECT_EQ(s.patchSize(), 75u);
    EXPECT_EQ(s.outputSize(), 8u * 28 * 28);
    EXPECT_TRUE(s.valid());

    s.pad = 0;
    EXPECT_EQ(s.outHeight(), 24u);
    s.stride = 2;
    EXPECT_EQ(s.outHeight(), 12u);
}

TEST(ConvSpec, InvalidGeometriesRejected)
{
    ConvSpec s;
    s.inHeight = 4;
    s.inWidth = 4;
    s.kernel = 5;
    s.pad = 0;
    EXPECT_EQ(s.outHeight(), 0u); // kernel larger than input
    EXPECT_FALSE(s.valid());

    s.kernel = 3;
    s.stride = 0;
    EXPECT_FALSE(s.valid());

    s.stride = 1;
    s.pad = 3; // pad >= kernel admits all-zero patches
    EXPECT_FALSE(s.valid());
}

TEST(Im2col, OneByOneKernelIsChannelGather)
{
    ConvSpec s;
    s.inChannels = 2;
    s.inHeight = 3;
    s.inWidth = 3;
    s.outChannels = 1;
    s.kernel = 1;
    Rng rng(7);
    const auto x = randomVector(s.inputSize(), rng);
    Matrix patches;
    im2col(s, x.data(), patches);
    ASSERT_EQ(patches.rows(), 9u);
    ASSERT_EQ(patches.cols(), 2u);
    for (std::size_t p = 0; p < 9; ++p) {
        EXPECT_FLOAT_EQ(patches.at(p, 0), x[p]);
        EXPECT_FLOAT_EQ(patches.at(p, 1), x[9 + p]);
    }
}

TEST(Im2col, PaddingYieldsZeros)
{
    ConvSpec s;
    s.inChannels = 1;
    s.inHeight = 2;
    s.inWidth = 2;
    s.outChannels = 1;
    s.kernel = 3;
    s.pad = 1;
    const float x[4] = {1, 2, 3, 4};
    Matrix patches;
    im2col(s, x, patches);
    ASSERT_EQ(patches.rows(), 4u);
    ASSERT_EQ(patches.cols(), 9u);
    // Top-left output position: the first patch row/col hang over the
    // border, so patch entries 0..3 and 6 are padding zeros.
    EXPECT_FLOAT_EQ(patches.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(patches.at(0, 4), 1.0f); // center = x(0,0)
    EXPECT_FLOAT_EQ(patches.at(0, 5), 2.0f);
    EXPECT_FLOAT_EQ(patches.at(0, 7), 3.0f);
    EXPECT_FLOAT_EQ(patches.at(0, 8), 4.0f);
}

/** Adjointness: <im2col(x), P> == <x, col2im(P)> for all x, P — the
 *  defining property that makes the backward pass correct. */
TEST(Im2col, Col2imIsAdjoint)
{
    ConvSpec s;
    s.inChannels = 2;
    s.inHeight = 5;
    s.inWidth = 4;
    s.outChannels = 1;
    s.kernel = 3;
    s.stride = 2;
    s.pad = 1;
    ASSERT_TRUE(s.valid());

    Rng rng(11);
    const auto x = randomVector(s.inputSize(), rng);
    Matrix p(s.positions(), s.patchSize());
    for (auto &v : p.data())
        v = static_cast<float>(rng.uniform(-1, 1));

    Matrix patches;
    im2col(s, x.data(), patches);
    double lhs = 0.0;
    for (std::size_t i = 0; i < patches.size(); ++i)
        lhs += static_cast<double>(patches.data()[i]) * p.data()[i];

    std::vector<float> xt(s.inputSize(), 0.0f);
    col2imAccumulate(s, p, xt.data());
    double rhs = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        rhs += static_cast<double>(x[i]) * xt[i];

    EXPECT_NEAR(lhs, rhs, 1e-4 * std::abs(lhs) + 1e-6);
}

struct ConvCase
{
    std::size_t inC, h, w, outC, k, stride, pad;
};

class ConvForwardSweep : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvForwardSweep, MatchesNaiveReference)
{
    const auto c = GetParam();
    ConvSpec s;
    s.inChannels = c.inC;
    s.inHeight = c.h;
    s.inWidth = c.w;
    s.outChannels = c.outC;
    s.kernel = c.k;
    s.stride = c.stride;
    s.pad = c.pad;
    ASSERT_TRUE(s.valid());

    Rng rng(101 + c.k + c.stride);
    Conv2dLayer layer(s, rng);
    const auto x = randomVector(s.inputSize(), rng);

    std::vector<float> got(s.outputSize());
    ConvScratch scratch;
    layer.forward(x.data(), got.data(), scratch);

    std::vector<float> want(s.outputSize());
    referenceConv(s, x.data(), layer.weight(), layer.bias(), want.data());

    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-4f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvForwardSweep,
    ::testing::Values(ConvCase{1, 6, 6, 2, 3, 1, 0},
                      ConvCase{1, 6, 6, 2, 3, 1, 1},
                      ConvCase{2, 7, 5, 3, 3, 2, 1},
                      ConvCase{3, 8, 8, 4, 5, 1, 2},
                      ConvCase{2, 9, 9, 2, 4, 3, 0},
                      ConvCase{1, 5, 5, 1, 5, 1, 0}),
    [](const ::testing::TestParamInfo<ConvCase> &info) {
        const auto &c = info.param;
        return "c" + std::to_string(c.inC) + "x" + std::to_string(c.h) +
               "x" + std::to_string(c.w) + "k" + std::to_string(c.k) +
               "s" + std::to_string(c.stride) + "p" +
               std::to_string(c.pad);
    });

class ConvGradientSweep : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvGradientSweep, MatchesNumericalGradients)
{
    const auto c = GetParam();
    ConvSpec s;
    s.inChannels = c.inC;
    s.inHeight = c.h;
    s.inWidth = c.w;
    s.outChannels = c.outC;
    s.kernel = c.k;
    s.stride = c.stride;
    s.pad = c.pad;
    ASSERT_TRUE(s.valid());

    Rng rng(31 + c.k);
    Conv2dLayer layer(s, rng);
    const auto x = randomVector(s.inputSize(), rng);
    // Random linear functional of the output: L = sum g[i] out[i];
    // then dL/dparam decomposes through backward with dy = g.
    const auto g = randomVector(s.outputSize(), rng);

    auto loss = [&](const float *input) {
        ConvScratch scratch;
        std::vector<float> out(s.outputSize());
        layer.forward(input, out.data(), scratch);
        double l = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i)
            l += static_cast<double>(g[i]) * out[i];
        return l;
    };

    ConvScratch scratch;
    std::vector<float> out(s.outputSize());
    layer.forward(x.data(), out.data(), scratch);
    ConvGradients grads;
    grads.resize(s);
    grads.zero();
    std::vector<float> dx(s.inputSize());
    layer.backward(g.data(), scratch, grads, dx.data());

    const float h = 1e-3f;
    // Input gradient, spot-checked across the volume.
    std::vector<float> xp(x);
    for (std::size_t i = 0; i < x.size(); i += 7) {
        xp[i] = x[i] + h;
        const double up = loss(xp.data());
        xp[i] = x[i] - h;
        const double dn = loss(xp.data());
        xp[i] = x[i];
        EXPECT_NEAR(dx[i], (up - dn) / (2 * h), 2e-2f) << "dx at " << i;
    }
    // Weight gradient, spot-checked.
    for (std::size_t i = 0; i < layer.weight().size(); i += 5) {
        float &w = layer.weight().data()[i];
        const float keep = w;
        w = keep + h;
        const double up = loss(x.data());
        w = keep - h;
        const double dn = loss(x.data());
        w = keep;
        EXPECT_NEAR(grads.weight.data()[i], (up - dn) / (2 * h), 2e-2f)
            << "dw at " << i;
    }
    // Bias gradient.
    for (std::size_t i = 0; i < layer.bias().size(); ++i) {
        float &b = layer.bias()[i];
        const float keep = b;
        b = keep + h;
        const double up = loss(x.data());
        b = keep - h;
        const double dn = loss(x.data());
        b = keep;
        EXPECT_NEAR(grads.bias[i], (up - dn) / (2 * h), 2e-2f)
            << "db at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradientSweep,
    ::testing::Values(ConvCase{1, 5, 5, 2, 3, 1, 1},
                      ConvCase{2, 6, 4, 2, 3, 2, 1},
                      ConvCase{2, 5, 5, 3, 2, 1, 0}),
    [](const ::testing::TestParamInfo<ConvCase> &info) {
        const auto &c = info.param;
        return "c" + std::to_string(c.inC) + "k" + std::to_string(c.k) +
               "s" + std::to_string(c.stride) + "p" +
               std::to_string(c.pad);
    });

TEST(MaxPool, ForwardPicksWindowMaxima)
{
    PoolSpec s;
    s.channels = 1;
    s.inHeight = 4;
    s.inWidth = 4;
    s.window = 2;
    s.stride = 2;
    // clang-format off
    const float x[16] = {1, 2, 5, 6,
                         3, 4, 7, 8,
                         1, 1, 0, 0,
                         9, 1, 0, 2};
    // clang-format on
    MaxPool2dLayer pool(s);
    PoolScratch scratch;
    float out[4];
    pool.forward(x, out, scratch);
    EXPECT_FLOAT_EQ(out[0], 4.0f);
    EXPECT_FLOAT_EQ(out[1], 8.0f);
    EXPECT_FLOAT_EQ(out[2], 9.0f);
    EXPECT_FLOAT_EQ(out[3], 2.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax)
{
    PoolSpec s;
    s.channels = 1;
    s.inHeight = 4;
    s.inWidth = 4;
    s.window = 2;
    s.stride = 2;
    const float x[16] = {1, 2, 5, 6, 3, 4, 7, 8,
                         1, 1, 0, 0, 9, 1, 0, 2};
    MaxPool2dLayer pool(s);
    PoolScratch scratch;
    float out[4];
    pool.forward(x, out, scratch);

    const float dy[4] = {10, 20, 30, 40};
    float dx[16];
    pool.backward(dy, scratch, dx);
    EXPECT_FLOAT_EQ(dx[5], 10.0f);  // x=4 at (1,1)
    EXPECT_FLOAT_EQ(dx[7], 20.0f);  // x=8 at (1,3)
    EXPECT_FLOAT_EQ(dx[12], 30.0f); // x=9 at (3,0)
    EXPECT_FLOAT_EQ(dx[15], 40.0f); // x=2 at (3,3)
    float total = 0.0f;
    for (float v : dx)
        total += v;
    EXPECT_FLOAT_EQ(total, 100.0f); // nothing lost or duplicated
}

TEST(MaxPool, OverlappingWindowsAccumulateGradient)
{
    PoolSpec s;
    s.channels = 1;
    s.inHeight = 3;
    s.inWidth = 3;
    s.window = 2;
    s.stride = 1;
    // Center element dominates every window.
    const float x[9] = {0, 0, 0, 0, 5, 0, 0, 0, 0};
    MaxPool2dLayer pool(s);
    PoolScratch scratch;
    float out[4];
    pool.forward(x, out, scratch);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(out[i], 5.0f);

    const float dy[4] = {1, 1, 1, 1};
    float dx[9];
    pool.backward(dy, scratch, dx);
    EXPECT_FLOAT_EQ(dx[4], 4.0f); // all four windows route here
}

TEST(MaxPool, TieBreaksToFirstScanned)
{
    PoolSpec s;
    s.channels = 1;
    s.inHeight = 2;
    s.inWidth = 2;
    s.window = 2;
    s.stride = 2;
    const float x[4] = {3, 3, 3, 3};
    MaxPool2dLayer pool(s);
    PoolScratch scratch;
    float out[1];
    pool.forward(x, out, scratch);
    EXPECT_EQ(scratch.argmax[0], 0u);
}

TEST(MaxPool, MultiChannelPoolsIndependently)
{
    PoolSpec s;
    s.channels = 2;
    s.inHeight = 2;
    s.inWidth = 2;
    s.window = 2;
    s.stride = 2;
    const float x[8] = {1, 2, 3, 4, 8, 7, 6, 5};
    MaxPool2dLayer pool(s);
    PoolScratch scratch;
    float out[2];
    pool.forward(x, out, scratch);
    EXPECT_FLOAT_EQ(out[0], 4.0f);
    EXPECT_FLOAT_EQ(out[1], 8.0f);
}

namespace
{

/** Tiny 2-class image task: class 0 = horizontal bar, class 1 =
 *  vertical bar, plus noise. Linearly non-trivial but conv-easy. */
void
makeBarImages(std::size_t count, std::size_t side, Rng &rng,
              std::vector<float> &features, std::vector<int> &labels)
{
    features.assign(count * side * side, 0.0f);
    labels.assign(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(rng.uniformInt(2));
        labels[i] = label;
        float *img = features.data() + i * side * side;
        const std::size_t bar = rng.uniformInt(side);
        for (std::size_t j = 0; j < side; ++j) {
            if (label == 0)
                img[bar * side + j] = 1.0f;
            else
                img[j * side + bar] = 1.0f;
        }
        for (std::size_t j = 0; j < side * side; ++j)
            img[j] += static_cast<float>(rng.uniform(-0.1, 0.1));
    }
}

} // namespace

TEST(ConvNet, ParamRoundTrip)
{
    ConvNetConfig cfg;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {{4, 3, 1, 1, true, 2}};
    cfg.denseHidden = {16};
    cfg.numClasses = 3;
    Rng rng(5);
    ConvNet net(cfg, rng);

    std::vector<float> params;
    net.gatherParams(params);
    EXPECT_EQ(params.size(), net.paramCount());

    std::vector<float> mutated(params);
    for (auto &p : mutated)
        p += 0.25f;
    net.scatterParams(mutated);
    std::vector<float> back;
    net.gatherParams(back);
    for (std::size_t i = 0; i < params.size(); ++i)
        EXPECT_FLOAT_EQ(back[i], params[i] + 0.25f);
}

TEST(ConvNet, ForwardIsDeterministic)
{
    ConvNetConfig cfg;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {{4, 3, 1, 1, true, 2}};
    cfg.denseHidden = {8};
    cfg.numClasses = 2;
    Rng rng(6);
    ConvNet net(cfg, rng);

    Rng data_rng(7);
    std::vector<float> x(net.inputDim());
    for (auto &v : x)
        v = static_cast<float>(data_rng.uniform(-1, 1));

    ConvNetWorkspace ws = net.makeWorkspace();
    std::vector<float> a(net.outputDim()), b(net.outputDim());
    net.forward(x.data(), a.data(), ws);
    net.forward(x.data(), b.data(), ws);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(ConvNet, FullNetworkGradientCheck)
{
    ConvNetConfig cfg;
    cfg.imageHeight = 6;
    cfg.imageWidth = 6;
    cfg.blocks = {{2, 3, 1, 1, true, 2}};
    cfg.denseHidden = {};
    cfg.numClasses = 2;
    Rng rng(17);
    ConvNet net(cfg, rng);

    Rng data_rng(18);
    std::vector<float> x(net.inputDim());
    for (auto &v : x)
        v = static_cast<float>(data_rng.uniform(-1, 1));
    const std::size_t target = 1;

    ConvNetWorkspace ws = net.makeWorkspace();
    net.zeroGrads(ws);
    net.trainSample(x.data(), target, ws);
    std::vector<float> grads;
    net.gatherGrads(ws, grads);

    std::vector<float> params;
    net.gatherParams(params);
    ASSERT_EQ(grads.size(), params.size());

    auto loss_at = [&](const std::vector<float> &p) {
        net.scatterParams(p);
        std::vector<float> logits(net.outputDim());
        ConvNetWorkspace w2 = net.makeWorkspace();
        net.forward(x.data(), logits.data(), w2);
        // softmaxCrossEntropy clobbers logits; replicate the loss.
        float mx = logits[0];
        for (float v : logits)
            mx = std::max(mx, v);
        double denom = 0.0;
        for (float v : logits)
            denom += std::exp(static_cast<double>(v - mx));
        return -(logits[target] - mx - std::log(denom));
    };

    const float h = 1e-3f;
    std::vector<float> probe(params);
    for (std::size_t i = 0; i < params.size(); i += 11) {
        probe[i] = params[i] + h;
        const double up = loss_at(probe);
        probe[i] = params[i] - h;
        const double dn = loss_at(probe);
        probe[i] = params[i];
        EXPECT_NEAR(grads[i], (up - dn) / (2 * h), 5e-2f)
            << "param " << i;
    }
    net.scatterParams(params);
}

TEST(ConvNet, LearnsBarOrientation)
{
    Rng rng(23);
    std::vector<float> features;
    std::vector<int> labels;
    makeBarImages(160, 8, rng, features, labels);

    ConvNetConfig cfg;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {{4, 3, 1, 1, true, 2}};
    cfg.denseHidden = {16};
    cfg.numClasses = 2;
    Rng init(29);
    ConvNet net(cfg, init);

    DataView train;
    train.count = 128;
    train.dim = 64;
    train.features = features.data();
    train.labels = labels.data();
    DataView test;
    test.count = 32;
    test.dim = 64;
    test.features = features.data() + 128 * 64;
    test.labels = labels.data() + 128;

    TrainConfig tc;
    tc.epochs = 12;
    tc.batchSize = 16;
    tc.learningRate = 5e-3f;
    tc.seed = 31;
    const auto history = trainConvNet(net, train, tc);

    EXPECT_LT(history.trainLoss.back(), history.trainLoss.front());
    EXPECT_GE(evaluateAccuracy(net, test), 0.9);
}

TEST(ConvNet, LenetLikeShapesCompose)
{
    const auto cfg = ConvNetConfig::lenetLike(10);
    Rng rng(41);
    ConvNet net(cfg, rng);
    EXPECT_EQ(net.inputDim(), 784u);
    EXPECT_EQ(net.outputDim(), 10u);
    // 16 channels x 7 x 7 flatten into the first dense layer.
    EXPECT_EQ(net.denseLayers().front().inDim(), 16u * 7 * 7);
    ConvNetWorkspace ws = net.makeWorkspace();
    std::vector<float> x(net.inputDim(), 0.5f);
    std::vector<float> logits(10);
    net.forward(x.data(), logits.data(), ws);
    double sum = 0.0;
    for (float v : logits)
        sum += std::abs(v);
    EXPECT_GT(sum, 0.0);
}
