/**
 * @file
 * Chaos tests: the serving stack under injected faults. Every scenario
 * arms the deterministic fault registry (common/fault.hh) at a named
 * production injection site and asserts the documented recovery story:
 * client receive deadlines fail fast instead of hanging, retry/backoff
 * recovers losses bit-exactly (a replayed id is a safe replay — the
 * response is a pure function of (program, seed, T, images)), the
 * watchdog trips on a stuck pass and heals when it completes, brownout
 * degrades service honestly (flagged, reduced-T, still bit-exact for
 * that T), drain answers with deterministic ShuttingDown frames, and
 * weight-arena bit flips are deterministic across thread counts.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/program.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/fault.hh"
#include "common/rng.hh"
#include "serve/client.hh"
#include "serve/net/socket.hh"
#include "serve/server.hh"
#include "serve/session.hh"

using namespace vibnn;
using namespace vibnn::serve;

namespace
{

accel::AcceleratorConfig
smallConfig(int mc_samples = 8)
{
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = mc_samples;
    return config;
}

accel::QuantizedProgram
mlpProgram(const accel::AcceleratorConfig &config, std::uint64_t seed)
{
    Rng rng(seed);
    bnn::BayesianMlp net({24, 16, 4}, rng, -3.0f);
    return compile(net, config);
}

std::vector<float>
randomBatch(std::size_t count, std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(count * dim);
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform());
    return xs;
}

SessionOptions
throughputOptions()
{
    SessionOptions opts;
    opts.mode = ExecMode::Throughput;
    opts.seed = 211;
    return opts;
}

std::unique_ptr<Server>
startServer(const accel::AcceleratorConfig &config,
            ServerOptions options)
{
    auto server = std::make_unique<Server>(mlpProgram(config, 7),
                                           config, options);
    std::string error;
    EXPECT_TRUE(server->start(error)) << error;
    return server;
}

std::unique_ptr<InferenceSession>
referenceSession(const accel::AcceleratorConfig &config,
                 const SessionOptions &opts)
{
    return InferenceSession::Builder()
        .program(mlpProgram(config, 7))
        .accelerator(config)
        .options(opts)
        .build();
}

/** Recovered replies carry the exact bytes of the fault-free answer. */
void
expectBitExact(const Client::Reply &reply,
               const InferenceResult &reference)
{
    ASSERT_TRUE(reply.ok()) << reply.message;
    const auto &resp = reply.response;
    ASSERT_EQ(resp.predictions.size(), reference.predictions.size());
    EXPECT_EQ(static_cast<int>(resp.mcSamples), reference.mcSamples);
    for (std::size_t i = 0; i < resp.predictions.size(); ++i) {
        const auto &served = resp.predictions[i];
        const auto &ref = reference.predictions[i];
        EXPECT_EQ(served.predicted, ref.predicted);
        ASSERT_EQ(served.probs.size(), ref.probs.size());
        EXPECT_EQ(std::memcmp(served.probs.data(), ref.probs.data(),
                              ref.probs.size() * sizeof(float)),
                  0)
            << "probs diverged at image " << i;
        EXPECT_EQ(served.entropy, ref.entropy);
    }
}

/** Arm a spec or fail the test with the parser's complaint. */
void
arm(const std::string &spec)
{
    std::string error;
    ASSERT_TRUE(fault::armSpec(spec, error)) << error;
}

/** Chaos arms the process-global registry; never leak it. */
class Chaos : public ::testing::Test
{
  protected:
    void SetUp() override { fault::disarm(); }
    void TearDown() override { fault::disarm(); }
};

} // anonymous namespace

// --------------------------------------------------- receive deadlines

TEST_F(Chaos, ReceiveDeadlineFailsFastAgainstASilentPeer)
{
    // A listener that never accepts: connect() succeeds out of the
    // backlog, the request write lands in kernel buffers, and then
    // nothing ever answers — exactly the wedged-server shape. The old
    // blocking client hung here forever; the poll-based deadline turns
    // it into a crisp Timeout.
    std::string error;
    std::uint16_t port = 0;
    net::Socket listener = net::listenTcp("127.0.0.1", 0, error, &port);
    ASSERT_TRUE(listener.valid()) << error;

    Client client;
    client.setReceiveTimeout(100);
    ASSERT_TRUE(client.connect("127.0.0.1", port, error)) << error;

    const auto xs = randomBatch(1, 24, 1);
    const auto t0 = std::chrono::steady_clock::now();
    const auto reply = client.classify(xs.data(), 1, 24);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(reply.status, Client::Status::Timeout);
    EXPECT_FALSE(reply.message.empty());
    EXPECT_GE(elapsed, 90);
    EXPECT_LT(elapsed, 5000) << "deadline did not bound the wait";
}

TEST_F(Chaos, DelayedResponseTimesOutThenRetrySucceedsBitExact)
{
    const auto config = smallConfig(8);
    const SessionOptions session = throughputOptions();
    auto reference = referenceSession(config, session);
    const std::size_t dim = reference->inputDim();
    const auto xs = randomBatch(2, dim, 31);

    ServerOptions options;
    options.session = session;
    auto server = startServer(config, options);

    // First classify response held back 400 ms against a 100 ms
    // receive deadline: attempt 1 times out, attempt 2 reconnects and
    // gets the ordinary fast answer.
    arm("serve.response.delay:nth=1+delay=400");

    Client client;
    client.setReceiveTimeout(100);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    const auto reply = client.classify(
        xs.data(), 2, dim, Client::Options(),
        Client::RetryPolicy::attempts(3, 5));
    EXPECT_EQ(reply.attempts, 2);
    expectBitExact(reply, reference->run(InferenceRequest::borrow(
                              xs.data(), 2, dim)));

    // The retried request stamped its attempt number on the wire.
    const ServerStats stats = server->stats();
    EXPECT_GE(stats.retriesObserved, 1u);
    EXPECT_GE(stats.faultFires, 1u);
    server->stop();
}

// ----------------------------------------------- transport-loss retry

TEST_F(Chaos, TornResponseIsRetriedBitExact)
{
    const auto config = smallConfig(8);
    const SessionOptions session = throughputOptions();
    auto reference = referenceSession(config, session);
    const std::size_t dim = reference->inputDim();
    const auto xs = randomBatch(1, dim, 32);

    ServerOptions options;
    options.session = session;
    auto server = startServer(config, options);
    // Half the response frame, then the connection dies mid-message.
    arm("serve.response.torn:nth=1");

    Client client;
    client.setReceiveTimeout(2000);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    const auto reply = client.classify(
        xs.data(), 1, dim, Client::Options(),
        Client::RetryPolicy::attempts(3, 5));
    EXPECT_EQ(reply.attempts, 2);
    expectBitExact(reply, reference->run(InferenceRequest::borrow(
                              xs.data(), 1, dim)));
    server->stop();
}

TEST_F(Chaos, TornRequestWriteIsRetried)
{
    const auto config = smallConfig(8);
    const SessionOptions session = throughputOptions();
    auto reference = referenceSession(config, session);
    const std::size_t dim = reference->inputDim();
    const auto xs = randomBatch(1, dim, 33);

    ServerOptions options;
    options.session = session;
    auto server = startServer(config, options);

    Client client;
    client.setReceiveTimeout(2000);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    // The client's own request write tears: half the frame leaves,
    // writeAll reports failure, and the retry path must reconnect
    // (the server is still waiting on the dangling half-frame).
    arm("net.write.torn:nth=1");
    const auto reply = client.classify(
        xs.data(), 1, dim, Client::Options(),
        Client::RetryPolicy::attempts(3, 5));
    EXPECT_EQ(reply.attempts, 2);
    expectBitExact(reply, reference->run(InferenceRequest::borrow(
                              xs.data(), 1, dim)));
    server->stop();
}

TEST_F(Chaos, DroppedConnectionIsRetried)
{
    const auto config = smallConfig(8);
    const SessionOptions session = throughputOptions();
    auto reference = referenceSession(config, session);
    const std::size_t dim = reference->inputDim();
    const auto xs = randomBatch(1, dim, 34);

    ServerOptions options;
    options.session = session;
    auto server = startServer(config, options);

    Client client;
    client.setReceiveTimeout(2000);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    // The server hangs up right after reading the request frame.
    arm("serve.conn.drop:nth=1");
    const auto reply = client.classify(
        xs.data(), 1, dim, Client::Options(),
        Client::RetryPolicy::attempts(3, 5));
    EXPECT_EQ(reply.attempts, 2);
    expectBitExact(reply, reference->run(InferenceRequest::borrow(
                              xs.data(), 1, dim)));
    server->stop();
}

TEST_F(Chaos, RetriesExhaustIntoTheLastFailure)
{
    const auto config = smallConfig(8);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);

    Client client;
    client.setReceiveTimeout(1000);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    // Every delivery attempt gets its connection dropped.
    arm("serve.conn.drop:always");
    const auto xs = randomBatch(1, 24, 35);
    const auto reply = client.classify(
        xs.data(), 1, 24, Client::Options(),
        Client::RetryPolicy::attempts(3, 5));
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(reply.attempts, 3);
    EXPECT_FALSE(reply.message.empty());
    fault::disarm(); // let the server shut down cleanly
    server->stop();
}

// ------------------------------------------------- watchdog + brownout

TEST_F(Chaos, StuckPassTripsTheWatchdogOnceAndHealthRecovers)
{
    const auto config = smallConfig(8);
    ServerOptions options;
    options.session = throughputOptions();
    options.shards = 1;
    options.watchdogMillis = 10;
    options.wedgedAfterMillis = 50;
    auto server = startServer(config, options);

    // One pass sleeps 300 ms inside the engine — far past the 50 ms
    // wedge threshold, so the watchdog must mark the shard Wedged
    // (and count exactly one trip: the latch absorbs repeat polls).
    arm("serve.pass.stuck:nth=1+delay=300");

    Client client;
    client.setReceiveTimeout(5000);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    const auto xs = randomBatch(1, 24, 41);
    const auto reply = client.classify(xs.data(), 1, 24);
    EXPECT_TRUE(reply.ok()) << reply.message; // slow, not lost

    // The pass completed, so the next watchdog poll heals the shard.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(3);
    while (server->shardHealth(0) != ShardHealth::Healthy &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(server->shardHealth(0), ShardHealth::Healthy);

    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.watchdogTrips, 1u);
    server->stop();
}

TEST_F(Chaos, BrownoutDegradesHonestlyUnderQueuePressure)
{
    const auto config = smallConfig(8);
    SessionOptions session = throughputOptions();
    // A held request keeps the shard's only traffic in flight long
    // enough for the watchdog to see the pressure.
    session.defaultDeadlineMicros = 400'000;
    auto reference = referenceSession(config, throughputOptions());
    const std::size_t dim = reference->inputDim();

    ServerOptions options;
    options.session = session;
    options.shards = 1;
    options.queueCapacity = 4;
    options.watchdogMillis = 5;
    options.brownout = true;
    options.brownoutSamples = 2;
    options.brownoutEnterFraction = 0.25; // inflight >= 1 of 4
    options.brownoutExitFraction = 0.1;
    auto server = startServer(config, options);

    const auto xs_held = randomBatch(1, dim, 42);
    Client::Reply held_reply;
    std::thread holder([&] {
        Client c;
        c.setReceiveTimeout(5000);
        std::string error;
        ASSERT_TRUE(c.connect("127.0.0.1", server->port(), error));
        held_reply = c.classify(xs_held.data(), 1, dim);
    });

    // Wait for the watchdog to observe the held in-flight request.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(3);
    while (server->shardHealth(0) != ShardHealth::Degraded &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_EQ(server->shardHealth(0), ShardHealth::Degraded);

    // A T=8 request against the browned-out shard runs at T=2, says
    // so via the degraded flag — and is bit-exact for the T it ran.
    Client client;
    client.setReceiveTimeout(5000);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    Client::Options copts;
    copts.mcSamples = 8;
    copts.deadlineMicros = 1000; // dispatch promptly
    const auto reply = client.classify(xs_held.data(), 1, dim, copts);
    ASSERT_TRUE(reply.ok()) << reply.message;
    EXPECT_TRUE(reply.degraded());
    EXPECT_EQ(reply.response.mcSamples, 2u);
    InferenceRequest ref_request =
        InferenceRequest::borrow(xs_held.data(), 1, dim);
    ref_request.mcSamples = 2;
    expectBitExact(reply, reference->run(ref_request));

    holder.join();
    EXPECT_TRUE(held_reply.ok()) << held_reply.message;
    EXPECT_FALSE(held_reply.degraded()); // T=8 ran at full strength

    const ServerStats stats = server->stats();
    EXPECT_GE(stats.brownoutPasses, 1u);
    server->stop();
}

// ------------------------------------------------------ drain and stop

TEST_F(Chaos, DrainAnswersClassifyWithShuttingDownButStaysObservable)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    auto server = startServer(config, options);

    Client client;
    client.setReceiveTimeout(2000);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    ASSERT_TRUE(client.classify(randomBatch(1, 24, 5).data(), 1, 24)
                    .ok());

    server->beginDrain();
    const auto xs = randomBatch(1, 24, 6);
    const auto reply = client.classify(xs.data(), 1, 24);
    EXPECT_EQ(reply.status, Client::Status::ShuttingDown);
    EXPECT_FALSE(reply.message.empty());

    // Liveness and metrics stay up through the drain — operators need
    // them most while the server is going away.
    EXPECT_TRUE(client.ping(error)) << error;
    std::string json;
    ASSERT_TRUE(client.metrics(json, error)) << error;
    EXPECT_NE(json.find("\"draining\": 1"), std::string::npos) << json;
    server->stop();
}

TEST_F(Chaos, StopFlushesHeldRequestsInsteadOfWaitingOutTheirBudgets)
{
    const auto config = smallConfig(8);
    SessionOptions session = throughputOptions();
    session.defaultDeadlineMicros = 2'000'000; // 2 s hold license
    auto reference = referenceSession(config, throughputOptions());
    const std::size_t dim = reference->inputDim();

    ServerOptions options;
    options.session = session;
    options.shards = 1;
    options.queueCapacity = 8;
    auto server = startServer(config, options);

    const auto xs = randomBatch(1, dim, 43);
    Client::Reply reply;
    std::thread held([&] {
        Client c;
        c.setReceiveTimeout(5000);
        std::string error;
        ASSERT_TRUE(c.connect("127.0.0.1", server->port(), error));
        reply = c.classify(xs.data(), 1, dim);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // stop() drains: the held request's pass runs NOW and its response
    // flushes before sockets come down — well inside the 2 s budget
    // the hold was licensed for.
    const auto t0 = std::chrono::steady_clock::now();
    server->stop();
    const auto stop_millis =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(stop_millis, 1500)
        << "stop() waited out the hold budget instead of flushing";

    held.join();
    expectBitExact(reply, reference->run(InferenceRequest::borrow(
                              xs.data(), 1, dim)));
}

// -------------------------------------------------------- observability

TEST_F(Chaos, MetricsExposeResilienceCountersAndFaultSites)
{
    const auto config = smallConfig(4);
    ServerOptions options;
    options.session = throughputOptions();
    options.watchdogMillis = 10;
    auto server = startServer(config, options);
    arm("serve.response.delay:nth=1+delay=50");

    Client client;
    client.setReceiveTimeout(2000);
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port(), error));
    ASSERT_TRUE(client.classify(randomBatch(1, 24, 9).data(), 1, 24)
                    .ok());

    std::string json;
    ASSERT_TRUE(client.metrics(json, error)) << error;
    for (const char *key :
         {"\"retries_observed\"", "\"brownout_passes\"",
          "\"watchdog_trips\"", "\"fault_fires\"", "\"draining\"",
          "\"health\": \"healthy\"", "\"faults\"",
          "\"serve.response.delay\""}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "metrics JSON missing " << key << "\n"
            << json;
    }
    server->stop();
}

// ------------------------------------------------- bit-flip resilience

TEST_F(Chaos, WeightBitFlipsAreDeterministicAcrossThreadCounts)
{
    // The flip pattern is seeded from a content hash of the drawn
    // arena — and the arena is bit-identical for any intra-pass shard
    // count — so a chaos run must produce byte-identical results no
    // matter how the round was parallelized.
    const auto config = smallConfig(8);
    const auto xs = randomBatch(4, 24, 77);

    auto runWith = [&](std::size_t threads) {
        SessionOptions opts = throughputOptions();
        opts.threads = threads;
        auto session = referenceSession(config, opts);
        return session->run(
            InferenceRequest::borrow(xs.data(), 4, 24));
    };

    const auto clean = runWith(1);

    arm("accel.weights.bitflip:p=0.02");
    const auto flipped1 = runWith(1);
    const std::uint64_t fires_after_first =
        fault::fires("accel.weights.bitflip");
    EXPECT_GT(fires_after_first, 0u) << "no bits flipped at p=0.02";
    const auto flipped4 = runWith(4);

    ASSERT_EQ(flipped1.predictions.size(), flipped4.predictions.size());
    bool any_prob_changed = false;
    for (std::size_t i = 0; i < flipped1.predictions.size(); ++i) {
        const auto &a = flipped1.predictions[i];
        const auto &b = flipped4.predictions[i];
        EXPECT_EQ(a.predicted, b.predicted);
        ASSERT_EQ(a.probs.size(), b.probs.size());
        EXPECT_EQ(std::memcmp(a.probs.data(), b.probs.data(),
                              a.probs.size() * sizeof(float)),
                  0)
            << "thread count changed the faulted result at image " << i;
        if (std::memcmp(a.probs.data(),
                        clean.predictions[i].probs.data(),
                        a.probs.size() * sizeof(float)) != 0)
            any_prob_changed = true;
    }
    EXPECT_TRUE(any_prob_changed)
        << "bit flips at p=0.02 left every output untouched";
}
