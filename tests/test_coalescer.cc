/**
 * @file
 * Tests for the deadline-aware coalescing policy: the never-past-the-
 * budget invariant pinned with injected clocks (the policy is a pure
 * function of explicitly passed times), the tightest-member-rules batch
 * rule, the no-budget-means-greedy contract, and the pass-time EWMA.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "serve/coalescer.hh"

using namespace vibnn;
using namespace vibnn::serve;

// ------------------------------------------------- single-request policy

TEST(Coalescer, NoBudgetGrantsNoHold)
{
    // deadline <= 0 is the PR 4 greedy contract: dispatch immediately
    // no matter what the estimator thinks.
    EXPECT_EQ(holdAllowanceMicros(0, 0, 0), 0);
    EXPECT_EQ(holdAllowanceMicros(0, 500, 100), 0);
    EXPECT_EQ(holdAllowanceMicros(-1, 0, 0), 0);
}

TEST(Coalescer, AllowanceIsBudgetMinusWaitedMinusReserve)
{
    EXPECT_EQ(holdAllowanceMicros(1000, 0, 0), 1000);
    EXPECT_EQ(holdAllowanceMicros(1000, 300, 0), 700);
    EXPECT_EQ(holdAllowanceMicros(1000, 300, 200), 500);
    EXPECT_EQ(holdAllowanceMicros(1000, 0, 999), 1);
}

TEST(Coalescer, OverdueOrExhaustedBudgetSaturatesAtZero)
{
    // Already waited the whole budget (or more): execute now, never a
    // negative wait.
    EXPECT_EQ(holdAllowanceMicros(1000, 1000, 0), 0);
    EXPECT_EQ(holdAllowanceMicros(1000, 5000, 0), 0);
    // The reserve alone eats the remainder.
    EXPECT_EQ(holdAllowanceMicros(1000, 500, 500), 0);
    EXPECT_EQ(holdAllowanceMicros(1000, 500, 9000), 0);
    // Negative waited is clamped (clock skew defense).
    EXPECT_EQ(holdAllowanceMicros(1000, -50, 0), 1000);
}

TEST(Coalescer, NeverHeldPastBudgetUnderInjectedClock)
{
    // Sweep an injected clock through a request's life: at every
    // instant, waited + allowance + reserve <= budget. This is the
    // acceptance-criteria pin — the coalescer cannot hold a request
    // past the point where on-time completion is still expected.
    const std::int64_t budget = 10'000;
    for (std::int64_t reserve : {0, 100, 2'500, 9'999, 20'000}) {
        for (std::int64_t waited = 0; waited <= 12'000; waited += 250) {
            const std::int64_t allowance =
                holdAllowanceMicros(budget, waited, reserve);
            ASSERT_GE(allowance, 0);
            if (allowance > 0) {
                ASSERT_LE(waited + allowance + reserve, budget)
                    << "waited=" << waited << " reserve=" << reserve;
            }
        }
    }
}

TEST(Coalescer, RandomizedInvariantSweep)
{
    Rng rng(42);
    for (int i = 0; i < 10'000; ++i) {
        const auto budget =
            static_cast<std::int64_t>(rng.uniform() * 1e6) - 1000;
        const auto waited =
            static_cast<std::int64_t>(rng.uniform() * 1e6) - 1000;
        const auto reserve =
            static_cast<std::int64_t>(rng.uniform() * 1e5) - 100;
        const std::int64_t allowance =
            holdAllowanceMicros(budget, waited, reserve);
        ASSERT_GE(allowance, 0);
        if (budget <= 0)
            ASSERT_EQ(allowance, 0);
        if (allowance > 0) {
            ASSERT_LE(std::max<std::int64_t>(waited, 0) + allowance +
                          std::max<std::int64_t>(reserve, 0),
                      budget);
        }
    }
}

// ------------------------------------------------------------ batch rule

TEST(Coalescer, BatchTakesTheTightestMember)
{
    const std::int64_t deadlines[3] = {10'000, 4'000, 8'000};
    const std::int64_t waited[3] = {0, 1'000, 0};
    // Member 1 has 3000 left; with a 500 reserve its allowance (2500)
    // rules the batch.
    EXPECT_EQ(batchHoldAllowanceMicros(deadlines, waited, 3, 500),
              2'500);
}

TEST(Coalescer, AnyNoBudgetMemberForcesGreedyDispatch)
{
    // One member was promised greedy dispatch: the batch may not be
    // held on a neighbour's license.
    const std::int64_t deadlines[3] = {10'000, 0, 8'000};
    const std::int64_t waited[3] = {0, 0, 0};
    EXPECT_EQ(batchHoldAllowanceMicros(deadlines, waited, 3, 0), 0);
}

TEST(Coalescer, EmptyBatchHasNoAllowance)
{
    EXPECT_EQ(batchHoldAllowanceMicros(nullptr, nullptr, 0, 0), 0);
}

TEST(Coalescer, BatchInvariantHoldsPerMemberUnderInjectedClock)
{
    // Whatever allowance the batch gets, no individual member can be
    // pushed past its own budget.
    Rng rng(7);
    for (int trial = 0; trial < 2'000; ++trial) {
        const std::size_t n = 1 + static_cast<std::size_t>(
                                      rng.uniform() * 6);
        std::vector<std::int64_t> deadlines(n), waited(n);
        for (std::size_t i = 0; i < n; ++i) {
            deadlines[i] =
                static_cast<std::int64_t>(rng.uniform() * 50'000) -
                5'000;
            waited[i] =
                static_cast<std::int64_t>(rng.uniform() * 50'000);
        }
        const auto reserve =
            static_cast<std::int64_t>(rng.uniform() * 10'000);
        const std::int64_t allowance = batchHoldAllowanceMicros(
            deadlines.data(), waited.data(), n, reserve);
        ASSERT_GE(allowance, 0);
        if (allowance > 0) {
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_GT(deadlines[i], 0); // no-budget => no hold
                ASSERT_LE(waited[i] + allowance + reserve,
                          deadlines[i]);
            }
        }
    }
}

// --------------------------------------------------------------- EWMA

TEST(Coalescer, EstimatorIsColdUntilFirstObservation)
{
    PassTimeEstimator est;
    EXPECT_EQ(est.estimateMicros(), 0.0);
    est.observe(800.0);
    EXPECT_DOUBLE_EQ(est.estimateMicros(), 800.0);
}

TEST(Coalescer, EstimatorTracksWithEwmaWeight)
{
    PassTimeEstimator est(0.25);
    est.observe(1000.0);
    est.observe(2000.0);
    // 0.25 * 2000 + 0.75 * 1000
    EXPECT_DOUBLE_EQ(est.estimateMicros(), 1250.0);
    est.observe(2000.0);
    EXPECT_DOUBLE_EQ(est.estimateMicros(), 0.25 * 2000 + 0.75 * 1250);
}

TEST(Coalescer, EstimatorIgnoresNegativeObservations)
{
    PassTimeEstimator est;
    est.observe(500.0);
    est.observe(-1.0);
    EXPECT_DOUBLE_EQ(est.estimateMicros(), 500.0);
}

TEST(Coalescer, EstimatorConvergesToSteadyInput)
{
    PassTimeEstimator est(0.25);
    for (int i = 0; i < 100; ++i)
        est.observe(3'000.0);
    EXPECT_NEAR(est.estimateMicros(), 3'000.0, 1e-6);
}
