/**
 * @file
 * Tests for the design-space explorer: the analytic cycle model must be
 * cycle-exact against the simulator, the constraint checker must accept
 * the paper's configuration and reject the violations the paper's
 * equations describe, and the Pareto frontier must be a genuine
 * non-dominated set.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/design_space.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/rng.hh"
#include "grng/registry.hh"

using namespace vibnn;
using namespace vibnn::accel;

namespace
{

struct Geometry
{
    int peSets, pesPerSet;
    std::vector<std::size_t> layers;
};

} // namespace

class CyclePredictionSweep : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CyclePredictionSweep, AnalyticModelIsCycleExact)
{
    const auto &geo = GetParam();
    AcceleratorConfig config;
    config.peSets = geo.peSets;
    config.pesPerSet = geo.pesPerSet;
    config.bits = 8;
    config.mcSamples = 1;

    Rng rng(11);
    bnn::BayesianMlp net(geo.layers, rng);
    const auto quantized = quantizeNetwork(net, config);

    auto gen = grng::makeGenerator("rlf", 3);
    Simulator sim(quantized, config, gen.get());

    std::vector<float> x(geo.layers.front());
    Rng data(13);
    for (auto &v : x)
        v = static_cast<float>(data.uniform(0, 1));
    sim.runPass(x.data());

    EXPECT_EQ(sim.stats().totalCycles,
              predictPassCycles(geo.layers, config))
        << "T=" << geo.peSets << " S=N=" << geo.pesPerSet;

    // And it stays exact over multiple passes (no hidden state).
    sim.runPass(x.data());
    EXPECT_EQ(sim.stats().totalCycles,
              2 * predictPassCycles(geo.layers, config));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CyclePredictionSweep,
    ::testing::Values(
        Geometry{2, 4, {32, 24, 16, 6}},
        Geometry{4, 8, {64, 48, 32, 10}},
        Geometry{2, 4, {30, 22, 7}},       // ragged rounds and chunks
        Geometry{1, 8, {17, 9, 3}},        // single set
        Geometry{8, 8, {128, 100, 10}},    // multi-round output layer
        Geometry{16, 8, {784, 200, 200, 10}}), // the paper's geometry
    [](const ::testing::TestParamInfo<Geometry> &info) {
        const auto &g = info.param;
        return "t" + std::to_string(g.peSets) + "s" +
               std::to_string(g.pesPerSet) + "l" +
               std::to_string(g.layers.front()) + "x" +
               std::to_string(g.layers.size());
    });

TEST(Constraints, PaperConfigurationIsFeasible)
{
    AcceleratorConfig config; // defaults = paper: 16 x 8 x 8, B=8
    const std::vector<std::size_t> layers{784, 200, 200, 10};
    EXPECT_EQ(checkConstraints(config, layers), "");
}

TEST(Constraints, WordSizeViolationDetected)
{
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 16; // B*N*S = 8*16*16 = 2048 > 1024
    config.bits = 8;
    const std::vector<std::size_t> layers{784, 200, 10};
    const auto reason = checkConstraints(config, layers);
    EXPECT_NE(reason.find("15b"), std::string::npos) << reason;
}

TEST(Constraints, WriteDrainViolationDetected)
{
    AcceleratorConfig config;
    config.peSets = 64; // min layer in = 64 -> chunks = 8 < 64
    config.pesPerSet = 8;
    const std::vector<std::size_t> layers{784, 64, 10};
    const auto reason = checkConstraints(config, layers);
    EXPECT_NE(reason.find("14a"), std::string::npos) << reason;
}

TEST(Constraints, BitWidthRangeEnforced)
{
    AcceleratorConfig config;
    config.bits = 1;
    const std::vector<std::size_t> layers{784, 200, 10};
    EXPECT_NE(checkConstraints(config, layers), "");
    config.bits = 17;
    EXPECT_NE(checkConstraints(config, layers), "");
}

TEST(Explorer, EnumeratesAllCandidates)
{
    ExplorerOptions options;
    options.peSetChoices = {4, 16};
    options.peSizeChoices = {8};
    options.bitChoices = {4, 8};
    const std::vector<std::size_t> layers{784, 200, 200, 10};
    const auto points = exploreDesignSpace(layers, options);
    EXPECT_EQ(points.size(), 4u);
    for (const auto &p : points) {
        if (p.feasible) {
            EXPECT_GT(p.imagesPerSecond, 0.0);
            EXPECT_GT(p.imagesPerJoule, 0.0);
            EXPECT_GT(p.cyclesPerPass, 0u);
            EXPECT_GT(p.utilization, 0.0);
            EXPECT_LE(p.utilization, 1.0);
        } else {
            EXPECT_FALSE(p.reason.empty());
        }
    }
}

TEST(Explorer, PaperGeometryHasHighUtilization)
{
    ExplorerOptions options;
    options.peSetChoices = {16};
    options.peSizeChoices = {8};
    options.bitChoices = {8};
    const std::vector<std::size_t> layers{784, 200, 200, 10};
    const auto points = exploreDesignSpace(layers, options);
    ASSERT_EQ(points.size(), 1u);
    ASSERT_TRUE(points[0].feasible);
    // 784-200-200-10 on 16x8x8 keeps the array mostly busy; padding
    // waste comes from the ragged 200/128 rounds and the 10-wide
    // output layer.
    EXPECT_GT(points[0].utilization, 0.5);
}

TEST(Explorer, MoreParallelismMeansFewerCycles)
{
    const std::vector<std::size_t> layers{784, 200, 200, 10};
    AcceleratorConfig small;
    small.peSets = 4;
    small.pesPerSet = 8;
    AcceleratorConfig large;
    large.peSets = 16;
    large.pesPerSet = 8;
    EXPECT_LT(predictPassCycles(layers, large),
              predictPassCycles(layers, small));
}

TEST(Explorer, ParetoFrontierIsNonDominated)
{
    ExplorerOptions options;
    options.peSetChoices = {2, 4, 8, 16, 32};
    options.peSizeChoices = {4, 8};
    options.bitChoices = {8};
    const std::vector<std::size_t> layers{784, 200, 200, 10};
    const auto points = exploreDesignSpace(layers, options);
    const auto frontier = paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());

    // Sorted by ALMs.
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_LE(points[frontier[i - 1]].estimate.total().alms,
                  points[frontier[i]].estimate.total().alms);
    }
    // No frontier point dominated by any feasible point.
    for (std::size_t fi : frontier) {
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j == fi || !points[j].feasible)
                continue;
            const bool dominates =
                points[j].imagesPerSecond >=
                    points[fi].imagesPerSecond &&
                points[j].estimate.total().alms <=
                    points[fi].estimate.total().alms &&
                (points[j].imagesPerSecond >
                     points[fi].imagesPerSecond ||
                 points[j].estimate.total().alms <
                     points[fi].estimate.total().alms);
            EXPECT_FALSE(dominates)
                << "frontier point " << fi << " dominated by " << j;
        }
    }
    // Along the frontier, more ALMs must buy more throughput.
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GT(points[frontier[i]].imagesPerSecond,
                  points[frontier[i - 1]].imagesPerSecond);
    }
}
