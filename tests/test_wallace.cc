/**
 * @file
 * Tests for the Wallace generators: the orthogonality invariants of the
 * Hadamard transform, software pool energy conservation, the hardware
 * BNNWallace sharing/shifting behaviour, and the Wallace-NSS failure
 * modes the paper reports.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "grng/bnn_wallace.hh"
#include "grng/wallace.hh"
#include "stats/autocorr.hh"
#include "stats/moments.hh"
#include "stats/runs_test.hh"

using namespace vibnn;
using namespace vibnn::grng;

TEST(Hadamard, MatchesPaperEquations)
{
    // Equation (13): t = (x1+x2+x3+x4)/2; x' = {t-x1, t-x2, x3-t, x4-t}.
    const std::array<double, 4> x = {1.0, 2.0, 3.0, 4.0};
    const auto y = hadamardTransform4(x);
    const double t = 5.0;
    EXPECT_DOUBLE_EQ(y[0], t - 1.0);
    EXPECT_DOUBLE_EQ(y[1], t - 2.0);
    EXPECT_DOUBLE_EQ(y[2], 3.0 - t);
    EXPECT_DOUBLE_EQ(y[3], 4.0 - t);
}

TEST(Hadamard, IsOrthogonal)
{
    // H/2 is orthogonal, so the transform preserves the sum of squares
    // — the property that keeps a Gaussian pool Gaussian.
    Rng rng(5);
    for (int trial = 0; trial < 1000; ++trial) {
        std::array<double, 4> x;
        double energy = 0.0;
        for (auto &v : x) {
            v = rng.gaussian();
            energy += v * v;
        }
        const auto y = hadamardTransform4(x);
        double energy_after = 0.0;
        for (double v : y)
            energy_after += v * v;
        ASSERT_NEAR(energy, energy_after, 1e-9);
    }
}

TEST(WallaceSoftware, PoolEnergyExactlyConserved)
{
    WallaceConfig config;
    config.poolSize = 256;
    config.seed = 7;
    WallaceGrng gen(config);
    const double initial = gen.poolEnergy();
    for (int i = 0; i < 100000; ++i)
        gen.next();
    EXPECT_NEAR(gen.poolEnergy(), initial, initial * 1e-9);
}

TEST(WallaceSoftware, OutputMomentsTrackInitialPool)
{
    WallaceConfig config;
    config.poolSize = 4096;
    config.seed = 11;
    WallaceGrng gen(config);
    stats::RunningMoments m;
    for (int i = 0; i < 100000; ++i)
        m.add(gen.next());
    EXPECT_NEAR(m.mean(), 0.0, 0.05);
    EXPECT_NEAR(m.stddev(), 1.0, 0.05);
}

TEST(WallaceSoftware, NormalizedPoolGivesTightSigma)
{
    WallaceConfig raw_config;
    raw_config.poolSize = 256;
    raw_config.seed = 13;
    WallaceGrng raw(raw_config);

    auto norm_config = raw_config;
    norm_config.normalizeInitialPool = true;
    WallaceGrng normalized(norm_config);

    auto sigma_error = [](WallaceGrng &gen) {
        stats::RunningMoments m;
        for (int i = 0; i < 50000; ++i)
            m.add(gen.next());
        return std::fabs(m.stddev() - 1.0);
    };
    // The raw pool's sampling error bounds the achievable stability;
    // normalization (a free ROM-image step) removes it.
    EXPECT_LT(sigma_error(normalized), sigma_error(raw) + 1e-9);
    EXPECT_LT(sigma_error(normalized), 0.01);
}

TEST(WallaceSoftware, MultiLoopStillGaussian)
{
    WallaceConfig config;
    config.poolSize = 512;
    config.loopsPerOutput = 4;
    config.seed = 17;
    WallaceGrng gen(config);
    stats::RunningMoments m;
    for (int i = 0; i < 50000; ++i)
        m.add(gen.next());
    EXPECT_NEAR(m.mean(), 0.0, 0.07);
    EXPECT_NEAR(m.stddev(), 1.0, 0.07);
}

TEST(BnnWallace, StableMuSigma)
{
    // Table 1's headline: the sharing & shifting design holds (0, 1)
    // tightly (paper: mu error 0.0006, sigma error 0.0038).
    BnnWallaceConfig config;
    config.seed = 19;
    BnnWallaceGrng gen(config);
    stats::RunningMoments m;
    for (int i = 0; i < 131072; ++i)
        m.add(gen.next());
    EXPECT_NEAR(m.mean(), 0.0, 0.01);
    EXPECT_NEAR(m.stddev(), 1.0, 0.01);
}

TEST(BnnWallace, PoolEnergyDriftBounded)
{
    // Fixed-point truncation perturbs energy only at the LSB scale;
    // over 10^5 samples the drift must stay under 1%.
    BnnWallaceConfig config;
    config.seed = 23;
    BnnWallaceGrng gen(config);
    const double initial = gen.poolEnergy();
    std::vector<double> sink;
    for (int i = 0; i < 4000; ++i)
        gen.nextCycle(sink);
    EXPECT_NEAR(gen.poolEnergy(), initial, 0.01 * initial);
}

TEST(BnnWallace, ShiftMovesValuesAcrossUnits)
{
    // With sharing & shifting, a value written into unit u's pool came
    // from unit u-1's transform — verify by tracing one cycle.
    BnnWallaceConfig config;
    config.units = 4;
    config.poolSize = 8;
    config.seed = 29;

    BnnWallaceGrng shifted(config);
    auto no_shift_config = config;
    no_shift_config.sharingAndShifting = false;
    BnnWallaceGrng isolated(no_shift_config);

    // Same seed => identical pools and identical first-transform
    // outputs; the write-back differs by exactly a one-slot rotation.
    std::vector<double> out_a, out_b;
    shifted.nextCycle(out_a);
    isolated.nextCycle(out_b);
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i)
        ASSERT_DOUBLE_EQ(out_a[i], out_b[i]);

    // After write-back, unit 1's pool in the shifted design must hold
    // a value from unit 0's outputs, which the isolated design keeps
    // in unit 0.
    EXPECT_NE(shifted.unitPool(1), isolated.unitPool(1));
}

namespace
{

/**
 * Peak |autocorrelation| of one output port's stream over lags up to a
 * little beyond the pool-recycling period. A consumer in the
 * accelerator is wired to one port, so this is the deployment-relevant
 * randomness metric; an independent stream stays near zero while pool
 * recycling without enough mixing leaves a ~0.5 spike (each new output
 * is t - x where x is the port's own previous output).
 */
double
portPeakAutocorrelation(const BnnWallaceConfig &config,
                        std::size_t cycles = 20000)
{
    BnnWallaceGrng gen(config);
    std::vector<double> all, port;
    for (std::size_t c = 0; c < cycles; ++c)
        gen.nextCycle(all);
    const std::size_t stride = 4 * config.units;
    for (std::size_t i = 0; i < all.size(); i += stride)
        port.push_back(all[i]);
    double peak = 0.0;
    const std::size_t max_lag = 2 * config.poolSize / 4 + 8;
    for (std::size_t lag = 1; lag <= max_lag; ++lag)
        peak = std::max(peak,
                        std::fabs(stats::autocorrelation(port, lag)));
    return peak;
}

} // anonymous namespace

TEST(BnnWallace, NssPortStreamFailsRandomness)
{
    // Figure 15's conclusion for the naive hardware port: without
    // sharing & shifting each output port recombines its own previous
    // output every pool pass, leaving a ~0.5 anti-correlation at the
    // recycling lag — a hard randomness failure.
    BnnWallaceConfig config;
    config.sharingAndShifting = false;
    config.seed = 31;
    EXPECT_GT(portPeakAutocorrelation(config), 0.35);
}

TEST(BnnWallace, FixedShiftStillFailsRandomness)
{
    // The literal shift-by-one keeps the system linear time-invariant;
    // the spike merely moves to a neighbouring lag. This is the
    // ablation that motivates the variable (LFSR-selected) shift.
    BnnWallaceConfig config;
    config.variableShift = false;
    config.seed = 31;
    EXPECT_GT(portPeakAutocorrelation(config), 0.35);
}

TEST(BnnWallace, VariableShiftPassesRandomness)
{
    BnnWallaceConfig config;
    config.seed = 31;
    EXPECT_LT(portPeakAutocorrelation(config), 0.1);
}

TEST(BnnWallace, LargerPoolsPassRunsTests)
{
    BnnWallaceConfig config;
    config.poolSize = 1024;
    config.seed = 41;
    BnnWallaceGrng gen(config);
    const double rate = stats::runsTestPassRate(
        [&gen](std::vector<double> &buf) {
            for (auto &x : buf)
                x = gen.next();
        },
        5000, 30);
    EXPECT_GT(rate, 0.7);
}

TEST(BnnWallace, RejectsBadPoolSize)
{
    BnnWallaceConfig config;
    config.poolSize = 10; // not a multiple of 4
    EXPECT_DEATH(BnnWallaceGrng{config}, "multiple of 4");
}

TEST(BnnWallace, SaturationIsHarmless)
{
    // Extremely coarse format: outputs stay representable and finite.
    BnnWallaceConfig config;
    config.format = fixed::FixedPointFormat(8, 4);
    config.seed = 47;
    BnnWallaceGrng gen(config);
    for (int i = 0; i < 10000; ++i) {
        const double x = gen.next();
        ASSERT_GE(x, config.format.realMin());
        ASSERT_LE(x, config.format.realMax());
    }
}
