/**
 * @file
 * Tests for the accelerator: quantization, datapath kernel arithmetic,
 * RAM port budgets, cycle accounting, the constraint system of
 * equations (14)/(15), and — the load-bearing one — bit-exact
 * equivalence between the cycle-level simulator and the fast
 * functional path across geometries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/config.hh"
#include "accel/functional.hh"
#include "accel/ram.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_mlp.hh"
#include "grng/registry.hh"

using namespace vibnn;
using namespace vibnn::accel;

namespace
{

bnn::BayesianMlp
makeNet(const std::vector<std::size_t> &sizes, std::uint64_t seed)
{
    Rng rng(seed);
    return bnn::BayesianMlp(sizes, rng);
}

} // anonymous namespace

TEST(Config, FormatDerivation)
{
    AcceleratorConfig config;
    config.bits = 8;
    EXPECT_EQ(config.activationFormat().name(), "Q8.4");
    EXPECT_EQ(config.weightFormat().name(), "Q8.6");
    EXPECT_EQ(config.epsFormat().name(), "Q8.5");
    config.bits = 4;
    EXPECT_EQ(config.activationFormat().name(), "Q4.1");
    EXPECT_EQ(config.weightFormat().name(), "Q4.2");
}

TEST(Config, ValidateAcceptsPaperGeometry)
{
    AcceleratorConfig config; // 16 x 8 x 8, B = 8
    config.validate({784, 200, 200, 10});
}

TEST(Config, ValidateRejectsOversizedWord)
{
    AcceleratorConfig config;
    config.bits = 16;
    config.pesPerSet = 16; // word = 16*16*16 = 4096 > MaxWS
    EXPECT_DEATH(config.validate({784, 200, 10}), "15b|fatal|MaxWS");
}

TEST(Config, ValidateRejectsUndrainableWrites)
{
    AcceleratorConfig config;
    config.peSets = 16;
    config.pesPerSet = 8;
    // Min layer input 64 -> 8 chunks < 16 sets.
    EXPECT_DEATH(config.validate({64, 64, 10}), "drain|14a");
}

TEST(Quantization, ShapesAndRanges)
{
    auto net = makeNet({6, 5, 3}, 3);
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 4;
    const auto q = quantizeNetwork(net, config);
    ASSERT_EQ(q.layers.size(), 2u);
    EXPECT_EQ(q.layers[0].inDim, 6u);
    EXPECT_EQ(q.layers[0].outDim, 5u);
    EXPECT_EQ(q.layers[0].muWeight.size(), 30u);
    for (auto v : q.layers[0].muWeight) {
        EXPECT_GE(v, q.weightFormat.rawMin());
        EXPECT_LE(v, q.weightFormat.rawMax());
    }
    // Sigma is non-negative by construction (softplus).
    for (auto v : q.layers[0].sigmaWeight)
        EXPECT_GE(v, 0);
    EXPECT_EQ(q.layerSizes(), (std::vector<std::size_t>{6, 5, 3}));
}

TEST(DatapathKernel, SampleWeightMath)
{
    auto net = makeNet({4, 2}, 5);
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 1;
    const auto q = quantizeNetwork(net, config);
    DatapathKernel kernel(q);

    // mu = 1.0 (raw 64 in Q8.6), sigma = 0.5 (raw 32), eps = 1.0
    // (raw 32 in Q8.5): w = 1.0 + 0.5 = 1.5 -> raw 96.
    EXPECT_EQ(kernel.sampleWeight(64, 32, 32), 96);
    // eps = -1.0: w = 0.5 -> raw 32.
    EXPECT_EQ(kernel.sampleWeight(64, 32, -32), 32);
    // Saturation: mu at rail stays at rail with positive eps.
    EXPECT_EQ(kernel.sampleWeight(127, 64, 127),
              kernel.weight.rawMax());
}

TEST(DatapathKernel, FinishNeuronReluAndRequant)
{
    auto net = makeNet({4, 2}, 7);
    AcceleratorConfig config;
    const auto q = quantizeNetwork(net, config);
    DatapathKernel kernel(q);

    // Accumulator carries frac = 6 + 4 = 10 bits. acc = 1.0 -> 1024.
    // bias = 0.5 (raw 32 in Q8.6) -> aligned 512. Sum = 1536 -> 1.5.
    // Requant to Q8.4: 1536 >> 6 = 24 (= 1.5 * 16).
    EXPECT_EQ(kernel.finishNeuron(1024, 32), 24);
    // Negative pre-activation clamps to zero in hidden layers...
    EXPECT_EQ(kernel.finishNeuron(-2048, 0), 0);
    // ...but passes through (floored) in the output layer.
    EXPECT_EQ(kernel.finishOutputNeuron(-2048, 0), -32);
}

TEST(DualPortRam, PortBudgetEnforced)
{
    DualPortRam ram("test", 4, 2);
    ram.beginCycle();
    ram.read(0);
    EXPECT_DEATH(ram.read(1), "oversubscribed");
}

TEST(DualPortRam, WritePortSeparateFromRead)
{
    DualPortRam ram("test", 4, 2);
    ram.beginCycle();
    ram.read(0);
    ram.write(1, {5, 6}); // 1R + 1W is legal
    ram.beginCycle();
    ram.write(2, {7, 8});
    EXPECT_DEATH(ram.write(3, {9, 10}), "oversubscribed");
}

TEST(DualPortRam, DataRoundTrip)
{
    DualPortRam ram("test", 4, 3);
    ram.beginCycle();
    ram.write(2, {1, 2, 3});
    ram.beginCycle();
    EXPECT_EQ(ram.read(2), (RamWord{1, 2, 3}));
    EXPECT_EQ(ram.totalReads(), 1u);
    EXPECT_EQ(ram.totalWrites(), 1u);
}

/** Simulator == functional path, bit for bit, across geometries. */
struct GeometryCase
{
    std::vector<std::size_t> layers;
    int pe_sets;
    int pes_per_set;
    int bits;
};

class SimFunctionalEquivalence
    : public ::testing::TestWithParam<GeometryCase>
{
};

TEST_P(SimFunctionalEquivalence, BitExact)
{
    const auto &param = GetParam();
    auto net = makeNet(param.layers, 11);
    AcceleratorConfig config;
    config.peSets = param.pe_sets;
    config.pesPerSet = param.pes_per_set;
    config.bits = param.bits;
    const auto q = quantizeNetwork(net, config);

    auto gen_a = grng::makeGenerator("rlf", 99);
    auto gen_b = grng::makeGenerator("rlf", 99);
    Simulator sim(q, config, gen_a.get());
    FunctionalRunner fun(q, config, gen_b.get());

    Rng input_rng(13);
    std::vector<float> x(param.layers.front());
    for (int image = 0; image < 4; ++image) {
        for (auto &v : x)
            v = static_cast<float>(input_rng.uniform(0.0, 1.0));
        const auto a = sim.runPass(x.data());
        const auto b = fun.runPass(x.data());
        ASSERT_EQ(a, b) << "image " << image;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SimFunctionalEquivalence,
    ::testing::Values(
        GeometryCase{{32, 16, 4}, 2, 4, 8},
        GeometryCase{{64, 24, 8}, 2, 8, 8},
        GeometryCase{{100, 40, 10}, 4, 4, 8},
        GeometryCase{{48, 20, 6}, 1, 8, 6},
        GeometryCase{{80, 32, 10}, 2, 8, 10}));

TEST(Simulator, BnnWallaceGrngAlsoBitExact)
{
    auto net = makeNet({40, 16, 4}, 17);
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    const auto q = quantizeNetwork(net, config);

    auto gen_a = grng::makeGenerator("bnnwallace", 7);
    auto gen_b = grng::makeGenerator("bnnwallace", 7);
    Simulator sim(q, config, gen_a.get());
    FunctionalRunner fun(q, config, gen_b.get());

    std::vector<float> x(40, 0.25f);
    EXPECT_EQ(sim.runPass(x.data()), fun.runPass(x.data()));
}

TEST(Simulator, CycleCountMatchesAnalyticModel)
{
    auto net = makeNet({784, 200, 200, 10}, 19);
    AcceleratorConfig config; // paper geometry
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 3);
    Simulator sim(q, config, gen.get());
    std::vector<float> x(784, 0.5f);
    sim.runPass(x.data());

    // Analytic: per layer, rounds*(chunks + 5-cycle drain), plus tail
    // writes for the live sets of the final round, plus 2 sync.
    // L1: 2*(98+5) + 9 + 2 = 217 (round 1 covers neurons 128..199 ->
    //     9 live sets); L2: 2*(25+5) + 9 + 2 = 71; L3: 1*(25+5) + 2 +
    //     2 = 34 (10 outputs -> 2 live sets).
    const auto &stats = sim.stats();
    EXPECT_EQ(stats.opCycles[0], 217u);
    EXPECT_EQ(stats.opCycles[1], 71u);
    EXPECT_EQ(stats.opCycles[2], 34u);
    EXPECT_EQ(stats.totalCycles, 322u);
}

TEST(Simulator, GrnConsumptionMatchesLanes)
{
    auto net = makeNet({32, 16, 4}, 23);
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 3);
    Simulator sim(q, config, gen.get());
    std::vector<float> x(32, 0.1f);
    sim.runPass(x.data());

    // Every chunk cycle consumes M*N eps: layer1 2 rounds * 8 chunks,
    // layer2 1 round * 4 chunks -> 20 chunk cycles * 32 lanes.
    EXPECT_EQ(sim.stats().grnSamples, 20u * 32u);
}

TEST(Simulator, UtilizationInUnitRange)
{
    auto net = makeNet({784, 200, 200, 10}, 29);
    AcceleratorConfig config;
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 5);
    Simulator sim(q, config, gen.get());
    std::vector<float> x(784, 0.3f);
    sim.runPass(x.data());
    const double util = sim.stats().utilization(config.totalPes(),
                                                config.peInputs());
    EXPECT_GT(util, 0.5);
    EXPECT_LE(util, 1.0);
}

TEST(Simulator, ZeroSigmaIsDeterministic)
{
    // With sigma = 0 everywhere the accelerator must be a plain
    // quantized MLP: two different GRNGs give identical outputs.
    auto net = makeNet({16, 8, 3}, 31);
    for (auto &layer : net.layers()) {
        for (auto &rho : layer.rhoWeight().data())
            rho = -40.0f; // sigma ~ 0, quantizes to raw 0
        for (auto &rho : layer.rhoBias())
            rho = -40.0f;
    }
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 4;
    const auto q = quantizeNetwork(net, config);

    auto gen_a = grng::makeGenerator("rlf", 1);
    auto gen_b = grng::makeGenerator("ziggurat", 999);
    Simulator sim_a(q, config, gen_a.get());
    Simulator sim_b(q, config, gen_b.get());
    std::vector<float> x(16, 0.5f);
    EXPECT_EQ(sim_a.runPass(x.data()), sim_b.runPass(x.data()));
}

TEST(Simulator, TinyNetworkHandComputed)
{
    // 2-input, 1-output network with sigma=0: y = relu-free output of
    // w.x + b on the fixed-point grid, checked by hand.
    Rng rng(37);
    bnn::BayesianMlp net({2, 1}, rng);
    net.layers()[0].muWeight().at(0, 0) = 0.5f;
    net.layers()[0].muWeight().at(0, 1) = -0.25f;
    net.layers()[0].muBias()[0] = 0.125f;
    for (auto &rho : net.layers()[0].rhoWeight().data())
        rho = -40.0f;
    net.layers()[0].rhoBias()[0] = -40.0f;

    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 1;
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 1);
    FunctionalRunner fun(q, config, gen.get());

    // x = (1.0, 0.5): y = 0.5 - 0.125 + 0.125 = 0.5 -> Q8.4 raw 8.
    const float x[2] = {1.0f, 0.5f};
    const auto out = fun.runPass(x);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 8);
}

TEST(Simulator, ClassifyAveragesMcSamples)
{
    auto net = makeNet({16, 12, 3}, 41);
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 4;
    config.mcSamples = 4;
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 9);
    Simulator sim(q, config, gen.get());
    std::vector<float> x(16, 0.4f);
    std::vector<float> probs(3);
    const std::size_t cls = sim.classify(x.data(), probs.data());
    EXPECT_LT(cls, 3u);
    float total = 0;
    for (float p : probs)
        total += p;
    EXPECT_NEAR(total, 1.0f, 1e-5f);
    EXPECT_EQ(sim.stats().images, 4u); // one pass per MC sample
}

TEST(Functional, QuantizedTracksFloatWhenSigmaSmall)
{
    // An 8-bit quantized mean-path must stay close to the float mean
    // forward for in-range activations.
    auto net = makeNet({24, 12, 4}, 43);
    for (auto &layer : net.layers()) {
        for (auto &rho : layer.rhoWeight().data())
            rho = -40.0f;
        for (auto &rho : layer.rhoBias())
            rho = -40.0f;
    }
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 4;
    const auto q = quantizeNetwork(net, config);
    auto gen = grng::makeGenerator("rlf", 3);
    FunctionalRunner fun(q, config, gen.get());

    Rng input_rng(47);
    std::vector<float> x(24);
    for (auto &v : x)
        v = static_cast<float>(input_rng.uniform(0.0, 1.0));
    std::vector<float> float_logits(4);
    net.meanForward(x.data(), float_logits.data());
    const auto raw = fun.runPass(x.data());
    for (std::size_t i = 0; i < 4; ++i) {
        const double hw = q.activationFormat.toReal(raw[i]);
        EXPECT_NEAR(hw, float_logits[i], 0.5) << "logit " << i;
    }
}
