/**
 * @file
 * Tests for the dataset substrates: synthetic MNIST rendering, tabular
 * generators matched to the Table 7 specs, and the split/fraction/
 * standardization utilities behind the small-data study.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.hh"
#include "data/synth_mnist.hh"
#include "data/tabular.hh"

using namespace vibnn;
using namespace vibnn::data;

TEST(SynthMnist, ShapesAndRanges)
{
    SynthMnistConfig config;
    config.trainCount = 100;
    config.testCount = 40;
    config.seed = 3;
    const auto ds = makeSynthMnist(config);
    EXPECT_EQ(ds.train.count(), 100u);
    EXPECT_EQ(ds.test.count(), 40u);
    EXPECT_EQ(ds.train.dim, 784u);
    EXPECT_EQ(ds.train.numClasses, 10);
    for (float v : ds.train.features) {
        ASSERT_GE(v, 0.0f);
        ASSERT_LE(v, 1.0f);
    }
}

TEST(SynthMnist, DeterministicGivenSeed)
{
    SynthMnistConfig config;
    config.trainCount = 20;
    config.testCount = 10;
    config.seed = 11;
    const auto a = makeSynthMnist(config);
    const auto b = makeSynthMnist(config);
    EXPECT_EQ(a.train.features, b.train.features);
    EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(SynthMnist, ClassesBalanced)
{
    SynthMnistConfig config;
    config.trainCount = 500;
    config.testCount = 10;
    config.seed = 7;
    const auto ds = makeSynthMnist(config);
    const auto hist = classHistogram(ds.train);
    for (std::size_t c = 0; c < 10; ++c)
        EXPECT_EQ(hist[c], 50u);
}

TEST(SynthMnist, SamplesVaryWithinClass)
{
    SynthMnistConfig config;
    Rng rng(5);
    float a[784], b[784];
    renderDigit(3, config, rng, a);
    renderDigit(3, config, rng, b);
    double diff = 0.0;
    for (int i = 0; i < 784; ++i)
        diff += std::fabs(a[i] - b[i]);
    EXPECT_GT(diff, 1.0); // genuinely distinct renderings
}

TEST(SynthMnist, DigitsHaveInk)
{
    SynthMnistConfig config;
    config.pixelNoise = 0.0;
    Rng rng(9);
    for (int digit = 0; digit < 10; ++digit) {
        float img[784];
        renderDigit(digit, config, rng, img);
        double ink = 0.0;
        for (float v : img)
            ink += v;
        EXPECT_GT(ink, 15.0) << "digit " << digit;
        EXPECT_LT(ink, 400.0) << "digit " << digit;
    }
}

TEST(SynthMnist, DigitsAreDistinguishable)
{
    // Mean images of different classes must differ substantially —
    // the task must be learnable.
    SynthMnistConfig config;
    config.pixelNoise = 0.02;
    Rng rng(13);
    std::vector<std::vector<double>> means(10,
                                           std::vector<double>(784, 0));
    const int per_class = 20;
    for (int digit = 0; digit < 10; ++digit) {
        float img[784];
        for (int i = 0; i < per_class; ++i) {
            renderDigit(digit, config, rng, img);
            for (int p = 0; p < 784; ++p)
                means[digit][p] += img[p] / per_class;
        }
    }
    for (int a = 0; a < 10; ++a) {
        for (int b = a + 1; b < 10; ++b) {
            double l1 = 0.0;
            for (int p = 0; p < 784; ++p)
                l1 += std::fabs(means[a][p] - means[b][p]);
            EXPECT_GT(l1, 8.0) << "digits " << a << " vs " << b;
        }
    }
}

TEST(SynthMnist, AsciiRendering)
{
    SynthMnistConfig config;
    Rng rng(17);
    float img[784];
    renderDigit(0, config, rng, img);
    const std::string art = asciiDigit(img);
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 28);
    EXPECT_NE(art.find('@'), std::string::npos); // some full-intensity ink
}

TEST(StratifiedFraction, KeepsPerClassShare)
{
    LabeledData full;
    full.dim = 1;
    full.numClasses = 2;
    for (int i = 0; i < 100; ++i) {
        const float x = static_cast<float>(i);
        full.push(&x, i < 80 ? 0 : 1); // 80/20 imbalance
    }
    Rng rng(19);
    const auto subset = stratifiedFraction(full, 0.25, rng);
    const auto hist = classHistogram(subset);
    EXPECT_EQ(hist[0], 20u);
    EXPECT_EQ(hist[1], 5u);
}

TEST(StratifiedFraction, FullFractionKeepsAll)
{
    LabeledData full;
    full.dim = 1;
    full.numClasses = 3;
    for (int i = 0; i < 30; ++i) {
        const float x = 0;
        full.push(&x, i % 3);
    }
    Rng rng(23);
    EXPECT_EQ(stratifiedFraction(full, 1.0, rng).count(), 30u);
}

TEST(Standardize, ZeroMeanUnitVariance)
{
    LabeledData block;
    block.dim = 2;
    block.numClasses = 2;
    Rng rng(29);
    for (int i = 0; i < 500; ++i) {
        const float x[2] = {
            static_cast<float>(rng.gaussian(5.0, 3.0)),
            static_cast<float>(rng.gaussian(-2.0, 0.5)),
        };
        block.push(x, i % 2);
    }
    standardize(block, {&block});
    double mean0 = 0, var0 = 0;
    for (std::size_t i = 0; i < block.count(); ++i)
        mean0 += block.sample(i)[0];
    mean0 /= block.count();
    for (std::size_t i = 0; i < block.count(); ++i) {
        const double d = block.sample(i)[0] - mean0;
        var0 += d * d;
    }
    var0 /= (block.count() - 1);
    EXPECT_NEAR(mean0, 0.0, 1e-4);
    EXPECT_NEAR(var0, 1.0, 1e-3);
}

TEST(Tabular, SpecShapesMatchPaperDatasets)
{
    const auto specs = table7Specs(31);
    ASSERT_EQ(specs.size(), 9u);
    EXPECT_EQ(specs[0].features, 26u); // Parkinson
    EXPECT_EQ(specs[2].features, 19u); // Retinopathy
    EXPECT_EQ(specs[3].features, 16u); // Thoracic
    EXPECT_EQ(specs[4].features, 100u); // Tox21
    // Modified Parkinson is the small-train scenario.
    EXPECT_LT(specs[0].trainCount, specs[1].trainCount);
}

TEST(Tabular, GeneratedImbalanceTracksWeights)
{
    auto spec = thoracicSpec(37);
    spec.trainCount = 4000;
    const auto ds = makeTabular(spec);
    const auto hist = classHistogram(ds.train);
    const double share =
        static_cast<double>(hist[1]) / ds.train.count();
    EXPECT_NEAR(share, 0.15, 0.04);
}

TEST(Tabular, Deterministic)
{
    const auto a = makeTabular(retinopathySpec(41));
    const auto b = makeTabular(retinopathySpec(41));
    EXPECT_EQ(a.train.features, b.train.features);
    EXPECT_EQ(a.test.labels, b.test.labels);
}

TEST(Tabular, DifferentTasksDiffer)
{
    const auto a = makeTabular(tox21Spec("NR.AhR", 43));
    const auto b = makeTabular(tox21Spec("SR.P53", 43));
    EXPECT_NE(a.train.features, b.train.features);
}

TEST(Tabular, StandardizedFeatures)
{
    const auto ds = makeTabular(retinopathySpec(47));
    double mean = 0.0;
    for (std::size_t i = 0; i < ds.train.count(); ++i)
        mean += ds.train.sample(i)[0];
    mean /= ds.train.count();
    EXPECT_NEAR(mean, 0.0, 0.05);
}

TEST(DataView, BorrowsCorrectly)
{
    LabeledData block;
    block.dim = 2;
    block.numClasses = 2;
    const float x[2] = {1.0f, 2.0f};
    block.push(x, 1);
    const auto view = block.view();
    EXPECT_EQ(view.count, 1u);
    EXPECT_EQ(view.dim, 2u);
    EXPECT_FLOAT_EQ(view.sample(0)[1], 2.0f);
    EXPECT_EQ(view.labels[0], 1);
}
