/**
 * @file
 * Tests for the VibnnSystem facade: the full train -> quantize ->
 * simulate -> estimate flow a downstream user runs.
 */

#include <gtest/gtest.h>

#include "core/vibnn.hh"
#include "data/tabular.hh"

using namespace vibnn;
using namespace vibnn::core;

namespace
{

data::Dataset
smallDataset()
{
    auto spec = data::retinopathySpec(4242);
    spec.trainCount = 220;
    spec.testCount = 120;
    return data::makeTabular(spec);
}

VibnnSystem
smallSystem(const data::Dataset &ds, const std::string &grng = "rlf")
{
    bnn::BnnTrainConfig tc;
    tc.epochs = 18;
    tc.seed = 5;
    accel::AcceleratorConfig ac;
    ac.peSets = 2;
    ac.pesPerSet = 8;
    ac.mcSamples = 8;
    return VibnnSystem::train(ds, {24, 24}, tc, ac, grng);
}

} // anonymous namespace

TEST(VibnnSystem, TrainedSystemBeatsChance)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    const double sw = sys.softwareAccuracy(ds.test.view(), 8, 11);
    EXPECT_GT(sw, 0.55);
}

TEST(VibnnSystem, HardwareTracksSoftware)
{
    // Table 6/7's claim: the 8-bit hardware path loses very little
    // accuracy relative to the float software BNN.
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    const double sw = sys.softwareAccuracy(ds.test.view(), 8, 11);
    const double hw = sys.hardwareAccuracy(ds.test.view());
    EXPECT_GT(hw, sw - 0.08);
}

TEST(VibnnSystem, BothGrngsWork)
{
    const auto ds = smallDataset();
    for (const std::string grng : {"rlf", "bnnwallace"}) {
        const auto sys = smallSystem(ds, grng);
        const double hw = sys.hardwareAccuracy(ds.test.view());
        EXPECT_GT(hw, 0.5) << grng;
    }
}

TEST(VibnnSystem, TimingSimulation)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    const auto stats = sys.simulateTiming(ds.test.view(), 3);
    EXPECT_EQ(stats.images, 3u);
    EXPECT_GT(stats.totalCycles, 0u);
    EXPECT_GT(stats.cyclesPerPass(), 0.0);
}

TEST(VibnnSystem, SimulatorAndFunctionalAgree)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    auto sim = sys.makeSimulator();
    auto fun = sys.makeFunctionalRunner();
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(sim->runPass(ds.test.sample(i)),
                  fun->runPass(ds.test.sample(i)));
    }
}

TEST(VibnnSystem, ResourceEstimateIsPopulated)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    const auto estimate = sys.resourceEstimate();
    EXPECT_GT(estimate.total().alms, 0.0);
    EXPECT_GT(estimate.fmaxMhz, 0.0);
    EXPECT_GT(estimate.powerMw, 0.0);

    const auto perf = sys.performance(300.0);
    EXPECT_GT(perf.imagesPerSecond, 0.0);
    EXPECT_GT(perf.imagesPerJoule, 0.0);
}

TEST(VibnnSystem, QuantizedImageMatchesConfig)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    EXPECT_EQ(sys.quantized().layers.size(), 3u);
    EXPECT_EQ(sys.quantized().activationFormat.totalBits(),
              sys.config().bits);
}
