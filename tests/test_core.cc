/**
 * @file
 * Tests for the VibnnSystem facade: the full train -> quantize ->
 * simulate -> estimate flow a downstream user runs.
 */

#include <gtest/gtest.h>

#include "core/vibnn.hh"
#include "data/tabular.hh"

using namespace vibnn;
using namespace vibnn::core;

namespace
{

data::Dataset
smallDataset()
{
    auto spec = data::retinopathySpec(4242);
    spec.trainCount = 220;
    spec.testCount = 120;
    return data::makeTabular(spec);
}

VibnnSystem
smallSystem(const data::Dataset &ds, const std::string &grng = "rlf")
{
    bnn::BnnTrainConfig tc;
    tc.epochs = 18;
    tc.seed = 5;
    accel::AcceleratorConfig ac;
    ac.peSets = 2;
    ac.pesPerSet = 8;
    ac.mcSamples = 8;
    return VibnnSystem::train(ds, {24, 24}, tc, ac, grng);
}

} // anonymous namespace

TEST(VibnnSystem, TrainedSystemBeatsChance)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    const double sw = sys.softwareAccuracy(ds.test.view(), 8, 11);
    EXPECT_GT(sw, 0.55);
}

TEST(VibnnSystem, HardwareTracksSoftware)
{
    // Table 6/7's claim: the 8-bit hardware path loses very little
    // accuracy relative to the float software BNN.
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    const double sw = sys.softwareAccuracy(ds.test.view(), 8, 11);
    const double hw = sys.hardwareAccuracy(ds.test.view());
    EXPECT_GT(hw, sw - 0.08);
}

TEST(VibnnSystem, BothGrngsWork)
{
    const auto ds = smallDataset();
    for (const std::string grng : {"rlf", "bnnwallace"}) {
        const auto sys = smallSystem(ds, grng);
        const double hw = sys.hardwareAccuracy(ds.test.view());
        EXPECT_GT(hw, 0.5) << grng;
    }
}

TEST(VibnnSystem, TimingSimulation)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    const auto stats = sys.simulateTiming(ds.test.view(), 3);
    EXPECT_EQ(stats.images, 3u);
    EXPECT_GT(stats.totalCycles, 0u);
    EXPECT_GT(stats.cyclesPerPass(), 0.0);
}

TEST(VibnnSystem, SimulatorAndFunctionalAgree)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    auto sim = sys.makeSimulator();
    auto fun = sys.makeFunctionalRunner();
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(sim->runPass(ds.test.sample(i)),
                  fun->runPass(ds.test.sample(i)));
    }
}

TEST(VibnnSystem, ResourceEstimateIsPopulated)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    const auto estimate = sys.resourceEstimate();
    EXPECT_GT(estimate.total().alms, 0.0);
    EXPECT_GT(estimate.fmaxMhz, 0.0);
    EXPECT_GT(estimate.powerMw, 0.0);

    const auto perf = sys.performance(300.0);
    EXPECT_GT(perf.imagesPerSecond, 0.0);
    EXPECT_GT(perf.imagesPerJoule, 0.0);
}

TEST(VibnnSystem, QuantizedImageMatchesConfig)
{
    const auto ds = smallDataset();
    const auto sys = smallSystem(ds);
    EXPECT_EQ(sys.quantized().layers.size(), 3u);
    EXPECT_EQ(sys.quantized().activationFormat.totalBits(),
              sys.config().bits);
    // The compiled program carries the same dense chain plus the
    // output staging op.
    EXPECT_EQ(sys.program().ops.size(), 4u);
}

TEST(VibnnSystem, ClassifyBatchMatchesFunctionalSerial)
{
    // classifyBatch rides McEngine, whose per-unit streams differ from
    // the functional runner's single stream — but with sigma frozen
    // out both reduce to the same deterministic quantized network, so
    // predictions and probabilities must agree exactly, for any
    // thread count.
    const auto ds = smallDataset();
    auto sys = smallSystem(ds);
    for (auto &layer : sys.network().layers()) {
        for (auto &rho : layer.rhoWeight().data())
            rho = -40.0f;
        for (auto &rho : layer.rhoBias())
            rho = -40.0f;
    }
    const core::VibnnSystem frozen(sys.network(), sys.config(),
                                   sys.grngId());

    const std::size_t count = 6;
    nn::DataView few = ds.test.view();
    few.count = count;

    auto runner = frozen.makeFunctionalRunner();
    std::vector<std::size_t> serial(count);
    for (std::size_t i = 0; i < count; ++i)
        serial[i] = runner->classify(few.sample(i));

    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        const auto batch = frozen.classifyBatch(few, threads);
        ASSERT_EQ(batch.size(), count);
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(batch[i], serial[i])
                << "threads=" << threads << " image " << i;
    }
}

namespace
{

bnn::BayesianConvNet
tinyCnn(std::uint64_t seed)
{
    nn::ConvNetConfig cfg;
    cfg.inChannels = 1;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {{3, 3, 1, 1, true, 2}, {4, 3, 1, 1, true, 2}};
    cfg.denseHidden = {12};
    cfg.numClasses = 4;
    Rng rng(seed);
    return bnn::BayesianConvNet(cfg, rng, -2.0f);
}

accel::AcceleratorConfig
cnnAccelConfig()
{
    accel::AcceleratorConfig ac;
    ac.peSets = 2;
    ac.pesPerSet = 4;
    ac.mcSamples = 2;
    return ac;
}

} // anonymous namespace

TEST(VibnnSystem, WrapsConvolutionalNetworks)
{
    const auto net = tinyCnn(7);
    const core::VibnnSystem sys(net, cnnAccelConfig());
    EXPECT_TRUE(sys.isConvolutional());
    EXPECT_EQ(sys.program().inputDim(), 64u);
    EXPECT_EQ(sys.program().outputDim(), 4u);
    EXPECT_EQ(sys.convNetwork().outputDim(), 4u);

    // The full deployment surface works on the CNN program.
    auto sim = sys.makeSimulator();
    auto fun = sys.makeFunctionalRunner();
    std::vector<float> x(64, 0.4f);
    ASSERT_EQ(sim->runPass(x.data()), fun->runPass(x.data()));
    EXPECT_GT(sim->stats().totalCycles, 0u);

    const auto estimate = sys.resourceEstimate();
    EXPECT_GT(estimate.total().alms, 0.0);
}

TEST(VibnnSystem, CnnTimingReportsPerOpCycles)
{
    const auto net = tinyCnn(11);
    const core::VibnnSystem sys(net, cnnAccelConfig());

    std::vector<float> image(64, 0.25f);
    std::vector<int> label(1, 0);
    nn::DataView view;
    view.count = 1;
    view.dim = 64;
    view.features = image.data();
    view.labels = label.data();

    const auto stats = sys.simulateTiming(view, 2);
    EXPECT_EQ(stats.images, 2u);
    ASSERT_EQ(stats.opCycles.size(), sys.program().ops.size());
    // Conv ops dominate: positions x bank passes each.
    EXPECT_GT(stats.opCycles[0], stats.opCycles[5]);
}
