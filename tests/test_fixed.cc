/**
 * @file
 * Unit and property tests for the fixed-point library — the numeric
 * substrate of the bit-length study (Figure 18).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "fixed/fixed_point.hh"
#include "fixed/quantize.hh"

using namespace vibnn;
using namespace vibnn::fixed;

TEST(FixedFormat, BasicProperties)
{
    FixedPointFormat q84(8, 4);
    EXPECT_EQ(q84.totalBits(), 8);
    EXPECT_EQ(q84.fracBits(), 4);
    EXPECT_EQ(q84.intBits(), 4);
    EXPECT_EQ(q84.rawMax(), 127);
    EXPECT_EQ(q84.rawMin(), -128);
    EXPECT_DOUBLE_EQ(q84.resolution(), 0.0625);
    EXPECT_DOUBLE_EQ(q84.realMax(), 7.9375);
    EXPECT_DOUBLE_EQ(q84.realMin(), -8.0);
    EXPECT_EQ(q84.name(), "Q8.4");
}

TEST(FixedFormat, RoundTripExactGridPoints)
{
    FixedPointFormat fmt(8, 4);
    for (std::int64_t raw = fmt.rawMin(); raw <= fmt.rawMax(); ++raw) {
        const double real = fmt.toReal(raw);
        EXPECT_EQ(fmt.fromReal(real), raw);
    }
}

TEST(FixedFormat, SaturationAtRails)
{
    FixedPointFormat fmt(8, 4);
    EXPECT_EQ(fmt.fromReal(100.0), fmt.rawMax());
    EXPECT_EQ(fmt.fromReal(-100.0), fmt.rawMin());
    EXPECT_EQ(fmt.saturate(1000), fmt.rawMax());
    EXPECT_EQ(fmt.saturate(-1000), fmt.rawMin());
}

TEST(FixedFormat, RoundingModes)
{
    FixedPointFormat fmt(8, 2); // resolution 0.25
    EXPECT_EQ(fmt.fromReal(0.3, RoundMode::Nearest), 1);  // 0.25
    EXPECT_EQ(fmt.fromReal(0.3, RoundMode::Floor), 1);
    EXPECT_EQ(fmt.fromReal(0.38, RoundMode::Nearest), 2); // 0.5
    EXPECT_EQ(fmt.fromReal(0.38, RoundMode::Floor), 1);
    EXPECT_EQ(fmt.fromReal(-0.3, RoundMode::Floor), -2);  // floor(-1.2)
    EXPECT_EQ(fmt.fromReal(-0.3, RoundMode::Nearest), -1);
}

TEST(FixedFormat, AddSubSaturate)
{
    FixedPointFormat fmt(8, 0);
    EXPECT_EQ(fmt.add(100, 100), 127);
    EXPECT_EQ(fmt.add(-100, -100), -128);
    EXPECT_EQ(fmt.sub(-100, 100), -128);
    EXPECT_EQ(fmt.add(50, 20), 70);
}

TEST(FixedFormat, MulMatchesRealArithmetic)
{
    FixedPointFormat fmt(16, 8);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const double a = rng.uniform(-10.0, 10.0);
        const double b = rng.uniform(-10.0, 10.0);
        const std::int64_t ra = fmt.fromReal(a);
        const std::int64_t rb = fmt.fromReal(b);
        const std::int64_t rp = fmt.mul(ra, rb, RoundMode::Floor);
        const double exact = fmt.toReal(ra) * fmt.toReal(rb);
        if (exact < fmt.realMax() && exact > fmt.realMin()) {
            // Floor truncation: error in [-resolution, 0].
            const double err = fmt.toReal(rp) - exact;
            EXPECT_LE(err, 1e-12);
            EXPECT_GE(err, -fmt.resolution() - 1e-12);
        }
    }
}

TEST(FixedFormat, MulNearestIsCloser)
{
    FixedPointFormat fmt(12, 6);
    Rng rng(5);
    double floor_err = 0.0, nearest_err = 0.0;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t a = fmt.fromReal(rng.uniform(-5, 5));
        const std::int64_t b = fmt.fromReal(rng.uniform(-5, 5));
        const double exact = fmt.toReal(a) * fmt.toReal(b);
        floor_err +=
            std::fabs(fmt.toReal(fmt.mul(a, b, RoundMode::Floor)) - exact);
        nearest_err += std::fabs(
            fmt.toReal(fmt.mul(a, b, RoundMode::Nearest)) - exact);
    }
    EXPECT_LT(nearest_err, floor_err);
}

TEST(FixedValue, OperatorArithmetic)
{
    FixedPointFormat fmt(16, 8);
    Fixed a(fmt, 1.5), b(fmt, 2.25);
    EXPECT_DOUBLE_EQ((a + b).real(), 3.75);
    EXPECT_DOUBLE_EQ((a - b).real(), -0.75);
    EXPECT_NEAR((a * b).real(), 3.375, fmt.resolution());
}

/** Property sweep over all widths: quantization error bounded by half
 *  resolution (nearest) and resolution (floor). */
class FixedWidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FixedWidthSweep, QuantizationErrorBounded)
{
    const int bits = GetParam();
    FixedPointFormat fmt(bits, bits / 2);
    Rng rng(bits);
    for (int i = 0; i < 500; ++i) {
        const double x =
            rng.uniform(fmt.realMin() * 0.99, fmt.realMax() * 0.99);
        const double qn = fmt.quantize(x, RoundMode::Nearest);
        EXPECT_LE(std::fabs(qn - x), fmt.resolution() / 2 + 1e-12);
        const double qf = fmt.quantize(x, RoundMode::Floor);
        EXPECT_LE(x - qf, fmt.resolution() + 1e-12);
        EXPECT_GE(x - qf, -1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, FixedWidthSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 10, 12, 16, 24,
                                           32));

TEST(Quantize, InPlaceAndRawRoundTrip)
{
    FixedPointFormat fmt(8, 4);
    std::vector<float> values = {0.1f, -0.3f, 1.7f, 100.0f, -100.0f};
    const auto raw = quantizeToRaw(values, fmt);
    const auto back = dequantize(raw, fmt);
    auto copy = values;
    quantizeInPlace(copy, fmt);
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_FLOAT_EQ(copy[i], back[i]);
    EXPECT_FLOAT_EQ(back[3], static_cast<float>(fmt.realMax()));
}

TEST(Quantize, ErrorMetrics)
{
    FixedPointFormat fmt(8, 4);
    std::vector<float> values;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        values.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    const auto err = measureQuantizationError(values, fmt);
    EXPECT_LE(err.maxAbs, fmt.resolution() / 2 + 1e-6);
    EXPECT_GT(err.rms, 0.0);
    EXPECT_EQ(err.saturationRate, 0.0);

    values.push_back(1000.0f);
    const auto err2 = measureQuantizationError(values, fmt);
    EXPECT_GT(err2.saturationRate, 0.0);
}

TEST(Quantize, BestFracBitsPicksSensibly)
{
    // Data in [-0.5, 0.5]: more fraction bits always better until the
    // range clips; best should be totalBits-1 for tiny data.
    std::vector<float> small;
    Rng rng(9);
    for (int i = 0; i < 500; ++i)
        small.push_back(static_cast<float>(rng.uniform(-0.4, 0.4)));
    EXPECT_EQ(bestFracBits(small, 8), 7);

    // Data spanning [-6, 6] needs at least 3 integer bits.
    std::vector<float> wide;
    for (int i = 0; i < 500; ++i)
        wide.push_back(static_cast<float>(rng.uniform(-6.0, 6.0)));
    EXPECT_LE(bestFracBits(wide, 8), 5);
}
