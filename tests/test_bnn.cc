/**
 * @file
 * Tests for the Bayesian core: variational layer gradients (direct and
 * LRT estimators against numerical differentiation with frozen eps),
 * the closed-form KL and its gradient, Bayes-by-Backprop training
 * behaviour, and the MC-ensemble predictions of paper equation (6).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bnn/bayesian_mlp.hh"
#include "bnn/bnn_trainer.hh"
#include "common/rng.hh"
#include "data/tabular.hh"
#include "nn/activations.hh"

using namespace vibnn;
using namespace vibnn::bnn;

TEST(VariationalDense, SigmaIsSoftplus)
{
    EXPECT_NEAR(VariationalDense::sigmaOf(0.0f), std::log(2.0f), 1e-6f);
    EXPECT_GT(VariationalDense::sigmaOf(-5.0f), 0.0f);
    EXPECT_NEAR(VariationalDense::sigmaOf(10.0f), 10.0f, 1e-3f);
}

TEST(VariationalDense, SampleForwardUsesEps)
{
    Rng rng(3);
    VariationalDense layer(2, 1, rng, -2.0f);
    VariationalScratch scratch;
    const float x[2] = {1.0f, 2.0f};
    float out_zero, out_big;

    auto zero_eps = [] { return 0.0; };
    layer.sampleForward(x, &out_zero, scratch, zero_eps);
    float expected = layer.muBias()[0];
    for (int c = 0; c < 2; ++c)
        expected += layer.muWeight().at(0, c) * x[c];
    EXPECT_NEAR(out_zero, expected, 1e-5f);

    auto big_eps = [] { return 3.0; };
    layer.sampleForward(x, &out_big, scratch, big_eps);
    EXPECT_NE(out_zero, out_big);
}

TEST(VariationalDense, DirectGradientsMatchNumerical)
{
    Rng rng(5);
    VariationalDense layer(3, 2, rng, -1.0f);
    const float x[3] = {0.7f, -0.2f, 0.4f};

    // Freeze an eps draw, then check d(sum y^2/2)/d(mu, rho) against
    // finite differences re-using the same eps.
    VariationalScratch scratch;
    float y[2];
    Rng eps_rng(11);
    auto eps = [&eps_rng] { return eps_rng.gaussian(); };
    layer.sampleForward(x, y, scratch, eps);

    VariationalGradients grads;
    grads.resize(2, 3);
    grads.zero();
    layer.sampleBackward(x, y, scratch, grads, nullptr);

    auto loss_with_frozen_eps = [&]() {
        float out[2];
        std::size_t k = 0;
        // Replay eps from scratch in the same order the forward pass
        // consumed it: bias first, then the row's weights.
        std::vector<double> replay;
        for (std::size_t r = 0; r < 2; ++r) {
            replay.push_back(scratch.epsBias[r]);
            for (std::size_t c = 0; c < 3; ++c)
                replay.push_back(scratch.epsWeight.at(r, c));
        }
        auto frozen = [&replay, &k] { return replay[k++]; };
        VariationalScratch local;
        layer.sampleForward(x, out, local, frozen);
        float l = 0;
        for (float v : out)
            l += 0.5f * v * v;
        return l;
    };

    const float h = 1e-3f;
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            float &mu = layer.muWeight().at(r, c);
            const float saved = mu;
            mu = saved + h;
            const float up = loss_with_frozen_eps();
            mu = saved - h;
            const float down = loss_with_frozen_eps();
            mu = saved;
            EXPECT_NEAR(grads.muWeight.at(r, c), (up - down) / (2 * h),
                        2e-2f)
                << "mu(" << r << "," << c << ")";

            float &rho = layer.rhoWeight().at(r, c);
            const float saved_rho = rho;
            rho = saved_rho + h;
            const float up_r = loss_with_frozen_eps();
            rho = saved_rho - h;
            const float down_r = loss_with_frozen_eps();
            rho = saved_rho;
            EXPECT_NEAR(grads.rhoWeight.at(r, c),
                        (up_r - down_r) / (2 * h), 2e-2f)
                << "rho(" << r << "," << c << ")";
        }
    }
}

TEST(VariationalDense, LrtGradientsMatchNumerical)
{
    Rng rng(7);
    VariationalDense layer(3, 2, rng, -1.0f);
    const float x[3] = {0.5f, 0.9f, -0.6f};

    VariationalScratch scratch;
    float y[2];
    Rng eps_rng(13);
    layer.lrtForward(x, y, scratch, eps_rng);

    VariationalGradients grads;
    grads.resize(2, 3);
    grads.zero();
    layer.lrtBackward(x, y, scratch, grads, nullptr);

    // Finite differences with the same per-activation eps.
    auto loss_with_frozen_eps = [&]() {
        float out[2];
        for (std::size_t r = 0; r < 2; ++r) {
            float mean = layer.muBias()[r];
            const float sb =
                VariationalDense::sigmaOf(layer.rhoBias()[r]);
            float var = sb * sb;
            for (std::size_t c = 0; c < 3; ++c) {
                mean += layer.muWeight().at(r, c) * x[c];
                const float s =
                    VariationalDense::sigmaOf(layer.rhoWeight().at(r, c));
                var += s * s * x[c] * x[c];
            }
            out[r] = mean +
                std::sqrt(var) * scratch.activationEps[r];
        }
        float l = 0;
        for (float v : out)
            l += 0.5f * v * v;
        return l;
    };

    const float h = 1e-3f;
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            float &mu = layer.muWeight().at(r, c);
            float saved = mu;
            mu = saved + h;
            const float up = loss_with_frozen_eps();
            mu = saved - h;
            const float down = loss_with_frozen_eps();
            mu = saved;
            EXPECT_NEAR(grads.muWeight.at(r, c), (up - down) / (2 * h),
                        2e-2f);

            float &rho = layer.rhoWeight().at(r, c);
            saved = rho;
            rho = saved + h;
            const float up_r = loss_with_frozen_eps();
            rho = saved - h;
            const float down_r = loss_with_frozen_eps();
            rho = saved;
            EXPECT_NEAR(grads.rhoWeight.at(r, c),
                        (up_r - down_r) / (2 * h), 2e-2f);
        }
    }
}

TEST(VariationalDense, KlClosedFormMatchesNumericIntegral)
{
    // For a single weight, compare the closed form against numerical
    // integration of q log(q/p).
    Rng rng(17);
    VariationalDense layer(1, 1, rng, 0.5f);
    layer.muWeight().at(0, 0) = 0.7f;
    layer.muBias()[0] = 0.0f;
    layer.rhoBias()[0] = 0.5f;
    layer.muBias()[0] = -0.2f;

    const float prior_sigma = 0.8f;
    const double closed = layer.klDivergence(prior_sigma);

    auto kl_numeric = [prior_sigma](double mu, double sigma) {
        double kl = 0.0;
        const double dx = 0.001;
        for (double x = mu - 10 * sigma; x < mu + 10 * sigma; x += dx) {
            const double q = std::exp(-0.5 * (x - mu) * (x - mu) /
                                      (sigma * sigma)) /
                (sigma * std::sqrt(2 * M_PI));
            const double p =
                std::exp(-0.5 * x * x / (prior_sigma * prior_sigma)) /
                (prior_sigma * std::sqrt(2 * M_PI));
            if (q > 1e-300)
                kl += q * std::log(q / p) * dx;
        }
        return kl;
    };

    const double expected =
        kl_numeric(layer.muWeight().at(0, 0),
                   VariationalDense::sigmaOf(layer.rhoWeight().at(0, 0))) +
        kl_numeric(layer.muBias()[0],
                   VariationalDense::sigmaOf(layer.rhoBias()[0]));
    EXPECT_NEAR(closed, expected, 1e-3);
}

TEST(VariationalDense, KlGradientMatchesNumerical)
{
    Rng rng(19);
    VariationalDense layer(2, 2, rng, -0.5f);
    const float prior = 0.5f;

    VariationalGradients grads;
    grads.resize(2, 2);
    grads.zero();
    layer.klBackward(prior, 1.0f, grads);

    const float h = 1e-3f;
    float &mu = layer.muWeight().at(1, 0);
    float saved = mu;
    mu = saved + h;
    const double up = layer.klDivergence(prior);
    mu = saved - h;
    const double down = layer.klDivergence(prior);
    mu = saved;
    EXPECT_NEAR(grads.muWeight.at(1, 0), (up - down) / (2 * h), 1e-2);

    float &rho = layer.rhoWeight().at(0, 1);
    saved = rho;
    rho = saved + h;
    const double up_r = layer.klDivergence(prior);
    rho = saved - h;
    const double down_r = layer.klDivergence(prior);
    rho = saved;
    EXPECT_NEAR(grads.rhoWeight.at(0, 1), (up_r - down_r) / (2 * h),
                1e-2);
}

TEST(BayesianMlp, KlDecreasesTowardPrior)
{
    Rng rng(23);
    BayesianMlp net({4, 8, 2}, rng);
    const double kl_initial = net.klDivergence(0.1f);
    EXPECT_GT(kl_initial, 0.0);

    // Pulling mu toward 0 must reduce the KL.
    for (auto &layer : net.layers())
        for (auto &mu : layer.muWeight().data())
            mu *= 0.1f;
    EXPECT_LT(net.klDivergence(0.1f), kl_initial);
}

TEST(BayesianMlp, TrainsOnTabularTask)
{
    auto spec = data::retinopathySpec(77);
    spec.trainCount = 200;
    spec.testCount = 120;
    const auto ds = data::makeTabular(spec);

    Rng rng(29);
    BayesianMlp net({ds.train.dim, 24, 24,
                     static_cast<std::size_t>(ds.train.numClasses)},
                    rng);

    BnnTrainConfig config;
    config.epochs = 25;
    config.seed = 31;
    const auto history = trainBnn(net, ds.train.view(), config);
    EXPECT_LT(history.trainLoss.back(), history.trainLoss.front());

    const double acc = evaluateBnnAccuracy(net, ds.test.view(), 8, 99);
    EXPECT_GT(acc, 0.58); // well above the 50% base rate
}

TEST(BayesianMlp, DirectAndLrtBothLearn)
{
    // XOR with both estimators. The four points are replicated so the
    // likelihood outweighs the KL — with only 4 observations the exact
    // posterior (correctly) stays at the prior.
    std::vector<float> features;
    std::vector<int> labels;
    const float pts[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const int lab[4] = {0, 1, 1, 0};
    for (int rep = 0; rep < 50; ++rep) {
        for (int i = 0; i < 4; ++i) {
            features.push_back(pts[i][0]);
            features.push_back(pts[i][1]);
            labels.push_back(lab[i]);
        }
    }
    nn::DataView view{200, 2, features.data(), labels.data()};

    for (bool lrt : {true, false}) {
        Rng rng(37);
        BayesianMlp net({2, 12, 2}, rng, -4.0f);
        BnnTrainConfig config;
        config.epochs = 60;
        config.batchSize = 20;
        config.learningRate = 0.02f;
        config.useLocalReparameterization = lrt;
        config.priorSigma = 1.0f;
        config.seed = 41;
        trainBnn(net, view, config);
        const double acc = evaluateBnnAccuracy(net, view, 16, 43);
        EXPECT_GE(acc, 0.9) << "lrt=" << lrt;
    }
}

TEST(BayesianMlp, McPredictAveragesToDistribution)
{
    Rng rng(43);
    BayesianMlp net({3, 6, 3}, rng);
    const float x[3] = {0.2f, -0.1f, 0.5f};
    std::vector<float> probs(3);
    Rng eps_rng(47);
    auto eps = [&eps_rng] { return eps_rng.gaussian(); };
    net.mcPredict(x, 32, probs.data(), eps);
    float total = 0.0f;
    for (float p : probs) {
        EXPECT_GE(p, 0.0f);
        total += p;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(BayesianMlp, PredictiveEntropyHigherOffDistribution)
{
    // Train on tight blobs; entropy far from the blobs must exceed
    // entropy at a blob center — the uncertainty signal BNNs exist for.
    Rng data_rng(53);
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < 300; ++i) {
        const int cls = i % 2;
        features.push_back(
            static_cast<float>(data_rng.gaussian() * 0.2 +
                               (cls ? 2.0 : -2.0)));
        features.push_back(static_cast<float>(data_rng.gaussian() * 0.2));
        labels.push_back(cls);
    }
    nn::DataView view{300, 2, features.data(), labels.data()};

    Rng rng(59);
    BayesianMlp net({2, 16, 2}, rng);
    BnnTrainConfig config;
    config.epochs = 80;
    config.seed = 61;
    config.priorSigma = 0.5f;
    trainBnn(net, view, config);

    Rng eps_rng(67);
    const float in_dist[2] = {2.0f, 0.0f};
    const float off_dist[2] = {0.0f, 8.0f};
    const double h_in = net.predictiveEntropy(in_dist, 64, eps_rng);
    const double h_off = net.predictiveEntropy(off_dist, 64, eps_rng);
    EXPECT_GT(h_off, h_in * 2.0);
}

TEST(BayesianMlp, ParamRoundTrip)
{
    Rng rng(71);
    BayesianMlp net({5, 7, 3}, rng);
    std::vector<float> flat;
    net.gatherParams(flat);
    EXPECT_EQ(flat.size(), net.paramCount());
    EXPECT_EQ(flat.size(), 2u * (5 * 7 + 7) + 2u * (7 * 3 + 3));
    net.scatterParams(flat);
    std::vector<float> again;
    net.gatherParams(again);
    EXPECT_EQ(flat, again);
}
