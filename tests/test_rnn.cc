/**
 * @file
 * Tests for the RNN extension: BPTT gradients against numerical
 * differentiation, gradient-clip mechanics, the synthetic sequence
 * task, the VariationalMatrix primitive, and Bayesian-RNN training
 * (direct Bayes-by-Backprop estimator with per-sequence weight
 * samples).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bnn/bayesian_rnn.hh"
#include "bnn/variational_matrix.hh"
#include "common/rng.hh"
#include "data/sequences.hh"
#include "nn/rnn.hh"

using namespace vibnn;

namespace
{

nn::RnnConfig
tinyConfig()
{
    nn::RnnConfig config;
    config.inputDim = 3;
    config.hiddenDim = 5;
    config.numClasses = 2;
    config.seqLen = 4;
    return config;
}

std::vector<float>
randomSequence(const nn::RnnConfig &config, Rng &rng)
{
    std::vector<float> xs(config.flatDim());
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform(-1, 1));
    return xs;
}

} // namespace

TEST(ElmanRnn, BpttGradientsMatchNumerical)
{
    const auto config = tinyConfig();
    Rng rng(3);
    nn::ElmanRnn net(config, rng);
    Rng data(5);
    const auto xs = randomSequence(config, data);
    const std::size_t target = 1;

    auto ws = net.makeWorkspace();
    net.zeroGrads(ws);
    net.trainSequence(xs.data(), target, ws);
    std::vector<float> grads;
    net.gatherGrads(ws, grads);

    std::vector<float> params;
    net.gatherParams(params);
    ASSERT_EQ(grads.size(), params.size());

    auto loss_at = [&](const std::vector<float> &p) {
        net.scatterParams(p);
        auto w2 = net.makeWorkspace();
        std::vector<float> logits(net.outputDim());
        net.forward(xs.data(), logits.data(), w2);
        float mx = logits[0];
        for (float v : logits)
            mx = std::max(mx, v);
        double denom = 0.0;
        for (float v : logits)
            denom += std::exp(static_cast<double>(v - mx));
        return -(logits[target] - mx - std::log(denom));
    };

    const float h = 1e-3f;
    std::vector<float> probe(params);
    for (std::size_t i = 0; i < params.size(); i += 3) {
        probe[i] = params[i] + h;
        const double up = loss_at(probe);
        probe[i] = params[i] - h;
        const double dn = loss_at(probe);
        probe[i] = params[i];
        EXPECT_NEAR(grads[i], (up - dn) / (2 * h), 2e-2f)
            << "param " << i;
    }
    net.scatterParams(params);
}

TEST(ElmanRnn, ParamRoundTrip)
{
    const auto config = tinyConfig();
    Rng rng(7);
    nn::ElmanRnn net(config, rng);
    std::vector<float> params;
    net.gatherParams(params);
    EXPECT_EQ(params.size(), net.paramCount());
    std::vector<float> mutated(params);
    for (auto &p : mutated)
        p += 0.5f;
    net.scatterParams(mutated);
    std::vector<float> back;
    net.gatherParams(back);
    for (std::size_t i = 0; i < params.size(); ++i)
        EXPECT_FLOAT_EQ(back[i], params[i] + 0.5f);
}

TEST(ElmanRnn, GradientNormAndScale)
{
    nn::RnnGradients grads;
    grads.resize(tinyConfig());
    grads.zero();
    EXPECT_DOUBLE_EQ(grads.norm(), 0.0);
    grads.wx.at(0, 0) = 3.0f;
    grads.bh[0] = 4.0f;
    EXPECT_DOUBLE_EQ(grads.norm(), 5.0);
    grads.scale(0.5f);
    EXPECT_DOUBLE_EQ(grads.norm(), 2.5);
}

TEST(SequenceTask, ShapesAndDeterminism)
{
    data::SequenceTaskConfig config;
    config.trainCount = 50;
    config.testCount = 20;
    config.seed = 11;
    const auto a = data::makeSequenceTask(config);
    EXPECT_EQ(a.train.count(), 50u);
    EXPECT_EQ(a.test.count(), 20u);
    EXPECT_EQ(a.train.dim, config.seqLen * config.featDim);
    for (int label : a.train.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, static_cast<int>(config.classes));
    }
    const auto b = data::makeSequenceTask(config);
    EXPECT_EQ(a.train.features, b.train.features); // seeded determinism
    config.seed = 12;
    const auto c = data::makeSequenceTask(config);
    EXPECT_NE(a.train.features, c.train.features);
}

TEST(SequenceTask, AllClassesRepresented)
{
    data::SequenceTaskConfig config;
    config.trainCount = 300;
    config.seed = 13;
    const auto dataset = data::makeSequenceTask(config);
    const auto hist = data::classHistogram(dataset.train);
    ASSERT_EQ(hist.size(), config.classes);
    for (std::size_t count : hist)
        EXPECT_GT(count, 50u); // roughly balanced
}

TEST(ElmanRnn, LearnsSequenceTask)
{
    data::SequenceTaskConfig task;
    task.trainCount = 300;
    task.testCount = 150;
    task.seed = 17;
    const auto dataset = data::makeSequenceTask(task);

    nn::RnnConfig config;
    config.inputDim = task.featDim;
    config.hiddenDim = 24;
    config.numClasses = task.classes;
    config.seqLen = task.seqLen;

    Rng rng(19);
    nn::ElmanRnn net(config, rng);
    nn::TrainConfig tc;
    tc.epochs = 15;
    tc.batchSize = 16;
    tc.learningRate = 3e-3f;
    tc.seed = 23;
    const auto history = trainRnn(net, dataset.train.view(), tc);

    EXPECT_LT(history.trainLoss.back(), history.trainLoss.front());
    EXPECT_GE(evaluateAccuracy(net, dataset.test.view()), 0.85);
}

TEST(VariationalMatrix, ZeroEpsIsMean)
{
    Rng rng(29);
    bnn::VariationalMatrix block(4, 3, rng, 0.5f);
    nn::Matrix w, eps;
    auto zero = []() { return 0.0; };
    block.sample(w, eps, zero);
    for (std::size_t i = 0; i < block.count(); ++i)
        EXPECT_FLOAT_EQ(w.data()[i], block.mu().data()[i]);
}

TEST(VariationalMatrix, KlZeroAtPriorPoint)
{
    Rng rng(31);
    bnn::VariationalMatrix block(3, 3, rng, 0.5f);
    const float prior = 0.4f;
    const float rho = std::log(std::exp(prior) - 1.0f);
    block.mu().fill(0.0f);
    block.rho().fill(rho);
    EXPECT_NEAR(block.klDivergence(prior), 0.0, 1e-6);
    block.mu().data()[0] = 0.2f;
    EXPECT_GT(block.klDivergence(prior), 0.0);
}

TEST(VariationalMatrix, KlBackwardMatchesNumerical)
{
    Rng rng(37);
    bnn::VariationalMatrix block(3, 2, rng, 0.5f);
    nn::Matrix g_mu(3, 2), g_rho(3, 2);
    const float prior = 0.5f;
    block.klBackward(prior, 1.0f, g_mu, g_rho);

    const float h = 1e-3f;
    for (std::size_t i = 0; i < block.count(); ++i) {
        float &mu = block.mu().data()[i];
        const float keep = mu;
        mu = keep + h;
        const double up = block.klDivergence(prior);
        mu = keep - h;
        const double dn = block.klDivergence(prior);
        mu = keep;
        EXPECT_NEAR(g_mu.data()[i], (up - dn) / (2 * h), 1e-2f);
    }
    for (std::size_t i = 0; i < block.count(); ++i) {
        float &rho = block.rho().data()[i];
        const float keep = rho;
        rho = keep + h;
        const double up = block.klDivergence(prior);
        rho = keep - h;
        const double dn = block.klDivergence(prior);
        rho = keep;
        EXPECT_NEAR(g_rho.data()[i], (up - dn) / (2 * h), 1e-2f);
    }
}

TEST(BayesianRnn, MeanForwardMatchesZeroEpsSample)
{
    const auto config = tinyConfig();
    Rng rng(41);
    bnn::BayesianRnn net(config, rng);
    auto ws = net.makeWorkspace();
    Rng data(43);
    const auto xs = randomSequence(config, data);

    std::vector<float> mean(net.outputDim()), sampled(net.outputDim());
    net.meanForward(xs.data(), mean.data(), ws);
    auto zero = []() { return 0.0; };
    net.sampledForward(xs.data(), sampled.data(), ws, zero);
    for (std::size_t i = 0; i < mean.size(); ++i)
        EXPECT_NEAR(mean[i], sampled[i], 1e-5f);
}

TEST(BayesianRnn, TrainSequenceGradientsMatchNumerical)
{
    const auto config = tinyConfig();
    Rng rng(47);
    bnn::BayesianRnn net(config, rng, -1.0f);
    Rng data(53);
    const auto xs = randomSequence(config, data);
    const std::size_t target = 0;
    const std::uint64_t eps_seed = 59;

    auto ws = net.makeWorkspace();
    net.zeroGrads(ws);
    {
        Rng eps_rng(eps_seed);
        net.trainSequence(xs.data(), target, ws, eps_rng);
    }
    std::vector<float> grads;
    net.gatherGrads(ws, grads);

    std::vector<float> params;
    net.gatherParams(params);
    ASSERT_EQ(grads.size(), params.size());

    // Replaying the same eps seed makes the sampled loss a
    // deterministic function of the parameters.
    auto loss_at = [&](const std::vector<float> &p) {
        net.scatterParams(p);
        auto w2 = net.makeWorkspace();
        std::vector<float> logits(net.outputDim());
        Rng eps_rng(eps_seed);
        auto eps = [&]() { return eps_rng.gaussian(); };
        net.sampledForward(xs.data(), logits.data(), w2, eps);
        float mx = logits[0];
        for (float v : logits)
            mx = std::max(mx, v);
        double denom = 0.0;
        for (float v : logits)
            denom += std::exp(static_cast<double>(v - mx));
        return -(logits[target] - mx - std::log(denom));
    };

    const float h = 1e-3f;
    std::vector<float> probe(params);
    for (std::size_t i = 0; i < params.size(); i += 7) {
        probe[i] = params[i] + h;
        const double up = loss_at(probe);
        probe[i] = params[i] - h;
        const double dn = loss_at(probe);
        probe[i] = params[i];
        EXPECT_NEAR(grads[i], (up - dn) / (2 * h), 2e-2f)
            << "param " << i;
    }
    net.scatterParams(params);
}

TEST(BayesianRnn, McPredictIsDistribution)
{
    const auto config = tinyConfig();
    Rng rng(61);
    bnn::BayesianRnn net(config, rng);
    auto ws = net.makeWorkspace();
    Rng data(67);
    const auto xs = randomSequence(config, data);

    std::vector<float> probs(net.outputDim());
    Rng eps_rng(71);
    auto eps = [&]() { return eps_rng.gaussian(); };
    net.mcPredict(xs.data(), 16, probs.data(), ws, eps);
    double total = 0.0;
    for (float p : probs) {
        EXPECT_GE(p, 0.0f);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(BayesianRnn, LearnsSequenceTask)
{
    data::SequenceTaskConfig task;
    task.trainCount = 300;
    task.testCount = 150;
    task.seed = 73;
    const auto dataset = data::makeSequenceTask(task);

    nn::RnnConfig config;
    config.inputDim = task.featDim;
    config.hiddenDim = 24;
    config.numClasses = task.classes;
    config.seqLen = task.seqLen;

    Rng rng(79);
    bnn::BayesianRnn net(config, rng, -4.0f);
    bnn::BnnTrainConfig cfg;
    cfg.epochs = 15;
    cfg.batchSize = 16;
    cfg.learningRate = 3e-3f;
    cfg.priorSigma = 0.5f;
    cfg.klWeight = 0.2f;
    cfg.evalSamples = 8;
    cfg.seed = 83;
    const auto history = trainBrnn(net, dataset.train.view(), cfg);

    EXPECT_LT(history.trainLoss.back(), history.trainLoss.front());
    EXPECT_GE(evaluateBrnnAccuracy(net, dataset.test.view(), 8, 89),
              0.8);
}

TEST(BayesianRnn, KlDecreasesWithTraining)
{
    // With a KL term in the objective, sigma contracts toward the
    // prior's pull; the KL should not blow up during training.
    data::SequenceTaskConfig task;
    task.trainCount = 100;
    task.testCount = 10;
    task.seed = 97;
    const auto dataset = data::makeSequenceTask(task);

    nn::RnnConfig config;
    config.inputDim = task.featDim;
    config.hiddenDim = 12;
    config.numClasses = task.classes;
    config.seqLen = task.seqLen;

    Rng rng(101);
    bnn::BayesianRnn net(config, rng, -4.0f);
    const double kl_before = net.klDivergence(0.5f);

    bnn::BnnTrainConfig cfg;
    cfg.epochs = 5;
    cfg.batchSize = 16;
    cfg.learningRate = 3e-3f;
    cfg.priorSigma = 0.5f;
    cfg.klWeight = 1.0f;
    cfg.seed = 103;
    trainBrnn(net, dataset.train.view(), cfg);

    const double kl_after = net.klDivergence(0.5f);
    EXPECT_TRUE(std::isfinite(kl_after));
    // rho starts at -4 (sigma ~ 0.018), far below prior 0.5, so the KL
    // pull should *reduce* the divergence as sigma grows toward it.
    EXPECT_LT(kl_after, kl_before);
}
