/**
 * @file
 * Tests for the Bayesian-CNN extension: variational convolution
 * sampling semantics, KL closed form and gradients, direct/LRT
 * estimator gradient checks against numerical differentiation, LRT
 * moment agreement with direct sampling, and end-to-end Bayes-by-
 * Backprop training of a Bayesian ConvNet.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bnn/bayesian_cnn.hh"
#include "bnn/variational_conv.hh"
#include "common/rng.hh"
#include "nn/activations.hh"
#include "nn/conv.hh"

using namespace vibnn;
using namespace vibnn::bnn;

namespace
{

nn::ConvSpec
smallSpec()
{
    nn::ConvSpec s;
    s.inChannels = 2;
    s.inHeight = 5;
    s.inWidth = 5;
    s.outChannels = 3;
    s.kernel = 3;
    s.stride = 1;
    s.pad = 1;
    return s;
}

std::vector<float>
randomVector(std::size_t n, Rng &rng, double lo = -1.0, double hi = 1.0)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(lo, hi));
    return v;
}

/** Replays a recorded eps stream (for deterministic gradient checks). */
struct EpsReplay
{
    const std::vector<double> *stream;
    std::size_t at = 0;
    double operator()() { return (*stream)[at++ % stream->size()]; }
};

} // namespace

TEST(VariationalConv, ZeroEpsEqualsMeanForward)
{
    const auto spec = smallSpec();
    Rng rng(3);
    VariationalConv2d layer(spec, rng);
    const auto x = randomVector(spec.inputSize(), rng);

    VariationalConvScratch s1, s2;
    std::vector<float> mean(spec.outputSize()), sampled(spec.outputSize());
    layer.meanForward(x.data(), mean.data(), s1);
    auto zero_eps = []() { return 0.0; };
    layer.sampleForward(x.data(), sampled.data(), s2, zero_eps);
    for (std::size_t i = 0; i < mean.size(); ++i)
        EXPECT_NEAR(mean[i], sampled[i], 1e-5f);
}

TEST(VariationalConv, SampleSpreadGrowsWithRho)
{
    const auto spec = smallSpec();
    Rng rng(5);
    VariationalConv2d tight(spec, rng, -6.0f);
    Rng rng2(5); // same init stream => same mu
    VariationalConv2d wide(spec, rng2, 1.0f);

    Rng data(7);
    const auto x = randomVector(spec.inputSize(), data);
    VariationalConvScratch st, sw;
    std::vector<float> out(spec.outputSize());

    auto spread = [&](const VariationalConv2d &layer) {
        Rng eps_rng(11);
        auto eps = [&]() { return eps_rng.gaussian(); };
        double m = 0.0, m2 = 0.0;
        const int reps = 64;
        for (int r = 0; r < reps; ++r) {
            layer.sampleForward(x.data(), out.data(),
                                layer.spec().outChannels == 0 ? st : st,
                                eps);
            const double v = out[0];
            m += v;
            m2 += v * v;
        }
        m /= reps;
        return m2 / reps - m * m;
    };

    EXPECT_GT(spread(wide), spread(tight) * 10.0);
}

TEST(VariationalConv, KlZeroAtPriorMatchingPosterior)
{
    auto spec = smallSpec();
    Rng rng(9);
    VariationalConv2d layer(spec, rng);
    // Force q = N(0, prior^2) exactly: mu = 0, sigma = prior.
    const float prior = 0.4f;
    // softplus(rho) = prior  =>  rho = ln(exp(prior) - 1).
    const float rho = std::log(std::exp(prior) - 1.0f);
    layer.muWeight().fill(0.0f);
    layer.rhoWeight().fill(rho);
    std::fill(layer.muBias().begin(), layer.muBias().end(), 0.0f);
    std::fill(layer.rhoBias().begin(), layer.rhoBias().end(), rho);
    EXPECT_NEAR(layer.klDivergence(prior), 0.0, 1e-6);
    // Any perturbation increases KL.
    layer.muWeight().data()[0] = 0.3f;
    EXPECT_GT(layer.klDivergence(prior), 0.0);
}

TEST(VariationalConv, KlBackwardMatchesNumerical)
{
    auto spec = smallSpec();
    spec.inHeight = 3;
    spec.inWidth = 3;
    Rng rng(13);
    VariationalConv2d layer(spec, rng);

    VariationalConvGradients grads;
    grads.resize(spec);
    grads.zero();
    const float prior = 0.5f;
    layer.klBackward(prior, 1.0f, grads);

    const float h = 1e-3f;
    for (std::size_t i = 0; i < layer.muWeight().size(); i += 9) {
        float &mu = layer.muWeight().data()[i];
        const float keep = mu;
        mu = keep + h;
        const double up = layer.klDivergence(prior);
        mu = keep - h;
        const double dn = layer.klDivergence(prior);
        mu = keep;
        EXPECT_NEAR(grads.muWeight.data()[i], (up - dn) / (2 * h), 1e-2f);
    }
    for (std::size_t i = 0; i < layer.rhoWeight().size(); i += 9) {
        float &rho = layer.rhoWeight().data()[i];
        const float keep = rho;
        rho = keep + h;
        const double up = layer.klDivergence(prior);
        rho = keep - h;
        const double dn = layer.klDivergence(prior);
        rho = keep;
        EXPECT_NEAR(grads.rhoWeight.data()[i], (up - dn) / (2 * h), 1e-2f);
    }
}

TEST(VariationalConv, DirectEstimatorGradientCheck)
{
    nn::ConvSpec spec;
    spec.inChannels = 1;
    spec.inHeight = 4;
    spec.inWidth = 4;
    spec.outChannels = 2;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 1;

    Rng rng(17);
    VariationalConv2d layer(spec, rng, -1.0f);
    const auto x = randomVector(spec.inputSize(), rng);
    const auto g = randomVector(spec.outputSize(), rng);

    // Record one eps stream so the sampled loss is a deterministic
    // function of the parameters.
    Rng eps_rng(19);
    std::vector<double> eps_stream(
        (spec.patchSize() + 1) * spec.outChannels);
    for (auto &e : eps_stream)
        e = eps_rng.gaussian();

    auto loss = [&]() {
        VariationalConvScratch s;
        std::vector<float> out(spec.outputSize());
        EpsReplay replay{&eps_stream};
        layer.sampleForward(x.data(), out.data(), s, replay);
        double l = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i)
            l += static_cast<double>(g[i]) * out[i];
        return l;
    };

    VariationalConvScratch scratch;
    std::vector<float> out(spec.outputSize());
    EpsReplay replay{&eps_stream};
    layer.sampleForward(x.data(), out.data(), scratch, replay);
    VariationalConvGradients grads;
    grads.resize(spec);
    grads.zero();
    std::vector<float> dx(spec.inputSize());
    layer.sampleBackward(g.data(), scratch, grads, dx.data());

    const float h = 1e-3f;
    for (std::size_t i = 0; i < layer.muWeight().size(); i += 4) {
        float &mu = layer.muWeight().data()[i];
        const float keep = mu;
        mu = keep + h;
        const double up = loss();
        mu = keep - h;
        const double dn = loss();
        mu = keep;
        EXPECT_NEAR(grads.muWeight.data()[i], (up - dn) / (2 * h), 2e-2f)
            << "dmu at " << i;
    }
    for (std::size_t i = 0; i < layer.rhoWeight().size(); i += 4) {
        float &rho = layer.rhoWeight().data()[i];
        const float keep = rho;
        rho = keep + h;
        const double up = loss();
        rho = keep - h;
        const double dn = loss();
        rho = keep;
        EXPECT_NEAR(grads.rhoWeight.data()[i], (up - dn) / (2 * h), 2e-2f)
            << "drho at " << i;
    }
    // Input gradient.
    std::vector<float> xp(x);
    auto loss_x = [&](const float *input) {
        VariationalConvScratch s;
        std::vector<float> o(spec.outputSize());
        EpsReplay r{&eps_stream};
        layer.sampleForward(input, o.data(), s, r);
        double l = 0.0;
        for (std::size_t i = 0; i < o.size(); ++i)
            l += static_cast<double>(g[i]) * o[i];
        return l;
    };
    for (std::size_t i = 0; i < x.size(); i += 3) {
        xp[i] = x[i] + h;
        const double up = loss_x(xp.data());
        xp[i] = x[i] - h;
        const double dn = loss_x(xp.data());
        xp[i] = x[i];
        EXPECT_NEAR(dx[i], (up - dn) / (2 * h), 2e-2f) << "dx at " << i;
    }
}

TEST(VariationalConv, LrtEstimatorGradientCheck)
{
    nn::ConvSpec spec;
    spec.inChannels = 1;
    spec.inHeight = 3;
    spec.inWidth = 3;
    spec.outChannels = 2;
    spec.kernel = 2;
    spec.stride = 1;
    spec.pad = 0;

    Rng rng(23);
    VariationalConv2d layer(spec, rng, -1.0f);
    const auto x = randomVector(spec.inputSize(), rng, 0.2, 1.0);
    const auto g = randomVector(spec.outputSize(), rng);

    // LRT draws one eps per output from the Rng; re-seeding replays it.
    const std::uint64_t eps_seed = 29;
    auto loss = [&]() {
        VariationalConvScratch s;
        std::vector<float> out(spec.outputSize());
        Rng r(eps_seed);
        layer.lrtForward(x.data(), out.data(), s, r);
        double l = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i)
            l += static_cast<double>(g[i]) * out[i];
        return l;
    };

    VariationalConvScratch scratch;
    std::vector<float> out(spec.outputSize());
    Rng r0(eps_seed);
    layer.lrtForward(x.data(), out.data(), scratch, r0);
    VariationalConvGradients grads;
    grads.resize(spec);
    grads.zero();
    std::vector<float> dx(spec.inputSize());
    layer.lrtBackward(g.data(), scratch, grads, dx.data());

    const float h = 5e-4f;
    for (std::size_t i = 0; i < layer.muWeight().size(); i += 2) {
        float &mu = layer.muWeight().data()[i];
        const float keep = mu;
        mu = keep + h;
        const double up = loss();
        mu = keep - h;
        const double dn = loss();
        mu = keep;
        EXPECT_NEAR(grads.muWeight.data()[i], (up - dn) / (2 * h), 3e-2f)
            << "dmu at " << i;
    }
    for (std::size_t i = 0; i < layer.rhoWeight().size(); i += 2) {
        float &rho = layer.rhoWeight().data()[i];
        const float keep = rho;
        rho = keep + h;
        const double up = loss();
        rho = keep - h;
        const double dn = loss();
        rho = keep;
        EXPECT_NEAR(grads.rhoWeight.data()[i], (up - dn) / (2 * h), 3e-2f)
            << "drho at " << i;
    }
    std::vector<float> xp(x);
    auto loss_x = [&](const float *input) {
        VariationalConvScratch s;
        std::vector<float> o(spec.outputSize());
        Rng r(eps_seed);
        layer.lrtForward(input, o.data(), s, r);
        double l = 0.0;
        for (std::size_t i = 0; i < o.size(); ++i)
            l += static_cast<double>(g[i]) * o[i];
        return l;
    };
    for (std::size_t i = 0; i < x.size(); ++i) {
        xp[i] = x[i] + h;
        const double up = loss_x(xp.data());
        xp[i] = x[i] - h;
        const double dn = loss_x(xp.data());
        xp[i] = x[i];
        EXPECT_NEAR(dx[i], (up - dn) / (2 * h), 3e-2f) << "dx at " << i;
    }
}

TEST(VariationalConv, LrtMomentsMatchDirectSampling)
{
    nn::ConvSpec spec;
    spec.inChannels = 1;
    spec.inHeight = 4;
    spec.inWidth = 4;
    spec.outChannels = 1;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 0;

    Rng rng(31);
    VariationalConv2d layer(spec, rng, -0.5f);
    const auto x = randomVector(spec.inputSize(), rng);

    // Direct sampling: estimate per-position mean/std over many draws.
    const int reps = 4000;
    const std::size_t outputs = spec.outputSize();
    std::vector<double> sum(outputs, 0.0), sum2(outputs, 0.0);
    VariationalConvScratch s;
    std::vector<float> out(outputs);
    Rng eps_rng(37);
    auto eps = [&]() { return eps_rng.gaussian(); };
    for (int r = 0; r < reps; ++r) {
        layer.sampleForward(x.data(), out.data(), s, eps);
        for (std::size_t i = 0; i < outputs; ++i) {
            sum[i] += out[i];
            sum2[i] += static_cast<double>(out[i]) * out[i];
        }
    }

    // LRT's analytic mean/std per position.
    VariationalConvScratch s2;
    Rng lrt_rng(41);
    layer.lrtForward(x.data(), out.data(), s2, lrt_rng);

    for (std::size_t i = 0; i < outputs; ++i) {
        const double mean = sum[i] / reps;
        const double var = sum2[i] / reps - mean * mean;
        // Mean must match exactly (same linear function of mu).
        // Std agrees because each weight appears once per position here
        // (independent patches); tolerance covers MC noise.
        const double lrt_mean =
            out[i] - s2.activationStd[i] * s2.activationEps[i];
        EXPECT_NEAR(mean, lrt_mean, 0.05) << "mean at " << i;
        EXPECT_NEAR(std::sqrt(var), s2.activationStd[i], 0.05)
            << "std at " << i;
    }
}

namespace
{

void
makeBarImages(std::size_t count, std::size_t side, Rng &rng,
              std::vector<float> &features, std::vector<int> &labels)
{
    features.assign(count * side * side, 0.0f);
    labels.assign(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(rng.uniformInt(2));
        labels[i] = label;
        float *img = features.data() + i * side * side;
        const std::size_t bar = rng.uniformInt(side);
        for (std::size_t j = 0; j < side; ++j) {
            if (label == 0)
                img[bar * side + j] = 1.0f;
            else
                img[j * side + bar] = 1.0f;
        }
        for (std::size_t j = 0; j < side * side; ++j)
            img[j] += static_cast<float>(rng.uniform(-0.1, 0.1));
    }
}

nn::ConvNetConfig
tinyBcnnConfig()
{
    nn::ConvNetConfig cfg;
    cfg.imageHeight = 8;
    cfg.imageWidth = 8;
    cfg.blocks = {{4, 3, 1, 1, true, 2}};
    cfg.denseHidden = {16};
    cfg.numClasses = 2;
    return cfg;
}

} // namespace

TEST(BayesianConvNet, ParamRoundTrip)
{
    Rng rng(43);
    BayesianConvNet net(tinyBcnnConfig(), rng);

    std::vector<float> params;
    net.gatherParams(params);
    EXPECT_EQ(params.size(), net.paramCount());

    std::vector<float> mutated(params);
    for (auto &p : mutated)
        p += 0.125f;
    net.scatterParams(mutated);
    std::vector<float> back;
    net.gatherParams(back);
    for (std::size_t i = 0; i < params.size(); ++i)
        EXPECT_FLOAT_EQ(back[i], params[i] + 0.125f);
}

TEST(BayesianConvNet, McPredictIsDistribution)
{
    Rng rng(47);
    BayesianConvNet net(tinyBcnnConfig(), rng);
    BcnnWorkspace ws = net.makeWorkspace();

    Rng data(53);
    std::vector<float> x(net.inputDim());
    for (auto &v : x)
        v = static_cast<float>(data.uniform(0, 1));

    std::vector<float> probs(net.outputDim());
    Rng eps_rng(59);
    auto eps = [&]() { return eps_rng.gaussian(); };
    net.mcPredict(x.data(), 16, probs.data(), ws, eps);
    double total = 0.0;
    for (float p : probs) {
        EXPECT_GE(p, 0.0f);
        EXPECT_LE(p, 1.0f);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(BayesianConvNet, MeanForwardMatchesZeroEpsSample)
{
    Rng rng(61);
    BayesianConvNet net(tinyBcnnConfig(), rng);
    BcnnWorkspace ws = net.makeWorkspace();

    Rng data(67);
    std::vector<float> x(net.inputDim());
    for (auto &v : x)
        v = static_cast<float>(data.uniform(0, 1));

    std::vector<float> mean(net.outputDim()), sampled(net.outputDim());
    net.meanForward(x.data(), mean.data(), ws);
    auto zero_eps = []() { return 0.0; };
    net.sampledForward(x.data(), sampled.data(), ws, zero_eps);
    for (std::size_t i = 0; i < mean.size(); ++i)
        EXPECT_NEAR(mean[i], sampled[i], 1e-4f);
}

TEST(BayesianConvNet, KlDecreasesTowardPrior)
{
    Rng rng(71);
    BayesianConvNet net(tinyBcnnConfig(), rng);
    const double kl0 = net.klDivergence(0.3f);
    EXPECT_GT(kl0, 0.0);

    // Shrink all mu toward zero: KL must drop.
    std::vector<float> params;
    net.gatherParams(params);
    // First conv block: mu-weight then mu-bias come first in the flat
    // layout; scaling the entire vector's mu halves is awkward, so just
    // verify the dominant effect by scaling everything toward the
    // KL-minimizing point for sigma<prior: smaller |mu| lowers KL.
    BayesianConvNet net2(tinyBcnnConfig(), rng);
    net2.scatterParams(params);
    auto &conv = const_cast<VariationalConv2d &>(net2.convLayers()[0]);
    for (auto &m : conv.muWeight().data())
        m *= 0.1f;
    EXPECT_LT(net2.klDivergence(0.3f), kl0);
}

TEST(BayesianConvNet, DirectAndLrtTrainingBothLearn)
{
    Rng data_rng(73);
    std::vector<float> features;
    std::vector<int> labels;
    makeBarImages(160, 8, data_rng, features, labels);

    nn::DataView train;
    train.count = 128;
    train.dim = 64;
    train.features = features.data();
    train.labels = labels.data();
    nn::DataView test;
    test.count = 32;
    test.dim = 64;
    test.features = features.data() + 128 * 64;
    test.labels = labels.data() + 128;

    for (bool lrt : {true, false}) {
        Rng init(79);
        BayesianConvNet net(tinyBcnnConfig(), init, -4.0f);
        BnnTrainConfig cfg;
        cfg.epochs = lrt ? 12 : 8;
        cfg.batchSize = 16;
        cfg.learningRate = 5e-3f;
        cfg.priorSigma = 0.5f;
        cfg.klWeight = 0.1f;
        cfg.useLocalReparameterization = lrt;
        cfg.evalSamples = 8;
        cfg.seed = 83;
        const auto history = trainBcnn(net, train, cfg);
        EXPECT_LT(history.trainLoss.back(), history.trainLoss.front())
            << "estimator lrt=" << lrt;
        const double acc = evaluateBcnnAccuracy(net, test, 8, 89);
        EXPECT_GE(acc, 0.8) << "estimator lrt=" << lrt;
    }
}

TEST(BayesianConvNet, EntropyHigherOnNoiseThanOnPattern)
{
    Rng data_rng(97);
    std::vector<float> features;
    std::vector<int> labels;
    makeBarImages(192, 8, data_rng, features, labels);

    nn::DataView train;
    train.count = 160;
    train.dim = 64;
    train.features = features.data();
    train.labels = labels.data();

    Rng init(101);
    BayesianConvNet net(tinyBcnnConfig(), init, -4.0f);
    BnnTrainConfig cfg;
    cfg.epochs = 12;
    cfg.batchSize = 16;
    cfg.learningRate = 5e-3f;
    cfg.priorSigma = 0.5f;
    cfg.klWeight = 0.1f;
    cfg.seed = 103;
    trainBcnn(net, train, cfg);

    BcnnWorkspace ws = net.makeWorkspace();
    Rng eval_rng(107);
    // Average entropy over several training patterns vs. pure noise.
    double pattern_entropy = 0.0;
    for (int i = 0; i < 8; ++i) {
        pattern_entropy += net.predictiveEntropy(
            features.data() + i * 64, 24, ws, eval_rng);
    }
    pattern_entropy /= 8;

    double noise_entropy = 0.0;
    Rng noise_rng(109);
    std::vector<float> noise(64);
    for (int i = 0; i < 8; ++i) {
        for (auto &v : noise)
            v = static_cast<float>(noise_rng.uniform(-1, 1));
        noise_entropy += net.predictiveEntropy(noise.data(), 24, ws,
                                               eval_rng);
    }
    noise_entropy /= 8;

    EXPECT_GT(noise_entropy, pattern_entropy);
}
