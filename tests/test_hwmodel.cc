/**
 * @file
 * Tests for the Cyclone V resource/power/frequency model: primitive
 * sanity, block-RAM geometry, DSP packing, and — the reproduction
 * anchors — proximity to the paper's Tables 2 and 4 for the calibrated
 * configurations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hwmodel/cyclonev.hh"
#include "hwmodel/grng_hw.hh"
#include "hwmodel/network_hw.hh"

using namespace vibnn::hw;

namespace
{

/** Relative-error helper for calibration checks. */
double
relErr(double modeled, double paper)
{
    return std::fabs(modeled - paper) / paper;
}

} // anonymous namespace

TEST(Primitives, AdderScalesWithWidth)
{
    EXPECT_GT(adderAlms(16), adderAlms(8));
    EXPECT_NEAR(adderAlms(8), 4.4, 0.5);
}

TEST(Primitives, ParallelCounterTracksFullAdders)
{
    // 127-input PC ~ 120 full adders (the paper's figure).
    EXPECT_NEAR(parallelCounterAlms(127), 0.75 * 120 + 0.5 * 7, 1.0);
    EXPECT_EQ(parallelCounterAlms(1), 0.0);
}

TEST(Primitives, MuxGrowsWithWays)
{
    EXPECT_GT(muxAlms(8, 8), muxAlms(8, 4));
    EXPECT_EQ(muxAlms(8, 1), 0.0);
}

TEST(Primitives, BlockRamGeometry)
{
    // 255 x 64 needs two 40-bit stripes.
    const auto r = blockRam(255, 64);
    EXPECT_EQ(r.memoryBits, 255 * 64);
    EXPECT_EQ(r.ramBlocks, 2);

    // 4096 x 16: one stripe, 640 rows per block -> 7 blocks.
    const auto r2 = blockRam(4096, 16);
    EXPECT_EQ(r2.ramBlocks, 7);

    // Tiny RAM still costs one block.
    EXPECT_EQ(blockRam(16, 8).ramBlocks, 1);
}

TEST(Primitives, DspPacking)
{
    // Three 9x9 multipliers per DSP: 1024 multipliers -> 342 blocks,
    // exactly the full device (Table 4's 100% DSP row).
    EXPECT_EQ(dspBlocks(1024), 342);
    EXPECT_EQ(dspBlocks(3), 1);
    EXPECT_EQ(dspBlocks(4), 2);
}

TEST(Primitives, FmaxDecreasesWithDepth)
{
    EXPECT_GT(stageFmaxMhz(2, 8), stageFmaxMhz(3, 8));
    EXPECT_GT(stageFmaxMhz(2, 8), stageFmaxMhz(2, 32));
}

TEST(Primitives, PowerMonotoneInResources)
{
    ResourceEstimate small;
    small.alms = 100;
    ResourceEstimate big;
    big.alms = 10000;
    big.ramBlocks = 100;
    EXPECT_GT(powerMw(big, 100.0), powerMw(small, 100.0));
    // Static floor at zero frequency.
    EXPECT_NEAR(powerMw(big, 0.0), powerMw(small, 0.0), 1e-9);
}

TEST(Table2, RlfGrngNearPaper)
{
    // Paper Table 2, RLF-GRNG column: 831 ALMs, 1780 registers,
    // 16,384 memory bits, 212.95 MHz, 528.69 mW.
    RlfGrngHwConfig config;
    const auto d = rlfGrngEstimate(config);
    const auto t = d.total();
    EXPECT_LT(relErr(t.alms, 831), 0.15);
    EXPECT_LT(relErr(t.registers, 1780), 0.15);
    EXPECT_LT(relErr(static_cast<double>(t.memoryBits), 16384), 0.05);
    EXPECT_LT(relErr(d.fmaxMhz, 212.95), 0.05);
    EXPECT_LT(relErr(d.powerMw, 528.69), 0.05);
    EXPECT_EQ(t.dsps, 0);
}

TEST(Table2, BnnWallaceNearPaper)
{
    // Paper Table 2, BNNWallace column: 401 ALMs, 1166 registers,
    // 1,048,576 bits, 103 blocks, 117.63 MHz, 560.25 mW.
    BnnWallaceHwConfig config;
    const auto d = bnnWallaceEstimate(config);
    const auto t = d.total();
    EXPECT_LT(relErr(t.alms, 401), 0.4);
    EXPECT_LT(relErr(t.registers, 1166), 0.2);
    EXPECT_EQ(t.memoryBits, 1048576);
    EXPECT_LT(relErr(t.ramBlocks, 103), 0.15);
    EXPECT_LT(relErr(d.fmaxMhz, 117.63), 0.05);
    EXPECT_LT(relErr(d.powerMw, 560.25), 0.05);
}

TEST(Table2, RlfFasterAndLeanerMemory)
{
    // The comparison Table 3 summarizes: RLF has (much) lower memory
    // and higher clock; Wallace has fewer ALMs.
    const auto rlf = rlfGrngEstimate({});
    const auto wal = bnnWallaceEstimate({});
    EXPECT_GT(rlf.fmaxMhz, wal.fmaxMhz);
    EXPECT_LT(rlf.total().memoryBits, wal.total().memoryBits / 10);
    EXPECT_GT(rlf.total().alms, wal.total().alms);
}

TEST(Table4, FullNetworksNearPaper)
{
    // Paper Table 4: RLF-based 98,006 ALMs / 88,720 regs / 4,572,928
    // bits; Wallace-based 91,126 / 78,800 / 4,880,128; both 342 DSPs.
    NetworkHwConfig config;
    config.grng = GrngKind::Rlf;
    const auto rlf = networkEstimate(config);
    config.grng = GrngKind::BnnWallace;
    const auto wal = networkEstimate(config);

    EXPECT_LT(relErr(rlf.total().alms, 98006), 0.10);
    EXPECT_LT(relErr(wal.total().alms, 91126), 0.10);
    EXPECT_LT(relErr(rlf.total().registers, 88720), 0.10);
    EXPECT_LT(relErr(wal.total().registers, 78800), 0.10);
    EXPECT_LT(
        relErr(static_cast<double>(rlf.total().memoryBits), 4572928),
        0.05);
    EXPECT_LT(
        relErr(static_cast<double>(wal.total().memoryBits), 4880128),
        0.05);
    EXPECT_EQ(rlf.total().dsps, 342);
    EXPECT_EQ(wal.total().dsps, 342);

    // RLF-based uses more ALMs than Wallace-based (GRNG difference).
    EXPECT_GT(rlf.total().alms, wal.total().alms);
}

TEST(Table4, FitsOnDevice)
{
    for (auto kind : {GrngKind::Rlf, GrngKind::BnnWallace}) {
        NetworkHwConfig config;
        config.grng = kind;
        const auto d = networkEstimate(config);
        EXPECT_LE(d.total().alms, CycloneVDevice::totalAlms);
        EXPECT_LE(d.total().memoryBits,
                  CycloneVDevice::totalMemoryBits);
        EXPECT_LE(d.total().ramBlocks, CycloneVDevice::totalRamBlocks);
        EXPECT_LE(d.total().dsps, CycloneVDevice::totalDsps);
    }
}

TEST(Table5, EnergyDirectionMatchesPaper)
{
    // Paper Table 5: same throughput for both designs; RLF-based more
    // energy-efficient (52,694.8 vs 37,722.1 images/J).
    NetworkHwConfig config;
    config.grng = GrngKind::Rlf;
    const auto rlf = networkEstimate(config);
    config.grng = GrngKind::BnnWallace;
    const auto wal = networkEstimate(config);

    EXPECT_DOUBLE_EQ(rlf.fmaxMhz, wal.fmaxMhz); // shared system clock
    EXPECT_LT(rlf.powerMw, wal.powerMw);

    const auto perf_rlf = performanceFromCycles(rlf, 322);
    const auto perf_wal = performanceFromCycles(wal, 322);
    EXPECT_GT(perf_rlf.imagesPerJoule, perf_wal.imagesPerJoule);
    // Same order of magnitude as the paper's 321,543 images/s.
    EXPECT_GT(perf_rlf.imagesPerSecond, 1e5);
    EXPECT_LT(perf_rlf.imagesPerSecond, 1e6);
}

TEST(PerfModel, Identities)
{
    NetworkHwConfig config;
    const auto d = networkEstimate(config);
    const auto p = performanceFromCycles(d, 500);
    EXPECT_NEAR(p.imagesPerSecond, d.fmaxMhz * 1e6 / 500, 1e-6);
    EXPECT_NEAR(p.imagesPerJoule,
                p.imagesPerSecond / (d.powerMw / 1000.0), 1e-6);
}

TEST(Estimates, ComponentsSumToTotal)
{
    NetworkHwConfig config;
    const auto d = networkEstimate(config);
    ResourceEstimate manual;
    for (const auto &c : d.components)
        manual += c.resources;
    EXPECT_DOUBLE_EQ(manual.alms, d.total().alms);
    EXPECT_EQ(manual.memoryBits, d.total().memoryBits);
    EXPECT_GE(d.components.size(), 6u); // itemized, not a blob
}

TEST(Estimates, ScaleWithParallelism)
{
    RlfGrngHwConfig small;
    small.outputs = 16;
    RlfGrngHwConfig large;
    large.outputs = 256;
    EXPECT_GT(rlfGrngEstimate(large).total().alms,
              rlfGrngEstimate(small).total().alms * 8);
}
