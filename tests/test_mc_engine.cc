/**
 * @file
 * Tests for the parallel Monte-Carlo inference engine: bit-exact
 * reproduction of its seed schedule on a serial simulator, bit-identical
 * results across thread counts, aggregate counter identities against
 * serial Simulator::classify, and exact agreement with the serial path
 * when sigma = 0 (where MC sampling is a no-op).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/mc_engine.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_mlp.hh"
#include "grng/registry.hh"

using namespace vibnn;
using namespace vibnn::accel;

namespace
{

bnn::BayesianMlp
makeNet(const std::vector<std::size_t> &sizes, std::uint64_t seed)
{
    Rng rng(seed);
    return bnn::BayesianMlp(sizes, rng);
}

AcceleratorConfig
smallConfig(int mc_samples)
{
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = mc_samples;
    return config;
}

std::vector<float>
makeInput(std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> x(dim);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform());
    return x;
}

} // anonymous namespace

TEST(McEngine, MatchesSerialSeedScheduleEmulation)
{
    // Every (image, sample) unit runs with the stream seeded by
    // streamSeed(); replaying that schedule on one serial Simulator
    // must reproduce the engine's per-sample raw outputs bit for bit —
    // the "parallel classify matches serial classify" contract.
    auto net = makeNet({32, 16, 4}, 3);
    const auto config = smallConfig(6);
    const auto q = quantizeNetwork(net, config);
    const auto x = makeInput(32, 11);

    McEngineConfig mc;
    mc.threads = 3;
    mc.generatorId = "rlf";
    mc.seedBase = 77;
    McEngine engine(q, config, mc);
    const McResult parallel = engine.classifyDetailed(x.data());
    ASSERT_EQ(parallel.rawSamples.size(), 6u);

    auto placeholder = grng::makeGenerator("rlf", 1);
    Simulator sim(q, config, placeholder.get());
    for (int s = 0; s < config.mcSamples; ++s) {
        auto gen = grng::makeGenerator(
            "rlf", McEngine::streamSeed(77, 0,
                                        static_cast<std::uint64_t>(s)));
        sim.setGenerator(gen.get());
        const auto raw = sim.runPass(x.data());
        EXPECT_EQ(raw, parallel.rawSamples[s]) << "sample " << s;
        sim.setGenerator(placeholder.get());
    }
}

TEST(McEngine, BitIdenticalAcrossThreadCounts)
{
    auto net = makeNet({32, 16, 4}, 5);
    const auto config = smallConfig(8);
    const auto q = quantizeNetwork(net, config);
    const auto x = makeInput(32, 13);

    McEngineConfig mc;
    mc.generatorId = "bnnwallace";
    mc.seedBase = 123;

    McResult results[3];
    const std::size_t thread_counts[3] = {1, 2, 5};
    for (int i = 0; i < 3; ++i) {
        auto cfg = mc;
        cfg.threads = thread_counts[i];
        McEngine engine(q, config, cfg);
        results[i] = engine.classifyDetailed(x.data());
    }

    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(results[i].predicted, results[0].predicted);
        ASSERT_EQ(results[i].rawSamples.size(),
                  results[0].rawSamples.size());
        for (std::size_t s = 0; s < results[0].rawSamples.size(); ++s)
            EXPECT_EQ(results[i].rawSamples[s],
                      results[0].rawSamples[s])
                << "threads=" << thread_counts[i] << " sample " << s;
        ASSERT_EQ(results[i].probs.size(), results[0].probs.size());
        for (std::size_t c = 0; c < results[0].probs.size(); ++c)
            EXPECT_EQ(results[i].probs[c], results[0].probs[c])
                << "threads=" << thread_counts[i] << " class " << c;
    }
}

TEST(McEngine, BatchBitIdenticalAcrossThreadCounts)
{
    auto net = makeNet({32, 16, 4}, 7);
    const auto config = smallConfig(4);
    const auto q = quantizeNetwork(net, config);

    const std::size_t count = 5, dim = 32;
    std::vector<float> xs(count * dim);
    Rng rng(17);
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform());

    std::vector<std::size_t> preds[2];
    std::vector<float> probs[2];
    const std::size_t thread_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        McEngineConfig mc;
        mc.threads = thread_counts[i];
        mc.seedBase = 9;
        McEngine engine(q, config, mc);
        probs[i].resize(count * q.outputDim());
        preds[i] = engine.classifyBatch(xs.data(), count, dim,
                                        probs[i].data());
    }
    EXPECT_EQ(preds[0], preds[1]);
    for (std::size_t i = 0; i < probs[0].size(); ++i)
        EXPECT_EQ(probs[0][i], probs[1][i]) << "prob " << i;
}

TEST(McEngine, BatchImageZeroMatchesSingleClassify)
{
    // Image index 0 of a batch uses the same stream seeds as a
    // single-image classify, so the two must agree exactly.
    auto net = makeNet({32, 16, 4}, 19);
    const auto config = smallConfig(4);
    const auto q = quantizeNetwork(net, config);
    const auto x = makeInput(32, 23);

    McEngineConfig mc;
    mc.threads = 2;
    mc.seedBase = 31;
    McEngine engine(q, config, mc);

    std::vector<float> single_probs(q.outputDim());
    const std::size_t single = engine.classify(x.data(),
                                               single_probs.data());

    McEngine batch_engine(q, config, mc);
    std::vector<float> batch_probs(q.outputDim());
    const auto preds = batch_engine.classifyBatch(x.data(), 1, 32,
                                                  batch_probs.data());
    EXPECT_EQ(preds.front(), single);
    for (std::size_t i = 0; i < single_probs.size(); ++i)
        EXPECT_EQ(batch_probs[i], single_probs[i]);
}

TEST(McEngine, AggregateCountersMatchSerialClassify)
{
    // grnSamples (eps consumed) and macs are functions of the network
    // geometry and pass count only, so the parallel engine must report
    // exactly what a serial Simulator::classify reports.
    auto net = makeNet({32, 16, 4}, 29);
    const auto config = smallConfig(5);
    const auto q = quantizeNetwork(net, config);
    const auto x = makeInput(32, 37);

    auto gen = grng::makeGenerator("rlf", 41);
    Simulator serial(q, config, gen.get());
    serial.classify(x.data());

    McEngineConfig mc;
    mc.threads = 3;
    mc.seedBase = 43;
    McEngine engine(q, config, mc);
    engine.classify(x.data());
    const CycleStats merged = engine.stats();

    EXPECT_EQ(merged.grnSamples, serial.stats().grnSamples);
    EXPECT_EQ(merged.macs, serial.stats().macs);
    EXPECT_EQ(merged.images, serial.stats().images);
    EXPECT_EQ(merged.totalCycles, serial.stats().totalCycles);
    EXPECT_EQ(merged.ifmemReads, serial.stats().ifmemReads);
    EXPECT_EQ(merged.wpmemReads, serial.stats().wpmemReads);
}

TEST(McEngine, SigmaZeroMatchesSerialClassifyExactly)
{
    // With sigma = 0 the eps stream is irrelevant, so the parallel
    // engine and the serial simulator must produce identical
    // probabilities — seed schedules and all.
    auto net = makeNet({16, 8, 3}, 47);
    for (auto &layer : net.layers()) {
        for (auto &rho : layer.rhoWeight().data())
            rho = -40.0f;
        for (auto &rho : layer.rhoBias())
            rho = -40.0f;
    }
    AcceleratorConfig config;
    config.peSets = 1;
    config.pesPerSet = 4;
    config.mcSamples = 3;
    const auto q = quantizeNetwork(net, config);
    const auto x = makeInput(16, 53);

    auto gen = grng::makeGenerator("rlf", 59);
    Simulator serial(q, config, gen.get());
    std::vector<float> serial_probs(3);
    const std::size_t serial_pred =
        serial.classify(x.data(), serial_probs.data());

    McEngineConfig mc;
    mc.threads = 2;
    mc.seedBase = 61;
    McEngine engine(q, config, mc);
    std::vector<float> engine_probs(3);
    const std::size_t engine_pred =
        engine.classify(x.data(), engine_probs.data());

    EXPECT_EQ(engine_pred, serial_pred);
    for (int i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(engine_probs[i], serial_probs[i]);
}

TEST(McEngine, ProbabilitiesNearSerialClassify)
{
    // Different eps streams, same distribution: with enough MC samples
    // the averaged probabilities of the parallel engine and the serial
    // simulator converge. Loose bound — this guards against gross
    // stream-handling bugs (reused or skipped samples), not MC noise.
    auto net = makeNet({32, 16, 4}, 67);
    const auto config = smallConfig(32);
    const auto q = quantizeNetwork(net, config);
    const auto x = makeInput(32, 71);

    auto gen = grng::makeGenerator("rlf", 73);
    Simulator serial(q, config, gen.get());
    std::vector<float> serial_probs(4);
    serial.classify(x.data(), serial_probs.data());

    McEngineConfig mc;
    mc.threads = 2;
    mc.seedBase = 79;
    McEngine engine(q, config, mc);
    std::vector<float> engine_probs(4);
    engine.classify(x.data(), engine_probs.data());

    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(engine_probs[i], serial_probs[i], 0.2f) << "class "
                                                            << i;
}

TEST(McEngine, RepeatedRunsAreDeterministic)
{
    auto net = makeNet({32, 16, 4}, 83);
    const auto config = smallConfig(4);
    const auto q = quantizeNetwork(net, config);
    const auto x = makeInput(32, 89);

    McEngineConfig mc;
    mc.threads = 0; // size from the global pool
    mc.seedBase = 97;
    McEngine engine(q, config, mc);
    const McResult a = engine.classifyDetailed(x.data());
    const McResult b = engine.classifyDetailed(x.data());
    EXPECT_EQ(a.predicted, b.predicted);
    for (std::size_t s = 0; s < a.rawSamples.size(); ++s)
        EXPECT_EQ(a.rawSamples[s], b.rawSamples[s]);
    for (std::size_t i = 0; i < a.probs.size(); ++i)
        EXPECT_EQ(a.probs[i], b.probs[i]);
}

TEST(McEngine, StreamSeedsAreDistinct)
{
    // Unit coordinates must map to distinct stream seeds (collisions
    // would correlate MC samples).
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t image = 0; image < 64; ++image)
        for (std::uint64_t sample = 0; sample < 64; ++sample)
            seeds.push_back(McEngine::streamSeed(5, image, sample));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}
