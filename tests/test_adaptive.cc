/**
 * @file
 * Tests for adaptive early-exit Monte-Carlo: the determinism contract
 * (threshold=off bit-exact with the fixed-T path; fixed threshold
 * bit-identical across thread counts and batch compositions), the
 * statistical-equivalence guarantee on synth-MNIST (accuracy within
 * tolerance of fixed-T at a mean achieved T strictly below the
 * budget), and the serving-layer adaptive/anytime mode (achieved-T and
 * exit-reason reporting, sync/async equivalence, validation).
 *
 * Engine and session GRNGs honor VIBNN_SERVE_GRNG so the CI philox
 * pass exercises the adaptive path on the splittable stream too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "bnn/bayesian_mlp.hh"
#include "bnn/bnn_trainer.hh"
#include "common/env.hh"
#include "common/rng.hh"
#include "data/synth_mnist.hh"
#include "serve/session.hh"

using namespace vibnn;
using namespace vibnn::accel;

namespace
{

/** The stream design under test — "rlf" unless the CI matrix pins the
 *  splittable philox serving pass via VIBNN_SERVE_GRNG. */
std::string
grngId()
{
    return envString("VIBNN_SERVE_GRNG", "rlf");
}

AcceleratorConfig
smallConfig(int mc_samples)
{
    AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.mcSamples = mc_samples;
    return config;
}

QuantizedProgram
mlpProgram(const AcceleratorConfig &config, std::uint64_t seed,
           float rho_init = -3.0f)
{
    Rng rng(seed);
    bnn::BayesianMlp net({24, 16, 4}, rng, rho_init);
    return compile(net, config);
}

std::vector<float>
randomBatch(std::size_t count, std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(count * dim);
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform());
    return xs;
}

McEngineConfig
batchedEngineConfig(std::size_t threads, std::uint64_t seed = 101)
{
    McEngineConfig mc;
    mc.threads = threads;
    mc.generatorId = grngId();
    mc.seedBase = seed;
    mc.backendId = "batched";
    mc.schedule = McSchedule::PerRound;
    return mc;
}

} // anonymous namespace

// ------------------------------------------------------- engine layer

TEST(AdaptiveMc, ThresholdOffReproducesFixedTBitExactly)
{
    // The threshold=off contract: options.enabled = false must route
    // through the exact fixed-T code path — probs, sampleProbs and
    // predictions byte for byte.
    const auto config = smallConfig(8);
    const auto program = mlpProgram(config, 7);
    const auto xs = randomBatch(6, program.inputDim(), 23);

    McEngine engine(program, config, batchedEngineConfig(2));
    const auto fixed =
        engine.classifyBatchDetailed(xs.data(), 6, program.inputDim());

    McAdaptiveOptions opts;
    opts.enabled = false;
    McEngine engine2(program, config, batchedEngineConfig(2));
    const auto off = engine2.classifyBatchAdaptive(
        xs.data(), 6, program.inputDim(), opts);

    EXPECT_EQ(off.predicted, fixed.predicted);
    ASSERT_EQ(off.probs.size(), fixed.probs.size());
    for (std::size_t i = 0; i < fixed.probs.size(); ++i)
        EXPECT_EQ(off.probs[i], fixed.probs[i]) << "prob " << i;
    ASSERT_EQ(off.sampleProbs.size(), fixed.sampleProbs.size());
    for (std::size_t i = 0; i < fixed.sampleProbs.size(); ++i)
        EXPECT_EQ(off.sampleProbs[i], fixed.sampleProbs[i])
            << "sample prob " << i;
    for (const int achieved : off.achieved)
        EXPECT_EQ(achieved, config.mcSamples);
    for (const auto reason : off.exitReason)
        EXPECT_EQ(reason, McExitReason::Budget);
    EXPECT_DOUBLE_EQ(off.meanRounds,
                     static_cast<double>(config.mcSamples));
}

TEST(AdaptiveMc, BitIdenticalAcrossThreadCounts)
{
    const auto config = smallConfig(24);
    const auto program = mlpProgram(config, 11);
    const std::size_t count = 7;
    const auto xs = randomBatch(count, program.inputDim(), 29);

    McAdaptiveOptions opts;
    opts.chunk = 3;
    opts.test.confidence = 0.99;

    McAdaptiveBatchResult results[3];
    const std::size_t thread_counts[3] = {1, 2, 5};
    for (int i = 0; i < 3; ++i) {
        McEngine engine(program, config,
                        batchedEngineConfig(thread_counts[i]));
        results[i] = engine.classifyBatchAdaptive(
            xs.data(), count, program.inputDim(), opts);
    }

    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(results[i].predicted, results[0].predicted)
            << "threads=" << thread_counts[i];
        EXPECT_EQ(results[i].achieved, results[0].achieved)
            << "threads=" << thread_counts[i];
        EXPECT_EQ(results[i].exitReason, results[0].exitReason)
            << "threads=" << thread_counts[i];
        ASSERT_EQ(results[i].probs.size(), results[0].probs.size());
        for (std::size_t j = 0; j < results[0].probs.size(); ++j)
            EXPECT_EQ(results[i].probs[j], results[0].probs[j])
                << "threads=" << thread_counts[i] << " prob " << j;
        ASSERT_EQ(results[i].sampleProbs.size(),
                  results[0].sampleProbs.size());
        for (std::size_t j = 0; j < results[0].sampleProbs.size(); ++j)
            EXPECT_EQ(results[i].sampleProbs[j],
                      results[0].sampleProbs[j])
                << "threads=" << thread_counts[i];
    }
}

TEST(AdaptiveMc, BitIdenticalAcrossBatchCompositions)
{
    // An image's adaptive result depends only on its own row: serving
    // it alone, in a sub-batch, or in the full batch yields the exact
    // same probabilities, achieved rounds and exit reason. (Rounds are
    // seeded by GLOBAL index and weight draws are batch-independent,
    // so neighbours — present or already retired — are invisible.)
    const auto config = smallConfig(16);
    const auto program = mlpProgram(config, 13);
    const std::size_t count = 6;
    const std::size_t dim = program.inputDim();
    const std::size_t out_dim = program.outputDim();
    const auto xs = randomBatch(count, dim, 31);

    McAdaptiveOptions opts;
    opts.chunk = 2;
    opts.test.confidence = 0.99;

    McEngine engine(program, config, batchedEngineConfig(2));
    const auto full = engine.classifyBatchAdaptive(xs.data(), count,
                                                   dim, opts);

    // Sub-batch: images 2..5 on a fresh engine.
    McEngine sub_engine(program, config, batchedEngineConfig(2));
    const auto sub = sub_engine.classifyBatchAdaptive(
        xs.data() + 2 * dim, count - 2, dim, opts);
    for (std::size_t i = 0; i < count - 2; ++i) {
        const std::size_t image = i + 2;
        EXPECT_EQ(sub.predicted[i], full.predicted[image]);
        EXPECT_EQ(sub.achieved[i], full.achieved[image]);
        EXPECT_EQ(sub.exitReason[i], full.exitReason[image]);
        for (std::size_t c = 0; c < out_dim; ++c)
            EXPECT_EQ(sub.probs[i * out_dim + c],
                      full.probs[image * out_dim + c])
                << "image " << image << " class " << c;
    }

    // Singleton batches.
    for (std::size_t image = 0; image < count; ++image) {
        McEngine one_engine(program, config, batchedEngineConfig(1));
        const auto one = one_engine.classifyBatchAdaptive(
            xs.data() + image * dim, 1, dim, opts);
        EXPECT_EQ(one.predicted[0], full.predicted[image]);
        EXPECT_EQ(one.achieved[0], full.achieved[image]);
        for (std::size_t c = 0; c < out_dim; ++c)
            EXPECT_EQ(one.probs[c], full.probs[image * out_dim + c])
                << "image " << image << " class " << c;
    }
}

TEST(AdaptiveMc, RetainedSamplesMatchFixedTStreams)
{
    // The eps-stream pin: whatever rounds an image DOES run under
    // early exit carry the exact per-sample distributions of the
    // fixed-T run at the same seeds — retirement of neighbours never
    // perturbs a survivor's stream.
    const auto config = smallConfig(16);
    const auto program = mlpProgram(config, 17);
    const std::size_t count = 5;
    const std::size_t dim = program.inputDim();
    const std::size_t out_dim = program.outputDim();
    const auto xs = randomBatch(count, dim, 37);

    McEngine fixed_engine(program, config, batchedEngineConfig(2));
    const auto fixed =
        fixed_engine.classifyBatchDetailed(xs.data(), count, dim);

    McAdaptiveOptions opts;
    opts.chunk = 2;
    opts.test.confidence = 0.95; // eager exits -> plenty of retirement
    McEngine engine(program, config, batchedEngineConfig(2));
    const auto adaptive =
        engine.classifyBatchAdaptive(xs.data(), count, dim, opts);

    const std::size_t samples =
        static_cast<std::size_t>(config.mcSamples);
    for (std::size_t image = 0; image < count; ++image) {
        const int achieved = adaptive.achieved[image];
        ASSERT_LE(achieved, config.mcSamples);
        for (int s = 0; s < achieved; ++s) {
            for (std::size_t c = 0; c < out_dim; ++c) {
                const std::size_t at =
                    (image * samples + static_cast<std::size_t>(s)) *
                        out_dim +
                    c;
                EXPECT_EQ(adaptive.sampleProbs[at],
                          fixed.sampleProbs[at])
                    << "image " << image << " sample " << s
                    << " class " << c;
            }
        }
        // Rows past the achieved count stay zeroed.
        for (std::size_t s = static_cast<std::size_t>(achieved);
             s < samples; ++s)
            for (std::size_t c = 0; c < out_dim; ++c)
                EXPECT_EQ(
                    adaptive.sampleProbs[(image * samples + s) *
                                             out_dim +
                                         c],
                    0.0f);
    }
}

TEST(AdaptiveMc, StatisticallyEquivalentBelowBudgetOnSynthMnist)
{
    // The headline guarantee: at budget T=32 on a trained synth-MNIST
    // model, early exit must match fixed-T accuracy within tolerance
    // while spending strictly fewer rounds on average.
    data::SynthMnistConfig synth;
    synth.trainCount = 240;
    synth.testCount = 120;
    synth.seed = 41;
    const auto ds = data::makeSynthMnist(synth);

    Rng rng(43);
    bnn::BayesianMlp net({data::kMnistPixels, 16, 10}, rng, -3.0f);
    bnn::BnnTrainConfig train_cfg;
    train_cfg.epochs = 2;
    train_cfg.seed = 47;
    bnn::trainBnn(net, ds.train.view(), train_cfg);

    const auto config = smallConfig(32);
    const auto program = compile(net, config);
    const auto view = ds.test.view();

    McEngine fixed_engine(program, config, batchedEngineConfig(0, 53));
    const auto fixed = fixed_engine.classifyBatchDetailed(
        view.features, view.count, view.dim, /*keep_sample_probs=*/false);

    McAdaptiveOptions opts; // defaults: confidence 0.999, minSamples 4
    McEngine engine(program, config, batchedEngineConfig(0, 53));
    const auto adaptive = engine.classifyBatchAdaptive(
        view.features, view.count, view.dim, opts,
        /*keep_sample_probs=*/false);

    std::size_t fixed_correct = 0, adaptive_correct = 0;
    for (std::size_t i = 0; i < view.count; ++i) {
        const auto label = static_cast<std::size_t>(view.labels[i]);
        fixed_correct += fixed.predicted[i] == label;
        adaptive_correct += adaptive.predicted[i] == label;
    }
    const double fixed_acc =
        static_cast<double>(fixed_correct) / view.count;
    const double adaptive_acc =
        static_cast<double>(adaptive_correct) / view.count;

    EXPECT_LT(adaptive.meanRounds, 32.0) << "no image exited early";
    EXPECT_NEAR(adaptive_acc, fixed_acc, 0.05);
    for (std::size_t i = 0; i < view.count; ++i) {
        EXPECT_GE(adaptive.achieved[i], opts.test.minSamples);
        EXPECT_LE(adaptive.achieved[i], 32);
    }
}

TEST(AdaptiveMc, RequiresBatchedRoundsBackend)
{
    const auto config = smallConfig(8);
    const auto program = mlpProgram(config, 7);
    const auto xs = randomBatch(2, program.inputDim(), 23);

    McEngineConfig mc;
    mc.backendId = "functional"; // per-image fallback stream
    mc.schedule = McSchedule::PerRound;
    McEngine engine(program, config, mc);
    EXPECT_DEATH((void)engine.classifyBatchAdaptive(
                     xs.data(), 2, program.inputDim(),
                     McAdaptiveOptions{}),
                 "batched-rounds backend");
}

// ------------------------------------------------------ serving layer

namespace
{

serve::InferenceSession::Builder
adaptiveBuilder(const AcceleratorConfig &config,
                const serve::SessionOptions::AdaptivePolicy &policy,
                std::uint64_t seed = 211)
{
    return std::move(serve::InferenceSession::Builder()
                         .program(mlpProgram(config, 7))
                         .accelerator(config)
                         .mode(serve::ExecMode::Throughput)
                         .grng(grngId())
                         .seed(seed)
                         .adaptive(policy));
}

} // anonymous namespace

TEST(AdaptiveSession, ReportsAchievedRoundsAndExitReasons)
{
    const auto config = smallConfig(24);
    serve::SessionOptions::AdaptivePolicy policy;
    policy.enabled = true;
    policy.confidence = 0.99;
    auto session = adaptiveBuilder(config, policy).build();

    const auto xs = randomBatch(8, session->inputDim(), 59);
    const auto result = session->run(
        serve::InferenceRequest::borrow(xs.data(), 8,
                                        session->inputDim()));

    ASSERT_EQ(result.predictions.size(), 8u);
    EXPECT_EQ(result.mcSamples, 24);
    double mean = 0.0;
    for (const auto &p : result.predictions) {
        EXPECT_GE(p.achievedSamples, policy.minSamples);
        EXPECT_LE(p.achievedSamples, 24);
        if (p.achievedSamples < 24)
            EXPECT_NE(p.exitReason, McExitReason::Budget);
        else
            EXPECT_EQ(p.exitReason, McExitReason::Budget);
        mean += p.achievedSamples;
        // The uncertainty decoration derives from the achieved rows.
        EXPECT_GE(p.mutualInformation, 0.0);
        EXPECT_LE(p.mutualInformation, p.entropy + 1e-9);
    }
    mean /= 8.0;
    EXPECT_DOUBLE_EQ(result.meanRounds, mean);
    EXPECT_LT(result.meanRounds, 24.0) << "no image exited early";
}

TEST(AdaptiveSession, SubmitMatchesRunBitExactly)
{
    // Coalesced async serving under a fixed threshold must reproduce
    // the synchronous result bit for bit — the micro-batching
    // invisibility contract extends to the adaptive path.
    const auto config = smallConfig(16);
    serve::SessionOptions::AdaptivePolicy policy;
    policy.enabled = true;
    policy.chunk = 2;
    auto sync_session = adaptiveBuilder(config, policy).build();
    auto async_session = adaptiveBuilder(config, policy).build();

    const std::size_t dim = sync_session->inputDim();
    const auto xs = randomBatch(6, dim, 61);

    const auto sync_result = sync_session->run(
        serve::InferenceRequest::borrow(xs.data(), 6, dim));

    std::vector<serve::ResultHandle> handles;
    for (std::size_t i = 0; i < 6; ++i)
        handles.push_back(async_session->submit(
            serve::InferenceRequest::copy(xs.data() + i * dim, 1,
                                          dim)));
    for (std::size_t i = 0; i < 6; ++i) {
        auto r = handles[i].get();
        ASSERT_EQ(r.predictions.size(), 1u);
        const auto &got = r.predictions[0];
        const auto &want = sync_result.predictions[i];
        EXPECT_EQ(got.predicted, want.predicted) << "image " << i;
        EXPECT_EQ(got.achievedSamples, want.achievedSamples)
            << "image " << i;
        EXPECT_EQ(got.exitReason, want.exitReason) << "image " << i;
        ASSERT_EQ(got.probs.size(), want.probs.size());
        for (std::size_t c = 0; c < want.probs.size(); ++c)
            EXPECT_EQ(got.probs[c], want.probs[c])
                << "image " << i << " class " << c;
    }
}

TEST(AdaptiveSession, DisabledPolicyMatchesDefaultSessionBitExactly)
{
    // adaptive.enabled = false must leave the serving output exactly
    // what a session without the policy produces.
    const auto config = smallConfig(8);
    auto plain = std::move(serve::InferenceSession::Builder()
                               .program(mlpProgram(config, 7))
                               .accelerator(config)
                               .mode(serve::ExecMode::Throughput)
                               .grng(grngId())
                               .seed(211))
                     .build();
    serve::SessionOptions::AdaptivePolicy off;
    off.enabled = false;
    auto disabled = adaptiveBuilder(config, off).build();

    const auto xs = randomBatch(5, plain->inputDim(), 67);
    const auto want = plain->run(serve::InferenceRequest::borrow(
        xs.data(), 5, plain->inputDim()));
    const auto got = disabled->run(serve::InferenceRequest::borrow(
        xs.data(), 5, disabled->inputDim()));

    ASSERT_EQ(got.predictions.size(), want.predictions.size());
    for (std::size_t i = 0; i < want.predictions.size(); ++i) {
        EXPECT_EQ(got.predictions[i].predicted,
                  want.predictions[i].predicted);
        EXPECT_EQ(got.predictions[i].achievedSamples, 8);
        for (std::size_t c = 0; c < want.predictions[i].probs.size();
             ++c)
            EXPECT_EQ(got.predictions[i].probs[c],
                      want.predictions[i].probs[c])
                << "image " << i << " class " << c;
    }
}

TEST(AdaptiveSession, DeadlineStopsSamplingWithDeadlineReason)
{
    // An already-expired deadline: every image stops at the first
    // chunk boundary and reports the anytime exit.
    const auto config = smallConfig(32);
    serve::SessionOptions::AdaptivePolicy policy;
    policy.enabled = true;
    policy.chunk = 2;
    policy.minSamples = 16; // keep the convergence exit out of reach
    policy.confidence = 0.999999;
    policy.deadlineSeconds = 1e-12;
    auto session = adaptiveBuilder(config, policy).build();

    const auto xs = randomBatch(4, session->inputDim(), 71);
    const auto result = session->run(
        serve::InferenceRequest::borrow(xs.data(), 4,
                                        session->inputDim()));
    for (const auto &p : result.predictions) {
        EXPECT_EQ(p.exitReason, McExitReason::Deadline);
        EXPECT_EQ(p.achievedSamples, policy.chunk);
        // The running mean is still a usable posterior.
        float mass = 0.0f;
        for (const float v : p.probs)
            mass += v;
        EXPECT_NEAR(mass, 1.0f, 1e-4f);
    }
    EXPECT_DOUBLE_EQ(result.meanRounds,
                     static_cast<double>(policy.chunk));
}

TEST(AdaptiveSession, ExitReasonNames)
{
    EXPECT_STREQ(serve::exitReasonName(McExitReason::Budget),
                 "budget");
    EXPECT_STREQ(serve::exitReasonName(McExitReason::Converged),
                 "converged");
    EXPECT_STREQ(serve::exitReasonName(McExitReason::Decided),
                 "decided");
    EXPECT_STREQ(serve::exitReasonName(McExitReason::Deadline),
                 "deadline");
}

TEST(AdaptiveSessionDeathTest, BuilderRejectsInvalidPolicies)
{
    const auto config = smallConfig(8);
    serve::SessionOptions::AdaptivePolicy on;
    on.enabled = true;

    // Adaptive needs the batched-rounds throughput path.
    EXPECT_DEATH((void)serve::InferenceSession::Builder()
                     .program(mlpProgram(config, 7))
                     .accelerator(config)
                     .mode(serve::ExecMode::Fidelity)
                     .adaptive(on)
                     .build(),
                 "Throughput mode");

    serve::SessionOptions::AdaptivePolicy bad = on;
    bad.confidence = 1.5;
    EXPECT_DEATH((void)adaptiveBuilder(config, bad).build(),
                 "confidence");
    bad = on;
    bad.minSamples = 0;
    EXPECT_DEATH((void)adaptiveBuilder(config, bad).build(),
                 "minSamples");
    bad = on;
    bad.chunk = 0;
    EXPECT_DEATH((void)adaptiveBuilder(config, bad).build(), "chunk");
}
