/**
 * @file
 * Tests for the conventional-NN substrate: tensor kernels, dense layer
 * gradients (against numerical differentiation), activations, loss,
 * optimizers and end-to-end training convergence.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "nn/activations.hh"
#include "nn/dense.hh"
#include "nn/loss.hh"
#include "nn/mlp.hh"
#include "nn/optimizer.hh"
#include "nn/tensor.hh"
#include "nn/trainer.hh"

using namespace vibnn;
using namespace vibnn::nn;

TEST(Tensor, MatVec)
{
    Matrix w(2, 3);
    w.at(0, 0) = 1;
    w.at(0, 1) = 2;
    w.at(0, 2) = 3;
    w.at(1, 0) = -1;
    w.at(1, 1) = 0;
    w.at(1, 2) = 1;
    const float x[3] = {1, 1, 2};
    const float b[2] = {0.5f, -0.5f};
    float out[2];
    matVec(w, x, b, out);
    EXPECT_FLOAT_EQ(out[0], 9.5f);
    EXPECT_FLOAT_EQ(out[1], 0.5f);
}

TEST(Tensor, MatTVecIsTranspose)
{
    Matrix w(2, 3);
    Rng rng(1);
    for (auto &v : w.data())
        v = static_cast<float>(rng.uniform(-1, 1));
    const float dy[2] = {0.7f, -0.3f};
    float dx[3];
    matTVec(w, dy, dx);
    for (int c = 0; c < 3; ++c) {
        EXPECT_NEAR(dx[c], w.at(0, c) * dy[0] + w.at(1, c) * dy[1],
                    1e-6f);
    }
}

TEST(Tensor, RankOneUpdate)
{
    Matrix w(2, 2);
    const float dy[2] = {1.0f, 2.0f};
    const float x[2] = {3.0f, 4.0f};
    rankOneUpdate(w, 0.5f, dy, x);
    EXPECT_FLOAT_EQ(w.at(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(w.at(1, 1), 4.0f);
}

TEST(Tensor, Argmax)
{
    const float v[5] = {0.1f, 0.9f, 0.3f, 0.9f, 0.0f};
    EXPECT_EQ(argmax(v, 5), 1u); // first on ties
}

TEST(Activations, ReluForwardBackward)
{
    float v[4] = {-1.0f, 0.0f, 2.0f, -0.5f};
    float pre[4];
    std::copy(v, v + 4, pre);
    reluForward(v, 4);
    EXPECT_FLOAT_EQ(v[0], 0.0f);
    EXPECT_FLOAT_EQ(v[2], 2.0f);
    const float dy[4] = {1, 1, 1, 1};
    float dx[4];
    reluBackward(pre, dy, dx, 4);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
    EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(Activations, SoftmaxNormalizes)
{
    float v[3] = {1.0f, 2.0f, 3.0f};
    softmax(v, 3);
    EXPECT_NEAR(v[0] + v[1] + v[2], 1.0f, 1e-6f);
    EXPECT_GT(v[2], v[1]);
    // Stability with huge logits.
    float big[2] = {1000.0f, 1001.0f};
    softmax(big, 2);
    EXPECT_NEAR(big[0] + big[1], 1.0f, 1e-6f);
}

TEST(Activations, SoftplusAndLogistic)
{
    EXPECT_NEAR(softplus(0.0f), std::log(2.0f), 1e-6f);
    EXPECT_NEAR(softplus(30.0f), 30.0f, 1e-4f);
    EXPECT_NEAR(softplus(-30.0f), 0.0f, 1e-6f);
    EXPECT_NEAR(logistic(0.0f), 0.5f, 1e-7f);
    // logistic is the derivative of softplus.
    const float h = 1e-3f;
    for (float x : {-2.0f, -0.5f, 0.3f, 1.7f}) {
        const float numeric = (softplus(x + h) - softplus(x - h)) /
            (2.0f * h);
        EXPECT_NEAR(logistic(x), numeric, 1e-3f);
    }
}

TEST(Loss, CrossEntropyGradient)
{
    float logits[4] = {0.2f, -0.4f, 1.1f, 0.3f};
    float grad[4];
    const double loss = softmaxCrossEntropy(logits, 4, 2, grad);
    EXPECT_GT(loss, 0.0);
    // Gradient sums to zero (softmax simplex constraint).
    EXPECT_NEAR(grad[0] + grad[1] + grad[2] + grad[3], 0.0f, 1e-6f);
    EXPECT_LT(grad[2], 0.0f); // target gradient negative
}

TEST(Dense, GradientsMatchNumerical)
{
    Rng rng(5);
    DenseLayer layer(4, 3, rng);
    const float x[4] = {0.5f, -0.3f, 0.8f, 0.1f};

    // Loss = sum of squares of outputs / 2; dL/dy = y.
    auto loss_of = [&]() {
        float out[3];
        layer.forward(x, out);
        float l = 0;
        for (float v : out)
            l += v * v * 0.5f;
        return l;
    };

    float out[3];
    layer.forward(x, out);
    DenseGradients grads;
    grads.resize(3, 4);
    grads.zero();
    float dx[4];
    layer.backward(x, out, grads, dx);

    const float h = 1e-3f;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            const float saved = layer.weight().at(r, c);
            layer.weight().at(r, c) = saved + h;
            const float up = loss_of();
            layer.weight().at(r, c) = saved - h;
            const float down = loss_of();
            layer.weight().at(r, c) = saved;
            EXPECT_NEAR(grads.weight.at(r, c), (up - down) / (2 * h),
                        2e-2f);
        }
    }
}

TEST(Optimizer, SgdConvergesOnQuadratic)
{
    // Minimize f(p) = (p - 3)^2.
    float p = 0.0f;
    SgdOptimizer opt(0.1f, 0.9f);
    for (int i = 0; i < 200; ++i) {
        const float g = 2.0f * (p - 3.0f);
        opt.step(&p, &g, 1);
    }
    EXPECT_NEAR(p, 3.0f, 1e-3f);
}

TEST(Optimizer, AdamConvergesOnQuadratic)
{
    float p[2] = {-4.0f, 7.0f};
    AdamOptimizer opt(0.05f);
    for (int i = 0; i < 2000; ++i) {
        const float g[2] = {2.0f * (p[0] - 1.0f), 2.0f * (p[1] + 2.0f)};
        opt.step(p, g, 2);
    }
    EXPECT_NEAR(p[0], 1.0f, 1e-2f);
    EXPECT_NEAR(p[1], -2.0f, 1e-2f);
}

TEST(Mlp, ParamRoundTrip)
{
    Rng rng(7);
    Mlp net({4, 8, 3}, rng);
    std::vector<float> flat;
    net.gatherParams(flat);
    EXPECT_EQ(flat.size(), net.paramCount());
    EXPECT_EQ(flat.size(), 4u * 8 + 8 + 8 * 3 + 3);
    auto modified = flat;
    for (auto &v : modified)
        v += 1.0f;
    net.scatterParams(modified);
    std::vector<float> back;
    net.gatherParams(back);
    for (std::size_t i = 0; i < flat.size(); ++i)
        EXPECT_FLOAT_EQ(back[i], flat[i] + 1.0f);
}

TEST(Mlp, LearnsXor)
{
    Rng rng(11);
    Mlp net({2, 8, 2}, rng);
    std::vector<float> features = {0, 0, 0, 1, 1, 0, 1, 1};
    std::vector<int> labels = {0, 1, 1, 0};
    DataView view{4, 2, features.data(), labels.data()};

    TrainConfig config;
    config.epochs = 300;
    config.batchSize = 4;
    config.learningRate = 0.02f;
    config.seed = 3;
    trainMlp(net, view, config);
    EXPECT_EQ(evaluateAccuracy(net, view), 1.0);
}

TEST(Mlp, DropoutStillLearns)
{
    Rng rng(13);
    Mlp net({2, 32, 2}, rng, 0.3f);
    std::vector<float> features = {0, 0, 0, 1, 1, 0, 1, 1};
    std::vector<int> labels = {0, 1, 1, 0};
    DataView view{4, 2, features.data(), labels.data()};

    TrainConfig config;
    config.epochs = 600;
    config.batchSize = 4;
    config.learningRate = 0.02f;
    config.seed = 5;
    trainMlp(net, view, config);
    EXPECT_GE(evaluateAccuracy(net, view), 0.75);
}

TEST(Mlp, TrainingReducesLoss)
{
    Rng rng(17);
    Mlp net({8, 16, 4}, rng);

    // Linearly separable blobs.
    Rng data_rng(19);
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < 400; ++i) {
        const int cls = i % 4;
        for (int d = 0; d < 8; ++d) {
            features.push_back(
                static_cast<float>(data_rng.gaussian() * 0.3 +
                                   (d == cls ? 2.0 : 0.0)));
        }
        labels.push_back(cls);
    }
    DataView view{400, 8, features.data(), labels.data()};

    TrainConfig config;
    config.epochs = 30;
    config.learningRate = 3e-3f;
    config.seed = 7;
    const auto history = trainMlp(net, view, config);
    EXPECT_LT(history.trainLoss.back(), history.trainLoss.front() * 0.5);
    EXPECT_GT(evaluateAccuracy(net, view), 0.95);
}
