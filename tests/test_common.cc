/**
 * @file
 * Unit tests for the common utilities: deterministic RNG, thread pool,
 * table formatting and environment helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>

#include "common/env.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

using namespace vibnn;

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double lo = 1.0, hi = 0.0, sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // every residue hit
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniformInt(-5, 5);
        ASSERT_GE(v, -5);
        ASSERT_LE(v, 5);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(21);
    Rng child_a = parent.fork();
    Rng child_b = parent.fork();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += child_a.next() == child_b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto original = v;
    rng.shuffle(v);
    EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(SplitMix, KnownSequenceIsStable)
{
    std::uint64_t s = 0;
    const std::uint64_t first = splitmix64Next(s);
    const std::uint64_t second = splitmix64Next(s);
    EXPECT_NE(first, second);
    std::uint64_t s2 = 0;
    EXPECT_EQ(splitmix64Next(s2), first);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    ThreadPool pool(0);
    int count = 0;
    // Pool may still have workers on multicore hosts; count anyway.
    std::atomic<int> hits{0};
    pool.parallelFor(10, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 10);
    (void)count;
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(8,
                         [](std::size_t i) {
                             if (i == 3)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(1);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ChunkedLargeRangeCoversEachIndexOnce)
{
    // Large counts take the chunked-range path (ranges off the shared
    // counter, not one job per index); every index must still run
    // exactly once.
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(100003);
    pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, PropagatesExceptionsFromChunkedRanges)
{
    // Exception propagation must survive the chunked scheduler: a
    // throw deep inside one range reaches the caller, and the
    // remaining iterations still run (first error wins, work is not
    // abandoned).
    ThreadPool pool(2);
    std::atomic<int> hits{0};
    const std::size_t count = 50000;
    EXPECT_THROW(pool.parallelFor(count,
                                  [&](std::size_t i) {
                                      ++hits;
                                      if (i == 31337)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(hits.load(), static_cast<int>(count));
}

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setHeader({"a", "long-header", "c"});
    table.addRow({"1", "2", "3"});
    table.addRow({"wide-cell", "x", "y"});
    const std::string out = table.render();
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("wide-cell"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
}

TEST(Env, DefaultsAndParsing)
{
    ::unsetenv("VIBNN_TEST_VAR");
    EXPECT_EQ(envInt("VIBNN_TEST_VAR", 5), 5);
    ::setenv("VIBNN_TEST_VAR", "17", 1);
    EXPECT_EQ(envInt("VIBNN_TEST_VAR", 5), 17);
    ::setenv("VIBNN_TEST_VAR", "2.5", 1);
    EXPECT_DOUBLE_EQ(envDouble("VIBNN_TEST_VAR", 1.0), 2.5);
    ::unsetenv("VIBNN_TEST_VAR");
}

TEST(Env, ScaledCountNeverZero)
{
    ::setenv("VIBNN_SCALE", "0.0001", 1);
    EXPECT_GE(scaledCount(10), 1u);
    ::unsetenv("VIBNN_SCALE");
}
