/**
 * @file
 * vibnn_client — command-line client for a running vibnn_server.
 *
 *   ./build/vibnn_client --port 7411 ping
 *   ./build/vibnn_client --port 7411 classify --count 4 --t 16
 *   ./build/vibnn_client --port 7411 metrics
 *   ./build/vibnn_client --port 7411 shutdown
 *
 * `classify` sends random images (deterministic from --seed) of the
 * server program's input dimension and prints each prediction with its
 * uncertainty decorations; --deadline-us attaches a latency budget,
 * which licenses the server's deadline-aware coalescer to hold the
 * request to fill a Monte-Carlo round (never past the budget).
 *
 * Resilience knobs: --timeout-ms bounds every response wait (default
 * 5000 — a wedged server fails the command instead of hanging it;
 * 0 restores the old block-forever behavior), and --retries N arms
 * classify with bounded-exponential-backoff retry (--backoff-ms sets
 * the initial backoff) over Overloaded / Timeout / transport loss.
 *
 * Exit codes (scripts and the CI smoke rely on these):
 *   0  success
 *   2  the server rejected with Overloaded (after any retries)
 *   3  the receive deadline expired
 *   4  the server is shutting down
 *   1  any other transport/protocol/server error
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "serve/client.hh"

using namespace vibnn;

namespace
{

void
usage()
{
    std::printf(
        "usage: vibnn_client [--host ADDR] --port N COMMAND\n"
        "commands:\n"
        "  ping                       liveness round-trip\n"
        "  metrics                    print the server's metrics JSON\n"
        "  shutdown                   ask the server to stop\n"
        "  classify [--count N] [--dim D] [--t T]\n"
        "           [--deadline-us N] [--seed S]\n"
        "                             classify random images\n"
        "options:\n"
        "  --timeout-ms N   receive deadline per attempt, 0 = block\n"
        "                   forever (default 5000)\n"
        "  --retries N      extra classify attempts on overload /\n"
        "                   timeout / transport loss (default 0)\n"
        "  --backoff-ms N   initial retry backoff (default 10)\n"
        "exit codes: 0 ok, 2 overloaded, 3 timeout, 4 shutting down,\n"
        "1 other error\n");
}

int
exitCodeFor(vibnn::serve::Client::Status status)
{
    using Status = vibnn::serve::Client::Status;
    switch (status) {
    case Status::Ok:
        return 0;
    case Status::Overloaded:
        return 2;
    case Status::Timeout:
        return 3;
    case Status::ShuttingDown:
        return 4;
    default:
        return 1;
    }
}

long long
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal(std::string(argv[i]) + " expects a value");
    return std::atoll(argv[++i]);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::string command;
    int port = 7411;
    long long count = 1, dim = 24, t = 0, deadline_us = 0, seed = 1;
    long long timeout_ms = 5000, retries = 0, backoff_ms = 10;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--host" && i + 1 < argc)
            host = argv[++i];
        else if (arg == "--port")
            port = static_cast<int>(argValue(argc, argv, i));
        else if (arg == "--count")
            count = argValue(argc, argv, i);
        else if (arg == "--dim")
            dim = argValue(argc, argv, i);
        else if (arg == "--t")
            t = argValue(argc, argv, i);
        else if (arg == "--deadline-us")
            deadline_us = argValue(argc, argv, i);
        else if (arg == "--seed")
            seed = argValue(argc, argv, i);
        else if (arg == "--timeout-ms")
            timeout_ms = argValue(argc, argv, i);
        else if (arg == "--retries")
            retries = argValue(argc, argv, i);
        else if (arg == "--backoff-ms")
            backoff_ms = argValue(argc, argv, i);
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (command.empty() && !arg.empty() && arg[0] != '-')
            command = arg;
        else {
            usage();
            fatal("unknown argument '" + arg + "'");
        }
    }
    if (command.empty()) {
        usage();
        return 1;
    }
    if (port <= 0 || port > 65535)
        fatal("--port must be in [1, 65535]");
    if (count < 1 || dim < 1 || t < 0 || deadline_us < 0)
        fatal("--count and --dim must be >= 1, --t and "
              "--deadline-us >= 0");
    if (timeout_ms < 0 || retries < 0 || backoff_ms < 0)
        fatal("--timeout-ms, --retries and --backoff-ms must be >= 0");

    serve::Client client;
    client.setReceiveTimeout(timeout_ms);
    std::string error;
    if (!client.connect(host, static_cast<std::uint16_t>(port),
                        error)) {
        std::fprintf(stderr, "vibnn_client: connect: %s\n",
                     error.c_str());
        return 1;
    }

    if (command == "ping") {
        if (!client.ping(error)) {
            std::fprintf(stderr, "vibnn_client: ping: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("pong\n");
        return 0;
    }
    if (command == "metrics") {
        std::string json;
        if (!client.metrics(json, error)) {
            std::fprintf(stderr, "vibnn_client: metrics: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("%s\n", json.c_str());
        return 0;
    }
    if (command == "shutdown") {
        if (!client.requestShutdown(error)) {
            std::fprintf(stderr, "vibnn_client: shutdown: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("shutdown acknowledged\n");
        return 0;
    }
    if (command != "classify") {
        usage();
        fatal("unknown command '" + command + "'");
    }

    Rng rng(static_cast<std::uint64_t>(seed));
    std::vector<float> xs(static_cast<std::size_t>(count * dim));
    for (auto &v : xs)
        v = static_cast<float>(rng.uniform());

    serve::Client::Options options;
    options.mcSamples = static_cast<std::uint32_t>(t);
    options.deadlineMicros = deadline_us;
    serve::Client::RetryPolicy policy =
        serve::Client::RetryPolicy::attempts(
            static_cast<int>(retries) + 1, backoff_ms);
    policy.jitterSeed = static_cast<std::uint64_t>(seed);
    const auto reply = client.classify(
        xs.data(), static_cast<std::size_t>(count),
        static_cast<std::size_t>(dim), options, policy);
    if (!reply.ok()) {
        std::fprintf(stderr,
                     "vibnn_client: classify: %s (%s) after %d "
                     "attempt(s)\n",
                     serve::Client::statusName(reply.status),
                     reply.message.c_str(), reply.attempts);
        return exitCodeFor(reply.status);
    }

    const auto &resp = reply.response;
    std::printf("classified %zu image(s)  T=%u  mean rounds %.1f  "
                "server %.0f us  attempts %d%s\n",
                resp.predictions.size(), resp.mcSamples,
                resp.meanRounds, resp.serverMicros, reply.attempts,
                reply.degraded() ? "  [degraded]" : "");
    for (std::size_t i = 0; i < resp.predictions.size(); ++i) {
        const auto &p = resp.predictions[i];
        std::printf("  [%zu] class %u  conf %.3f  entropy %.3f  "
                    "MI %.3f  rounds %u\n",
                    i, p.predicted, p.confidence, p.entropy,
                    p.mutualInformation, p.achievedSamples);
    }
    return 0;
}
