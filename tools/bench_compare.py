#!/usr/bin/env python3
"""Gate bench throughput against a checked-in baseline.

Both inputs are VIBNN_BENCH_JSON files (a JSON array of flat records,
see bench/bench_util.hh). Records are matched on their identity fields
(bench/section/backend/schedule/style/kernel/...) and every matched
pair with a value for the gated metric (`images_per_s` by default;
--metric selects another, e.g. `rlf_eps_ms` for the GRNG eps-supply
records) is compared: the run fails when a fresh value regresses more
than --tolerance (default 10%) past its baseline. The gate is
one-sided and directional: with --direction higher (the default,
throughput metrics) regression means falling below the baseline
floor; with --direction lower (latency metrics, e.g. the serving
bench's p99_us) regression means rising above the baseline ceiling —
better-than-baseline is always fine either way.
Note that the kernel tier is part of the identity, so a scalar-forced
run never gets judged against an avx2 baseline — it is simply reported
as unmatched.

Typical use (the CI kernel-matrix job, gating just the batched-path
rows the PR 5 acceptance tracks):

    VIBNN_BENCH_JSON=fresh.json ./build/bench_table5_throughput
    python3 tools/bench_compare.py BENCH_PR5.json fresh.json \
        --only backend=batched --only style=submit-coalesced

--section restricts by section; --only key=value (repeatable) keeps
records matching ANY given pair; a baseline record with no fresh
counterpart is an error under --require-all (a silently skipped
benchmark would otherwise look like a pass).
"""

import argparse
import json
import sys

IDENTITY_KEYS = ("bench", "section", "backend", "schedule", "style",
                 "kernel", "tier", "generator", "estimator", "bits", "T",
                 "batch", "requests", "confidence", "budget", "shards",
                 "offered", "conns", "rate", "profile")
DEFAULT_METRIC = "images_per_s"


def load(path):
    with open(path, encoding="utf-8") as handle:
        records = json.load(handle)
    if not isinstance(records, list):
        raise SystemExit(f"{path}: expected a JSON array of records")
    return records


def identity(record):
    return tuple((key, record[key]) for key in IDENTITY_KEYS
                 if key in record)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("fresh", help="freshly measured JSON")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--section", nargs="*", default=None,
                        help="only compare records in these sections")
    parser.add_argument("--only", action="append", default=None,
                        metavar="KEY=VALUE",
                        help="keep records matching any given key=value "
                             "pair (repeatable)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail if a comparable baseline record has "
                             "no fresh counterpart")
    parser.add_argument("--allow-unmatched", action="store_true",
                        help="exit 0 when nothing matched at all "
                             "(e.g. the fresh run used a different "
                             "kernel tier than the baseline)")
    parser.add_argument("--metric", default=DEFAULT_METRIC,
                        help="record field to gate on (default "
                             f"{DEFAULT_METRIC}); records lacking the "
                             "field are ignored")
    parser.add_argument("--direction", choices=("higher", "lower"),
                        default="higher",
                        help="gating direction: 'higher' (throughput "
                             "metrics, the default) fails when fresh "
                             "drops below baseline*(1-tol); 'lower' "
                             "(latency metrics like p99_us) fails when "
                             "fresh rises above baseline*(1+tol)")
    parser.add_argument("--unit", default=None,
                        help="unit label for the report lines "
                             "(default derives from --metric)")
    args = parser.parse_args()
    metric = args.metric
    unit = args.unit if args.unit is not None else (
        "img/s" if metric == DEFAULT_METRIC else metric)

    only = None
    if args.only:
        only = []
        for pair in args.only:
            key, sep, value = pair.partition("=")
            if not sep:
                raise SystemExit(f"--only expects key=value, got {pair!r}")
            only.append((key, value))

    baseline = {identity(r): r for r in load(args.baseline)
                if metric in r}
    fresh = {identity(r): r for r in load(args.fresh) if metric in r}

    compared = 0
    failures = []
    missing = []
    for key, base in sorted(baseline.items()):
        if args.section is not None and base.get("section") not in \
                args.section:
            continue
        if only is not None and not any(
                str(base.get(k)) == v for k, v in only):
            continue
        other = fresh.get(key)
        label = " ".join(f"{k}={v}" for k, v in key)
        if other is None:
            missing.append(label)
            continue
        compared += 1
        base_v = float(base[metric])
        fresh_v = float(other[metric])
        if args.direction == "higher":
            floor = base_v * (1.0 - args.tolerance)
            regressed = fresh_v < floor
            bound_note = f"floor {floor:.1f}"
        else:
            # Lower-is-better (latency): regression means RISING past
            # the baseline plus headroom.
            ceiling = base_v * (1.0 + args.tolerance)
            regressed = fresh_v > ceiling
            bound_note = f"ceiling {ceiling:.1f}"
        verdict = "REGRESSION" if regressed else "ok"
        print(f"{verdict:10s} {label}: baseline {base_v:.1f} -> "
              f"fresh {fresh_v:.1f} {unit} ({bound_note})")
        if regressed:
            failures.append(label)

    if missing:
        print(f"\n{len(missing)} baseline record(s) had no fresh "
              "counterpart:")
        for label in missing:
            print(f"  missing: {label}")
        if args.require_all:
            return 1

    if compared == 0:
        if args.allow_unmatched:
            print("warning: no comparable records (different kernel "
                  "tier / host?) — skipping the gate")
            return 0
        print("error: no comparable records (identity fields or "
              f"'{metric}' missing?)")
        return 1
    if failures:
        print(f"\nFAIL: {len(failures)} of {compared} compared records "
              f"regressed more than {args.tolerance:.0%}")
        return 1
    print(f"\nOK: {compared} records within {args.tolerance:.0%} of "
          "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
