/**
 * @file
 * vibnn_server — the serving daemon around serve::Server.
 *
 * Serves a compiled Bayesian-MLP program over the vibnn-serve wire
 * protocol (docs/SERVING.md documents the frames, knobs, and metrics
 * schema). By default it compiles a synthetic 24-16-4 Bayesian MLP
 * (deterministic from --seed) so the daemon is self-contained for
 * smokes and load tests; --program serves a model image saved by
 * core::saveQuantizedProgram instead.
 *
 *   ./build/vibnn_server --port 7411 --shards 2 --queue 128
 *   ./build/vibnn_server --port 0 --port-file /tmp/vibnn.port
 *
 * Session policy (exec mode, T, GRNG, adaptive early exit, the
 * deadline-aware coalescer's default budget) comes from the
 * VIBNN_SERVE_* environment knobs. The process runs until a client
 * sends a Shutdown frame (vibnn_client shutdown), then drains, prints
 * a serving summary, and exits 0.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/program.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/model_io.hh"
#include "serve/server.hh"
#include "serve/session.hh"

using namespace vibnn;

namespace
{

void
usage()
{
    std::printf(
        "usage: vibnn_server [options]\n"
        "  --host ADDR       bind address (default 127.0.0.1)\n"
        "  --port N          TCP port, 0 = ephemeral (default 7411)\n"
        "  --port-file PATH  write the bound port there (scripting)\n"
        "  --shards N        session shards (default 1, 0 = cores)\n"
        "  --queue N         per-shard in-flight bound (default 256)\n"
        "  --max-conns N     connection bound (default 1024)\n"
        "  --remote-shutdown loopback|on|off\n"
        "                    honor client Shutdown frames: only from\n"
        "                    a loopback bind (default), always, never\n"
        "  --watchdog-ms N   shard health watchdog poll interval,\n"
        "                    0 = off (default 0)\n"
        "  --brownout        degrade under queue pressure: browned-out\n"
        "                    shards serve at a reduced T and stamp the\n"
        "                    response degraded (needs --watchdog-ms)\n"
        "  --brownout-t N    the reduced ensemble size (default 2)\n"
        "  --program FILE    serve a saved QuantizedProgram instead\n"
        "                    of the synthetic 24-16-4 MLP\n"
        "  --seed N          synthetic-model seed (default 7)\n"
        "Session policy comes from VIBNN_SERVE_* (see docs/SERVING.md)\n");
}

long long
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal(std::string(argv[i]) + " expects a value");
    return std::atoll(argv[++i]);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::string port_file;
    std::string program_path;
    std::string remote_shutdown = "loopback";
    int port = 7411;
    long long shards = 1, queue = 256, max_conns = 1024, seed = 7;
    long long watchdog_ms = 0, brownout_t = 2;
    bool brownout = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--host" && i + 1 < argc)
            host = argv[++i];
        else if (arg == "--port")
            port = static_cast<int>(argValue(argc, argv, i));
        else if (arg == "--port-file" && i + 1 < argc)
            port_file = argv[++i];
        else if (arg == "--shards")
            shards = argValue(argc, argv, i);
        else if (arg == "--queue")
            queue = argValue(argc, argv, i);
        else if (arg == "--max-conns")
            max_conns = argValue(argc, argv, i);
        else if (arg == "--remote-shutdown" && i + 1 < argc)
            remote_shutdown = argv[++i];
        else if (arg == "--program" && i + 1 < argc)
            program_path = argv[++i];
        else if (arg == "--seed")
            seed = argValue(argc, argv, i);
        else if (arg == "--watchdog-ms")
            watchdog_ms = argValue(argc, argv, i);
        else if (arg == "--brownout")
            brownout = true;
        else if (arg == "--brownout-t")
            brownout_t = argValue(argc, argv, i);
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '" + arg + "'");
        }
    }
    if (port < 0 || port > 65535)
        fatal("--port must be in [0, 65535]");
    if (shards < 0 || queue < 1 || max_conns < 1)
        fatal("--shards must be >= 0, --queue and --max-conns >= 1");
    if (watchdog_ms < 0 || brownout_t < 1)
        fatal("--watchdog-ms must be >= 0, --brownout-t >= 1");
    if (brownout && watchdog_ms == 0)
        fatal("--brownout requires --watchdog-ms > 0 (health "
              "transitions run on the watchdog)");

    // The model: a saved deployment image, or the self-contained
    // synthetic MLP (untrained weights — structure and determinism are
    // what smokes and load tests need, not accuracy).
    accel::AcceleratorConfig config;
    accel::QuantizedProgram program;
    if (!program_path.empty()) {
        auto loaded = core::loadQuantizedProgram(program_path);
        if (!loaded)
            fatal("cannot load a QuantizedProgram from '" +
                  program_path + "'");
        program = std::move(*loaded);
    } else {
        config.peSets = 2;
        config.pesPerSet = 8;
        config.mcSamples = 8;
        Rng rng(static_cast<std::uint64_t>(seed));
        bnn::BayesianMlp net({24, 16, 4}, rng, -3.0f);
        program = compile(net, config);
    }

    serve::SessionOptions session_defaults;
    session_defaults.mode = serve::ExecMode::Throughput;
    serve::ServerOptions options;
    options.host = host;
    options.port = static_cast<std::uint16_t>(port);
    options.shards = static_cast<std::size_t>(shards);
    options.queueCapacity = static_cast<std::size_t>(queue);
    options.maxConnections = static_cast<std::size_t>(max_conns);
    options.watchdogMillis = watchdog_ms;
    options.brownout = brownout;
    options.brownoutSamples = static_cast<int>(brownout_t);
    if (remote_shutdown == "loopback")
        options.remoteShutdown = serve::RemoteShutdown::LoopbackOnly;
    else if (remote_shutdown == "on")
        options.remoteShutdown = serve::RemoteShutdown::Enabled;
    else if (remote_shutdown == "off")
        options.remoteShutdown = serve::RemoteShutdown::Disabled;
    else
        fatal("--remote-shutdown must be loopback, on, or off, got '" +
              remote_shutdown + "'");
    options.session = serve::SessionOptions::fromEnv(session_defaults);

    serve::Server server(std::move(program), config, options);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "vibnn_server: %s\n", error.c_str());
        return 1;
    }
    std::printf("vibnn_server: listening on %s:%u  shards=%zu "
                "queue=%zu mode=%s T=%d kernel=%s\n",
                host.c_str(), server.port(), server.shardCount(),
                options.queueCapacity,
                execModeName(options.session.mode),
                options.session.mcSamples,
                serve::InferenceSession::kernelName());
    std::fflush(stdout);

    if (!port_file.empty()) {
        FILE *f = std::fopen(port_file.c_str(), "w");
        if (!f)
            fatal("cannot write port file '" + port_file + "'");
        std::fprintf(f, "%u\n", server.port());
        std::fclose(f);
    }

    server.waitForShutdownRequest();
    std::printf("vibnn_server: shutdown requested, draining\n");
    server.stop();

    const serve::ServerStats stats = server.stats();
    std::printf("vibnn_server: served %llu requests (%llu images, "
                "%llu rejected)  p50=%.0fus p95=%.0fus p99=%.0fus\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.images),
                static_cast<unsigned long long>(stats.rejects),
                stats.p50Micros, stats.p95Micros, stats.p99Micros);
    if (stats.retriesObserved > 0 || stats.brownoutPasses > 0 ||
        stats.watchdogTrips > 0)
        std::printf(
            "vibnn_server: retries_observed=%llu brownout_passes=%llu "
            "watchdog_trips=%llu\n",
            static_cast<unsigned long long>(stats.retriesObserved),
            static_cast<unsigned long long>(stats.brownoutPasses),
            static_cast<unsigned long long>(stats.watchdogTrips));
    return 0;
}
