/**
 * @file
 * Reproduces Table 7: accuracy comparison on the disease-diagnosis
 * tasks — FNN (software) vs BNN (software) vs VIBNN (hardware).
 *
 * Substitution: synthetic generators matched to each dataset's feature
 * count, sample count, and class imbalance (DESIGN.md). The paper's
 * reported accuracies are printed alongside.
 */

#include "bench_util.hh"
#include "core/vibnn.hh"
#include "data/tabular.hh"
#include "nn/trainer.hh"

using namespace vibnn;

namespace
{

struct PaperRow
{
    double fnn, bnn, vibnn;
};

// Table 7 reference values, in table7Specs order.
const PaperRow paper_rows[] = {
    {60.28, 95.68, 95.33}, {85.71, 95.23, 94.67},
    {70.56, 75.76, 75.21}, {76.69, 82.98, 82.54},
    {91.10, 90.42, 90.11}, {83.41, 83.24, 83.01},
    {93.36, 94.05, 93.67}, {89.69, 88.76, 88.43},
    {91.88, 93.33, 92.87},
};

} // anonymous namespace

int
main()
{
    bench::banner("Table 7",
                  "Accuracy on disease-diagnosis tasks: FNN vs BNN vs "
                  "VIBNN hardware (synthetic dataset substitutes)");

    TextTable table;
    table.setHeader({"Dataset", "FNN", "BNN", "VIBNN", "paper F/B/V"});

    const auto specs = data::table7Specs(envSeed());
    int row_index = 0;

    for (const auto &spec : specs) {
        const auto ds = data::makeTabular(spec);

        // Train to convergence: small sets get more epochs (they are
        // cheap), large sets fewer — a roughly constant step budget.
        const std::size_t epochs = std::min<std::size_t>(
            200,
            std::max<std::size_t>(
                30, scaledCount(12000 / std::max<std::size_t>(
                                    1, ds.train.count()) * 1)));

        // FNN baseline (no dropout on these small nets, as the paper's
        // FNN column).
        Rng fnn_rng(envSeed() + 11);
        nn::Mlp fnn({ds.train.dim, 64, 32,
                     static_cast<std::size_t>(ds.train.numClasses)},
                    fnn_rng);
        nn::TrainConfig fnn_config;
        fnn_config.epochs = epochs;
        fnn_config.learningRate = 2e-3f;
        fnn_config.seed = envSeed() + 12;
        trainMlp(fnn, ds.train.view(), fnn_config);
        const double fnn_acc = evaluateAccuracy(fnn, ds.test.view());

        // BNN + hardware path.
        bnn::BnnTrainConfig bnn_config;
        bnn_config.epochs = epochs;
        bnn_config.learningRate = 2e-3f;
        bnn_config.priorSigma = 0.3f;
        bnn_config.klWeight = 0.3f; // tempered ELBO (see DESIGN.md)
        bnn_config.seed = envSeed() + 13;
        accel::AcceleratorConfig accel_config;
        accel_config.peSets = 2;
        accel_config.pesPerSet = 8;
        accel_config.mcSamples = 8;
        const auto sys = core::VibnnSystem::train(
            ds, {64, 32}, bnn_config, accel_config, "rlf");
        const double bnn_acc =
            sys.softwareAccuracy(ds.test.view(), 8, envSeed() + 14);
        const double hw_acc = sys.hardwareAccuracy(ds.test.view());

        const auto &paper = paper_rows[row_index++];
        table.addRow({spec.name, strfmt("%.2f%%", 100 * fnn_acc),
                      strfmt("%.2f%%", 100 * bnn_acc),
                      strfmt("%.2f%%", 100 * hw_acc),
                      strfmt("%.1f/%.1f/%.1f", paper.fnn, paper.bnn,
                             paper.vibnn)});
        std::printf("  done: %s\n", spec.name.c_str());
    }
    table.print();

    std::printf(
        "\nShape checks vs the paper: BNN >= FNN on the small/noisy\n"
        "tasks (largest gap on the small-train Parkinson variant), and\n"
        "the 8-bit VIBNN path tracks the software BNN within ~1%%.\n");
    return 0;
}
