/**
 * @file
 * Reproduces Table 5: throughput and energy efficiency on the MNIST
 * network (784-200-200-10).
 *
 *  - FPGA rows: cycles/image measured on the cycle-level simulator,
 *    clock and power from the calibrated Cyclone V model.
 *  - CPU row: measured on this machine (single-thread software BNN,
 *    one MC pass per image, the same workload the accelerator executes
 *    per pass); energy uses the paper's CPU TDP assumption (91 W for
 *    the i7-6700k class).
 *  - GPU row: no GPU exists in this environment; the paper's reported
 *    numbers are printed as reference constants (substitution
 *    documented in DESIGN.md).
 */

#include <vector>

#include "bench_util.hh"
#include "accel/kernels/kernels.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_mlp.hh"
#include "bnn/bnn_trainer.hh"
#include "common/thread_pool.hh"
#include "data/synth_mnist.hh"
#include "grng/registry.hh"
#include "hwmodel/network_hw.hh"
#include "serve/session.hh"

using namespace vibnn;

int
main()
{
    bench::banner("Table 5",
                  "Throughput / energy on the MNIST network "
                  "(one Monte-Carlo pass per image)");

    // Timing does not depend on trained weights; an initialized
    // network exercises exactly the same datapath.
    Rng rng(envSeed());
    bnn::BayesianMlp net({784, 200, 200, 10}, rng);
    accel::AcceleratorConfig config; // 16 x 8 x 8 @ 8-bit
    const auto quantized = accel::quantizeNetwork(net, config);

    // --- FPGA: cycle-level simulation ---------------------------------
    auto gen = grng::makeGenerator("rlf", envSeed());
    accel::Simulator sim(quantized, config, gen.get());
    std::vector<float> image(784, 0.5f);
    const std::size_t sim_images = scaledCount(20);
    for (std::size_t i = 0; i < sim_images; ++i)
        sim.runPass(image.data());
    const double cycles = sim.stats().cyclesPerPass();

    hw::NetworkHwConfig hw_config;
    hw_config.grng = hw::GrngKind::Rlf;
    const auto rlf_design = networkEstimate(hw_config);
    hw_config.grng = hw::GrngKind::BnnWallace;
    const auto wal_design = networkEstimate(hw_config);
    const auto rlf_perf = performanceFromCycles(rlf_design, cycles);
    const auto wal_perf = performanceFromCycles(wal_design, cycles);

    // --- CPU: measured on this host ------------------------------------
    std::vector<float> logits(10);
    auto ws = net.makeWorkspace();
    Rng eps_rng(envSeed() + 1);
    auto eps = [&eps_rng] { return eps_rng.gaussian(); };
    const std::size_t cpu_images = scaledCount(400);
    bench::Stopwatch cpu_clock;
    for (std::size_t i = 0; i < cpu_images; ++i)
        net.sampledForward(image.data(), logits.data(), ws, eps);
    const double cpu_seconds = cpu_clock.seconds();
    const double cpu_throughput =
        static_cast<double>(cpu_images) / cpu_seconds;
    const double cpu_tdp_w = 91.0; // i7-6700k class TDP (modeled)
    const double cpu_energy = cpu_throughput / cpu_tdp_w;

    TextTable table;
    table.setHeader({"Configuration", "Throughput (Images/s)",
                     "Energy (Images/J)", "source"});
    table.addRow({"Intel i7-6700k (paper)", "10478.1", "115.1",
                  "paper reference"});
    table.addRow({"CPU on this host (measured)",
                  strfmt("%.1f", cpu_throughput),
                  strfmt("%.1f", cpu_energy),
                  strfmt("measured, TDP %.0f W model", cpu_tdp_w)});
    table.addRow({"Nvidia GTX1070 (paper)", "27988.1", "186.6",
                  "paper reference (no GPU here)"});
    table.addRow({"RLF-based FPGA (model)",
                  strfmt("%.1f", rlf_perf.imagesPerSecond),
                  strfmt("%.1f", rlf_perf.imagesPerJoule),
                  strfmt("sim %.0f cyc @ %.1f MHz, %.2f W", cycles,
                         rlf_perf.fsysMhz, rlf_perf.powerMw / 1000)});
    table.addRow({"RLF-based FPGA (paper)", "321543.4", "52694.8",
                  "paper reference"});
    table.addRow({"BNNWallace-based FPGA (model)",
                  strfmt("%.1f", wal_perf.imagesPerSecond),
                  strfmt("%.1f", wal_perf.imagesPerJoule),
                  strfmt("sim %.0f cyc @ %.1f MHz, %.2f W", cycles,
                         wal_perf.fsysMhz, wal_perf.powerMw / 1000)});
    table.addRow({"BNNWallace-based FPGA (paper)", "321543.4", "37722.1",
                  "paper reference"});
    table.print();

    std::printf(
        "\nSimulator detail: %.0f cycles/pass, PE utilization %.1f%%,\n"
        "GRN samples per pass %.0f, speedup over this host's CPU %.0fx\n",
        cycles,
        100.0 * sim.stats().utilization(config.totalPes(),
                                        config.peInputs()),
        static_cast<double>(sim.stats().grnSamples) /
            static_cast<double>(sim.stats().images),
        rlf_perf.imagesPerSecond / cpu_throughput);

    // --- Host-side Monte-Carlo engine ---------------------------------
    // Full classification (mcSamples passes + softmax averaging per
    // image) on the cycle-level simulator: the serial loop against the
    // McEngine fan-out over (image, MC sample) units.
    const std::size_t mc_images = scaledCount(8);
    std::vector<float> batch(mc_images * 784);
    Rng batch_rng(envSeed() + 2);
    for (auto &v : batch)
        v = static_cast<float>(batch_rng.uniform());

    auto serial_gen = grng::makeGenerator("rlf", envSeed());
    accel::Simulator serial_sim(quantized, config, serial_gen.get());
    bench::Stopwatch serial_clock;
    for (std::size_t i = 0; i < mc_images; ++i)
        serial_sim.classify(batch.data() + i * 784);
    const double serial_seconds = serial_clock.seconds();
    const double serial_throughput =
        static_cast<double>(mc_images) / serial_seconds;

    accel::McEngineConfig mc;
    mc.generatorId = "rlf";
    mc.seedBase = envSeed();
    accel::McEngine engine(quantized, config, mc);
    // Replica construction happens on first use; classify one image
    // outside the timed region so the measurement is steady-state.
    engine.classify(batch.data());
    bench::Stopwatch engine_clock;
    engine.classifyBatch(batch.data(), mc_images, 784);
    const double engine_seconds = engine_clock.seconds();
    const double engine_throughput =
        static_cast<double>(mc_images) / engine_seconds;

    TextTable mc_table;
    mc_table.setHeader({"Host MC classification", "Images/s",
                        "Speedup", "detail"});
    mc_table.addRow({"Simulator::classify (serial)",
                     strfmt("%.2f", serial_throughput), "1.0x",
                     strfmt("%d MC passes/image", config.mcSamples)});
    mc_table.addRow(
        {"McEngine (parallel)", strfmt("%.2f", engine_throughput),
         strfmt("%.2fx", engine_throughput / serial_throughput),
         strfmt("%zu executors, %zu replicas, %zu-image batch",
                engine.executorCount(), engine.replicaCount(),
                mc_images)});
    std::printf("\n");
    mc_table.print();
    if (engine.executorCount() <= 1)
        std::printf("note: single-core host — McEngine ran inline; "
                    "the >= 2x target needs a multi-core machine\n");

    // --- Batched weight-reuse inference (executor backends) -----------
    // Per-pass fidelity (functional backend, fresh weights per (image,
    // sample) unit) against the weight-reuse round schedule (batched
    // backend: one weight draw per compute op per MC round, shared
    // across the whole batch) at matched T on a trained synth-MNIST
    // classifier, so the accuracy cost of reuse is visible next to the
    // throughput win. Both run single-replica so the ratio isolates
    // the algorithmic effect, not thread scaling.
    bench::JsonReport report;
    data::SynthMnistConfig synth;
    synth.trainCount = scaledCount(600);
    synth.testCount = 60; // the fixed reference batch
    synth.seed = envSeed() + 3;
    const auto ds = data::makeSynthMnist(synth);

    bnn::BnnTrainConfig train_cfg;
    train_cfg.epochs = std::max<std::size_t>(1, scaledCount(2));
    train_cfg.seed = envSeed() + 4;
    Rng init_rng(train_cfg.seed);
    bnn::BayesianMlp mnist_net({784, 200, 200, 10}, init_rng);
    bnn::trainBnn(mnist_net, ds.train.view(), train_cfg);

    const auto program = accel::compile(mnist_net, config);
    const auto test_view = ds.test.view();
    const std::size_t batch_images = test_view.count;

    struct ModeRow
    {
        const char *name;
        serve::ExecMode mode;
        std::string backend;
        double imagesPerSecond = 0.0;
        double accuracy = 0.0;
        double meanRounds = 0.0;
    };
    ModeRow modes[2] = {
        {"fidelity (per-pass)", serve::ExecMode::Fidelity, "", 0, 0},
        {"throughput (weight reuse)", serve::ExecMode::Throughput, "",
         0, 0},
    };
    for (auto &mode : modes) {
        // The serving session is the public batch-inference surface;
        // one synchronous request serves the whole reference batch.
        auto session = serve::InferenceSession::Builder()
                           .program(program)
                           .accelerator(config)
                           .grng("rlf")
                           .seed(envSeed() + 5)
                           .threads(1) // isolate the algorithmic effect
                           .mode(mode.mode)
                           .topK(0)
                           .build();
        mode.backend = session->backendId();
        // Replica construction happens on first use; classify one
        // image outside the timed region so the measurement is
        // steady-state.
        session->run(serve::InferenceRequest::borrow(
            test_view.sample(0), 1, test_view.dim));
        bench::Stopwatch clock;
        const auto result = session->run(
            serve::InferenceRequest::borrow(test_view));
        const double seconds = clock.seconds();
        mode.imagesPerSecond =
            static_cast<double>(batch_images) / seconds;
        mode.accuracy = 100.0 * result.accuracy(test_view.labels);
        mode.meanRounds = result.meanRounds;
    }
    const double reuse_speedup =
        modes[1].imagesPerSecond / modes[0].imagesPerSecond;

    TextTable mode_table;
    mode_table.setHeader({"Exec mode (batch inference)", "Images/s",
                          "Speedup", "Accuracy", "detail"});
    for (const auto &mode : modes) {
        mode_table.addRow(
            {mode.name, strfmt("%.2f", mode.imagesPerSecond),
             strfmt("%.2fx",
                    mode.imagesPerSecond / modes[0].imagesPerSecond),
             strfmt("%.1f%%", mode.accuracy),
             strfmt("%s backend, T=%d, %zu-image batch, %s kernels",
                    mode.backend.c_str(), config.mcSamples,
                    batch_images, accel::kernels::activeKernelName())});
    }
    std::printf("\n");
    mode_table.print();
    std::printf("weight reuse turns T x B passes into T rounds: "
                "%.2fx at T=%d, B=%zu (accuracy delta %.1f pp)\n",
                reuse_speedup, config.mcSamples, batch_images,
                modes[1].accuracy - modes[0].accuracy);

    // --- Async serving with micro-batch coalescing ---------------------
    // The latency-vs-throughput serving question: a burst of
    // single-image requests submitted one at a time vs. the same burst
    // submitted async, where the session dispatcher coalesces every
    // pending request into one weight-reuse pass.
    double serve_sync_ips = 0.0, serve_async_ips = 0.0;
    double serve_sync_rounds = 0.0, serve_async_rounds = 0.0;
    std::uint64_t async_passes = 0, async_max_merge = 0;
    {
        serve::SessionOptions serve_opts;
        serve_opts.mode = serve::ExecMode::Throughput;
        serve_opts.threads = 1;
        serve_opts.seed = envSeed() + 5;
        serve_opts.topK = 0;
        auto session = serve::InferenceSession::Builder()
                           .program(program)
                           .accelerator(config)
                           .options(serve_opts)
                           .build();
        session->run(serve::InferenceRequest::borrow(
            test_view.sample(0), 1, test_view.dim)); // steady-state
        bench::Stopwatch sync_clock;
        for (std::size_t i = 0; i < batch_images; ++i) {
            const auto r = session->run(serve::InferenceRequest::borrow(
                test_view.sample(i), 1, test_view.dim));
            serve_sync_rounds += r.meanRounds;
        }
        serve_sync_ips =
            static_cast<double>(batch_images) / sync_clock.seconds();
        serve_sync_rounds /= static_cast<double>(batch_images);

        const auto before = session->counters();
        bench::Stopwatch async_clock;
        std::vector<serve::ResultHandle> handles;
        handles.reserve(batch_images);
        for (std::size_t i = 0; i < batch_images; ++i) {
            handles.push_back(session->submit(
                serve::InferenceRequest::borrow(test_view.sample(i), 1,
                                                test_view.dim)));
        }
        session->drain();
        serve_async_ips =
            static_cast<double>(batch_images) / async_clock.seconds();
        for (auto &handle : handles)
            serve_async_rounds += handle.get().meanRounds;
        serve_async_rounds /= static_cast<double>(batch_images);
        const auto after = session->counters();
        async_passes = after.passes - before.passes;
        async_max_merge = after.maxCoalescedRequests;
    }
    TextTable serve_table;
    serve_table.setHeader({"Serving (1-image requests)", "Images/s",
                           "Speedup", "detail"});
    serve_table.addRow({"run() one request at a time",
                        strfmt("%.2f", serve_sync_ips), "1.0x",
                        strfmt("%zu passes of T=%d rounds",
                               batch_images, config.mcSamples)});
    serve_table.addRow(
        {"submit() burst + coalescer", strfmt("%.2f", serve_async_ips),
         strfmt("%.2fx", serve_async_ips / serve_sync_ips),
         strfmt("%llu passes, largest merged %llu requests",
                static_cast<unsigned long long>(async_passes),
                static_cast<unsigned long long>(async_max_merge))});
    std::printf("\n");
    serve_table.print();

    // Machine-readable trajectory (VIBNN_BENCH_JSON=<path>).
    report.add(bench::JsonRecord()
                   .field("bench", "table5")
                   .field("section", "fpga_model")
                   .field("backend", "simulator")
                   .field("cycles_per_pass", cycles)
                   .field("images_per_s", rlf_perf.imagesPerSecond));
    report.add(bench::JsonRecord()
                   .field("bench", "table5")
                   .field("section", "host_mc")
                   .field("backend", "simulator")
                   .field("schedule", "serial")
                   .field("T", config.mcSamples)
                   .field("batch", mc_images)
                   .field("images_per_s", serial_throughput));
    report.add(bench::JsonRecord()
                   .field("bench", "table5")
                   .field("section", "host_mc")
                   .field("backend", "simulator")
                   .field("schedule", "per-unit")
                   .field("T", config.mcSamples)
                   .field("batch", mc_images)
                   .field("images_per_s", engine_throughput)
                   .field("executors", engine.executorCount()));
    for (const auto &mode : modes) {
        report.add(
            bench::JsonRecord()
                .field("bench", "table5")
                .field("section", "exec_mode")
                .field("backend", mode.backend)
                .field("schedule",
                       mode.mode == serve::ExecMode::Throughput
                           ? "per-round"
                           : "per-unit")
                .field("kernel", accel::kernels::activeKernelName())
                .field("T", config.mcSamples)
                .field("batch", batch_images)
                .field("images_per_s", mode.imagesPerSecond)
                .field("mean_rounds", mode.meanRounds)
                .field("effective_img_per_s", mode.imagesPerSecond)
                .field("accuracy_pct", mode.accuracy));
    }
    report.add(bench::JsonRecord()
                   .field("bench", "table5")
                   .field("section", "serve")
                   .field("style", "run-sequential")
                   .field("T", config.mcSamples)
                   .field("requests", batch_images)
                   .field("images_per_s", serve_sync_ips)
                   .field("mean_rounds", serve_sync_rounds)
                   .field("effective_img_per_s", serve_sync_ips));
    report.add(bench::JsonRecord()
                   .field("bench", "table5")
                   .field("section", "serve")
                   .field("style", "submit-coalesced")
                   .field("kernel", accel::kernels::activeKernelName())
                   .field("T", config.mcSamples)
                   .field("requests", batch_images)
                   .field("images_per_s", serve_async_ips)
                   .field("mean_rounds", serve_async_rounds)
                   .field("effective_img_per_s", serve_async_ips)
                   .field("passes", async_passes)
                   .field("max_merged_requests", async_max_merge));
    report.write();
    return 0;
}
