/**
 * @file
 * Reproduces Table 5: throughput and energy efficiency on the MNIST
 * network (784-200-200-10).
 *
 *  - FPGA rows: cycles/image measured on the cycle-level simulator,
 *    clock and power from the calibrated Cyclone V model.
 *  - CPU row: measured on this machine (single-thread software BNN,
 *    one MC pass per image, the same workload the accelerator executes
 *    per pass); energy uses the paper's CPU TDP assumption (91 W for
 *    the i7-6700k class).
 *  - GPU row: no GPU exists in this environment; the paper's reported
 *    numbers are printed as reference constants (substitution
 *    documented in DESIGN.md).
 */

#include <vector>

#include "bench_util.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_mlp.hh"
#include "bnn/bnn_trainer.hh"
#include "common/thread_pool.hh"
#include "data/synth_mnist.hh"
#include "grng/registry.hh"
#include "hwmodel/network_hw.hh"

using namespace vibnn;

int
main()
{
    bench::banner("Table 5",
                  "Throughput / energy on the MNIST network "
                  "(one Monte-Carlo pass per image)");

    // Timing does not depend on trained weights; an initialized
    // network exercises exactly the same datapath.
    Rng rng(envSeed());
    bnn::BayesianMlp net({784, 200, 200, 10}, rng);
    accel::AcceleratorConfig config; // 16 x 8 x 8 @ 8-bit
    const auto quantized = accel::quantizeNetwork(net, config);

    // --- FPGA: cycle-level simulation ---------------------------------
    auto gen = grng::makeGenerator("rlf", envSeed());
    accel::Simulator sim(quantized, config, gen.get());
    std::vector<float> image(784, 0.5f);
    const std::size_t sim_images = scaledCount(20);
    for (std::size_t i = 0; i < sim_images; ++i)
        sim.runPass(image.data());
    const double cycles = sim.stats().cyclesPerPass();

    hw::NetworkHwConfig hw_config;
    hw_config.grng = hw::GrngKind::Rlf;
    const auto rlf_design = networkEstimate(hw_config);
    hw_config.grng = hw::GrngKind::BnnWallace;
    const auto wal_design = networkEstimate(hw_config);
    const auto rlf_perf = performanceFromCycles(rlf_design, cycles);
    const auto wal_perf = performanceFromCycles(wal_design, cycles);

    // --- CPU: measured on this host ------------------------------------
    std::vector<float> logits(10);
    auto ws = net.makeWorkspace();
    Rng eps_rng(envSeed() + 1);
    auto eps = [&eps_rng] { return eps_rng.gaussian(); };
    const std::size_t cpu_images = scaledCount(400);
    bench::Stopwatch cpu_clock;
    for (std::size_t i = 0; i < cpu_images; ++i)
        net.sampledForward(image.data(), logits.data(), ws, eps);
    const double cpu_seconds = cpu_clock.seconds();
    const double cpu_throughput =
        static_cast<double>(cpu_images) / cpu_seconds;
    const double cpu_tdp_w = 91.0; // i7-6700k class TDP (modeled)
    const double cpu_energy = cpu_throughput / cpu_tdp_w;

    TextTable table;
    table.setHeader({"Configuration", "Throughput (Images/s)",
                     "Energy (Images/J)", "source"});
    table.addRow({"Intel i7-6700k (paper)", "10478.1", "115.1",
                  "paper reference"});
    table.addRow({"CPU on this host (measured)",
                  strfmt("%.1f", cpu_throughput),
                  strfmt("%.1f", cpu_energy),
                  strfmt("measured, TDP %.0f W model", cpu_tdp_w)});
    table.addRow({"Nvidia GTX1070 (paper)", "27988.1", "186.6",
                  "paper reference (no GPU here)"});
    table.addRow({"RLF-based FPGA (model)",
                  strfmt("%.1f", rlf_perf.imagesPerSecond),
                  strfmt("%.1f", rlf_perf.imagesPerJoule),
                  strfmt("sim %.0f cyc @ %.1f MHz, %.2f W", cycles,
                         rlf_perf.fsysMhz, rlf_perf.powerMw / 1000)});
    table.addRow({"RLF-based FPGA (paper)", "321543.4", "52694.8",
                  "paper reference"});
    table.addRow({"BNNWallace-based FPGA (model)",
                  strfmt("%.1f", wal_perf.imagesPerSecond),
                  strfmt("%.1f", wal_perf.imagesPerJoule),
                  strfmt("sim %.0f cyc @ %.1f MHz, %.2f W", cycles,
                         wal_perf.fsysMhz, wal_perf.powerMw / 1000)});
    table.addRow({"BNNWallace-based FPGA (paper)", "321543.4", "37722.1",
                  "paper reference"});
    table.print();

    std::printf(
        "\nSimulator detail: %.0f cycles/pass, PE utilization %.1f%%,\n"
        "GRN samples per pass %.0f, speedup over this host's CPU %.0fx\n",
        cycles,
        100.0 * sim.stats().utilization(config.totalPes(),
                                        config.peInputs()),
        static_cast<double>(sim.stats().grnSamples) /
            static_cast<double>(sim.stats().images),
        rlf_perf.imagesPerSecond / cpu_throughput);

    // --- Host-side Monte-Carlo engine ---------------------------------
    // Full classification (mcSamples passes + softmax averaging per
    // image) on the cycle-level simulator: the serial loop against the
    // McEngine fan-out over (image, MC sample) units.
    const std::size_t mc_images = scaledCount(8);
    std::vector<float> batch(mc_images * 784);
    Rng batch_rng(envSeed() + 2);
    for (auto &v : batch)
        v = static_cast<float>(batch_rng.uniform());

    auto serial_gen = grng::makeGenerator("rlf", envSeed());
    accel::Simulator serial_sim(quantized, config, serial_gen.get());
    bench::Stopwatch serial_clock;
    for (std::size_t i = 0; i < mc_images; ++i)
        serial_sim.classify(batch.data() + i * 784);
    const double serial_seconds = serial_clock.seconds();
    const double serial_throughput =
        static_cast<double>(mc_images) / serial_seconds;

    accel::McEngineConfig mc;
    mc.generatorId = "rlf";
    mc.seedBase = envSeed();
    accel::McEngine engine(quantized, config, mc);
    // Replica construction happens on first use; classify one image
    // outside the timed region so the measurement is steady-state.
    engine.classify(batch.data());
    bench::Stopwatch engine_clock;
    engine.classifyBatch(batch.data(), mc_images, 784);
    const double engine_seconds = engine_clock.seconds();
    const double engine_throughput =
        static_cast<double>(mc_images) / engine_seconds;

    TextTable mc_table;
    mc_table.setHeader({"Host MC classification", "Images/s",
                        "Speedup", "detail"});
    mc_table.addRow({"Simulator::classify (serial)",
                     strfmt("%.2f", serial_throughput), "1.0x",
                     strfmt("%d MC passes/image", config.mcSamples)});
    mc_table.addRow(
        {"McEngine (parallel)", strfmt("%.2f", engine_throughput),
         strfmt("%.2fx", engine_throughput / serial_throughput),
         strfmt("%zu executors, %zu replicas, %zu-image batch",
                engine.executorCount(), engine.replicaCount(),
                mc_images)});
    std::printf("\n");
    mc_table.print();
    if (engine.executorCount() <= 1)
        std::printf("note: single-core host — McEngine ran inline; "
                    "the >= 2x target needs a multi-core machine\n");

    // --- Batched weight-reuse inference (executor backends) -----------
    // Per-pass fidelity (functional backend, fresh weights per (image,
    // sample) unit) against the weight-reuse round schedule (batched
    // backend: one weight draw per compute op per MC round, shared
    // across the whole batch) at matched T on a trained synth-MNIST
    // classifier, so the accuracy cost of reuse is visible next to the
    // throughput win. Both run single-replica so the ratio isolates
    // the algorithmic effect, not thread scaling.
    bench::JsonReport report;
    data::SynthMnistConfig synth;
    synth.trainCount = scaledCount(600);
    synth.testCount = 60; // the fixed reference batch
    synth.seed = envSeed() + 3;
    const auto ds = data::makeSynthMnist(synth);

    bnn::BnnTrainConfig train_cfg;
    train_cfg.epochs = std::max<std::size_t>(1, scaledCount(2));
    train_cfg.seed = envSeed() + 4;
    Rng init_rng(train_cfg.seed);
    bnn::BayesianMlp mnist_net({784, 200, 200, 10}, init_rng);
    bnn::trainBnn(mnist_net, ds.train.view(), train_cfg);

    const auto program = accel::compile(mnist_net, config);
    const auto test_view = ds.test.view();
    const std::size_t batch_images = test_view.count;

    auto accuracy_pct = [&](const std::vector<std::size_t> &preds) {
        std::size_t correct = 0;
        for (std::size_t i = 0; i < preds.size(); ++i) {
            if (preds[i] ==
                static_cast<std::size_t>(test_view.labels[i]))
                ++correct;
        }
        return 100.0 * static_cast<double>(correct) /
            static_cast<double>(preds.size());
    };

    struct ModeRow
    {
        const char *name;
        const char *backend;
        accel::McSchedule schedule;
        double imagesPerSecond = 0.0;
        double accuracy = 0.0;
    };
    ModeRow modes[2] = {
        {"fidelity (per-pass)", "functional",
         accel::McSchedule::PerUnit},
        {"throughput (weight reuse)", "batched",
         accel::McSchedule::PerRound},
    };
    for (auto &mode : modes) {
        accel::McEngineConfig mc_cfg;
        mc_cfg.threads = 1; // isolate the algorithmic effect
        mc_cfg.generatorId = "rlf";
        mc_cfg.seedBase = envSeed() + 5;
        mc_cfg.backendId = mode.backend;
        mc_cfg.schedule = mode.schedule;
        accel::McEngine mode_engine(program, config, mc_cfg);
        mode_engine.classify(test_view.sample(0)); // steady-state
        bench::Stopwatch clock;
        const auto preds = mode_engine.classifyBatch(
            test_view.features, batch_images, test_view.dim);
        const double seconds = clock.seconds();
        mode.imagesPerSecond =
            static_cast<double>(batch_images) / seconds;
        mode.accuracy = accuracy_pct(preds);
    }
    const double reuse_speedup =
        modes[1].imagesPerSecond / modes[0].imagesPerSecond;

    TextTable mode_table;
    mode_table.setHeader({"Exec mode (batch inference)", "Images/s",
                          "Speedup", "Accuracy", "detail"});
    for (const auto &mode : modes) {
        mode_table.addRow(
            {mode.name, strfmt("%.2f", mode.imagesPerSecond),
             strfmt("%.2fx",
                    mode.imagesPerSecond / modes[0].imagesPerSecond),
             strfmt("%.1f%%", mode.accuracy),
             strfmt("%s backend, T=%d, %zu-image batch", mode.backend,
                    config.mcSamples, batch_images)});
    }
    std::printf("\n");
    mode_table.print();
    std::printf("weight reuse turns T x B passes into T rounds: "
                "%.2fx at T=%d, B=%zu (accuracy delta %.1f pp)\n",
                reuse_speedup, config.mcSamples, batch_images,
                modes[1].accuracy - modes[0].accuracy);

    // Machine-readable trajectory (VIBNN_BENCH_JSON=<path>).
    report.add(bench::JsonRecord()
                   .field("bench", "table5")
                   .field("section", "fpga_model")
                   .field("backend", "simulator")
                   .field("cycles_per_pass", cycles)
                   .field("images_per_s", rlf_perf.imagesPerSecond));
    report.add(bench::JsonRecord()
                   .field("bench", "table5")
                   .field("section", "host_mc")
                   .field("backend", "simulator")
                   .field("schedule", "serial")
                   .field("T", config.mcSamples)
                   .field("batch", mc_images)
                   .field("images_per_s", serial_throughput));
    report.add(bench::JsonRecord()
                   .field("bench", "table5")
                   .field("section", "host_mc")
                   .field("backend", "simulator")
                   .field("schedule", "per-unit")
                   .field("T", config.mcSamples)
                   .field("batch", mc_images)
                   .field("images_per_s", engine_throughput)
                   .field("executors", engine.executorCount()));
    for (const auto &mode : modes) {
        report.add(
            bench::JsonRecord()
                .field("bench", "table5")
                .field("section", "exec_mode")
                .field("backend", mode.backend)
                .field("schedule",
                       mode.schedule == accel::McSchedule::PerRound
                           ? "per-round"
                           : "per-unit")
                .field("T", config.mcSamples)
                .field("batch", batch_images)
                .field("images_per_s", mode.imagesPerSecond)
                .field("accuracy_pct", mode.accuracy));
    }
    report.write();
    return 0;
}
