/**
 * @file
 * Reproduces Figure 15: randomness-test pass rates of software Wallace
 * and BNNWallace across pool sizes, plus the Wallace-NSS baseline.
 *
 * Two metrics per design:
 *  - runs test (Wald-Wolfowitz above/below median, the algorithm of
 *    Matlab's runstest, which the paper uses) on the serial stream;
 *  - peak |autocorrelation| of a single output port's stream over lags
 *    covering two pool-recycling periods. This is the deployment
 *    metric: a weight-updater input is wired to one port. The naive
 *    NSS port carries a ~0.5 spike at the recycling lag (each output
 *    recombines that port's own previous output) — the precise sense
 *    in which it "fails to pass any randomness test".
 */

#include <cmath>
#include <memory>

#include "bench_util.hh"
#include "grng/bnn_wallace.hh"
#include "grng/registry.hh"
#include "grng/wallace.hh"
#include "stats/autocorr.hh"
#include "stats/runs_test.hh"

using namespace vibnn;
using namespace vibnn::grng;

namespace
{

double
runsRate(GaussianGenerator &gen, std::size_t samples_per_test,
         std::size_t reps)
{
    return stats::runsTestPassRate(
        [&gen](std::vector<double> &buf) {
            for (auto &x : buf)
                x = gen.next();
        },
        samples_per_test, reps);
}

double
portPeakAc(const BnnWallaceConfig &config, std::size_t cycles)
{
    BnnWallaceGrng gen(config);
    std::vector<double> all, port;
    for (std::size_t c = 0; c < cycles; ++c)
        gen.nextCycle(all);
    const std::size_t stride = 4 * config.units;
    for (std::size_t i = 0; i < all.size(); i += stride)
        port.push_back(all[i]);
    double peak = 0.0;
    const std::size_t max_lag = config.poolSize / 2 + 8;
    for (std::size_t lag = 1; lag <= max_lag; ++lag)
        peak = std::max(peak,
                        std::fabs(stats::autocorrelation(port, lag)));
    return peak;
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 15",
                  "Randomness-test pass rates vs pool size "
                  "(runs test at alpha = 0.05; plus per-port peak "
                  "autocorrelation)");

    const std::size_t samples_per_test = scaledCount(20000);
    const std::size_t reps = scaledCount(60);

    TextTable table;
    table.setHeader({"Design", "Pool", "runs pass rate",
                     "port peak |ac|", "verdict"});

    for (int pool : {256, 512, 1024, 2048, 4096}) {
        // Software Wallace (random addressing).
        WallaceConfig sw;
        sw.poolSize = static_cast<std::size_t>(pool);
        sw.seed = envSeed();
        WallaceGrng soft(sw);
        const double soft_rate = runsRate(soft, samples_per_test, reps);
        table.addRow({"Software Wallace", strfmt("%d", pool),
                      strfmt("%.2f", soft_rate), "-",
                      soft_rate > 0.8 ? "pass" : "FAIL"});
    }
    table.addSeparator();

    for (int pool : {256, 512, 1024, 2048, 4096}) {
        BnnWallaceConfig hw;
        hw.poolSize = pool;
        hw.seed = envSeed();
        BnnWallaceGrng gen(hw);
        const double rate = runsRate(gen, samples_per_test, reps);
        const double peak = portPeakAc(hw, scaledCount(20000));
        const bool pass = rate > 0.8 && peak < 0.1;
        table.addRow({"BNNWallace (8 units)", strfmt("%d", pool),
                      strfmt("%.2f", rate), strfmt("%.3f", peak),
                      pass ? "pass" : "FAIL"});
    }
    table.addSeparator();

    {
        BnnWallaceConfig nss;
        nss.sharingAndShifting = false;
        nss.seed = envSeed();
        BnnWallaceGrng gen(nss);
        const double rate = runsRate(gen, samples_per_test, reps);
        const double peak = portPeakAc(nss, scaledCount(20000));
        table.addRow({"Wallace-NSS", "256", strfmt("%.2f", rate),
                      strfmt("%.3f", peak),
                      peak < 0.1 ? "pass" : "FAIL (port correlated)"});
    }
    {
        auto rlf = makeGenerator("rlf", envSeed());
        const double rate = runsRate(*rlf, samples_per_test, reps);
        table.addRow({"RLF-GRNG (8 lanes)", "-", strfmt("%.2f", rate),
                      "-", rate > 0.8 ? "pass" : "partial (see notes)"});
    }
    table.print();

    std::printf(
        "\nPaper claims reproduced: software Wallace passes at every\n"
        "pool size; BNNWallace becomes comparable to software as the\n"
        "logical pool grows; Wallace-NSS fails (the ~0.5 port-lag\n"
        "spike). The raw RLF stream keeps the bounded-step correlation\n"
        "the paper itself flags (Section 4.1.2); see EXPERIMENTS.md.\n");
    return 0;
}
