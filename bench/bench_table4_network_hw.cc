/**
 * @file
 * Reproduces Table 4: FPGA resource utilization of the full VIBNN
 * accelerator (16 PE-sets x 8 PEs x 8 inputs, 8-bit operands,
 * 784-200-200-10 network) for both GRNG choices.
 */

#include "bench_util.hh"
#include "hwmodel/cyclonev.hh"
#include "hwmodel/network_hw.hh"

using namespace vibnn;
using namespace vibnn::hw;

int
main()
{
    bench::banner("Table 4",
                  "Full-network FPGA utilization, 16x8x8 @ 8-bit, "
                  "784-200-200-10");

    NetworkHwConfig config;
    config.grng = GrngKind::Rlf;
    const auto rlf = networkEstimate(config);
    config.grng = GrngKind::BnnWallace;
    const auto wal = networkEstimate(config);

    const auto rt = rlf.total();
    const auto wt = wal.total();
    const double total_alms = CycloneVDevice::totalAlms;
    const double total_bits = CycloneVDevice::totalMemoryBits;

    TextTable table;
    table.setHeader({"Metric", "RLF-based (model)", "RLF (paper)",
                     "Wallace-based (model)", "Wallace (paper)"});
    table.addRow({"Total ALMs",
                  strfmt("%.0f (%.1f%%)", rt.alms,
                         100.0 * rt.alms / total_alms),
                  "98,006 (86.3%)",
                  strfmt("%.0f (%.1f%%)", wt.alms,
                         100.0 * wt.alms / total_alms),
                  "91,126 (80.2%)"});
    table.addRow({"Total DSPs", strfmt("%d (100%%)", rt.dsps),
                  "342 (100%)", strfmt("%d (100%%)", wt.dsps),
                  "342 (100%)"});
    table.addRow({"Total Registers", strfmt("%.0f", rt.registers),
                  "88,720", strfmt("%.0f", wt.registers), "78,800"});
    table.addRow({"Block Memory Bits",
                  strfmt("%lld (%.1f%%)",
                         static_cast<long long>(rt.memoryBits),
                         100.0 * rt.memoryBits / total_bits),
                  "4,572,928 (36.6%)",
                  strfmt("%lld (%.1f%%)",
                         static_cast<long long>(wt.memoryBits),
                         100.0 * wt.memoryBits / total_bits),
                  "4,880,128 (39.1%)"});
    table.print();

    std::printf("\nItemized (RLF-based):\n");
    for (const auto &c : rlf.components) {
        std::printf("  %-26s ALMs %8.0f  regs %7.0f  bits %9lld  "
                    "DSP %3d\n",
                    c.label.c_str(), c.resources.alms,
                    c.resources.registers,
                    static_cast<long long>(c.resources.memoryBits),
                    c.resources.dsps);
    }
    return 0;
}
