/**
 * @file
 * Open-loop Poisson load generator for the vibnn-serve network server.
 *
 * Drives a sharded serve::Server over real loopback TCP with
 * Poisson-arrival classify traffic of MIXED ensemble sizes and batch
 * sizes (the serving mix a deployment sees, not a fixed-shape
 * microbench), and reports client-observed latency percentiles,
 * achieved throughput, overload rejections, and the server's merge
 * factor:
 *
 *   1. shard sweep — the same offered load against 1..N shards
 *      (sharding ~linear on multi-core hosts; see PERFORMANCE.md for
 *      the single-core caveat),
 *   2. offered-load sweep at fixed shards — "low" (headroom), "high"
 *      (near saturation), and "overload" (past capacity against a
 *      small admission queue, where the explicit-rejection contract
 *      must kick in: bounded p99 for accepted requests plus a nonzero
 *      reject count, instead of collapse).
 *
 * Open loop: each connection pre-draws its Poisson schedule and sends
 * at the scheduled instants regardless of completions (falling behind
 * means sending back-to-back until caught up) — so queueing delay
 * shows up in the latencies instead of silently throttling the
 * offered rate.
 *
 * Env: VIBNN_SCALE scales request counts, VIBNN_SEED the schedules,
 * VIBNN_BENCH_JSON emits machine-readable records (BENCH_PR9.json is
 * the committed baseline the CI kernel-matrix job gates against —
 * achieved_img_per_s higher-is-better, p99_us lower-is-better).
 * --connect HOST PORT drives an external server (e.g. vibnn_server on
 * another machine) instead of the in-process one.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/program.hh"
#include "bench_util.hh"
#include "bnn/bayesian_mlp.hh"
#include "common/rng.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/session.hh"

using namespace vibnn;
using namespace vibnn::bench;

namespace
{

constexpr std::size_t kInputDim = 24;

/** One connection's measured outcomes. */
struct ConnResult
{
    std::vector<double> latenciesMicros; // accepted requests only
    std::size_t images = 0;              // accepted images
    std::size_t rejects = 0;
    std::size_t errors = 0;
};

struct LoadConfig
{
    std::string host;
    std::uint16_t port = 0;
    std::size_t conns = 4;
    std::size_t requestsPerConn = 50;
    double offeredReqPerSec = 200.0; // per connection
    std::int64_t deadlineMicros = 50'000;
    std::uint64_t seed = 1;
};

/** Drive one connection's open-loop Poisson schedule. */
ConnResult
runConnection(const LoadConfig &config, std::size_t conn_index)
{
    ConnResult result;
    serve::Client client;
    std::string error;
    if (!client.connect(config.host, config.port, error)) {
        result.errors = config.requestsPerConn;
        return result;
    }

    Rng rng(config.seed + conn_index * 7919);
    // Pre-draw the whole arrival schedule (open loop) and the request
    // mix: T in {4, 8}, batch in {1, 4} — mixed shapes are the point.
    std::vector<double> at_seconds(config.requestsPerConn);
    std::vector<std::uint32_t> t_of(config.requestsPerConn);
    std::vector<std::uint32_t> batch_of(config.requestsPerConn);
    double clock = 0.0;
    for (std::size_t i = 0; i < config.requestsPerConn; ++i) {
        const double u = std::max(rng.uniform(), 1e-12);
        clock += -std::log(u) / config.offeredReqPerSec;
        at_seconds[i] = clock;
        t_of[i] = rng.uniform() < 0.5 ? 4u : 8u;
        batch_of[i] = rng.uniform() < 0.75 ? 1u : 4u;
    }
    std::vector<float> features(4 * kInputDim);
    for (auto &v : features)
        v = static_cast<float>(rng.uniform());

    const Stopwatch clock_sw;
    for (std::size_t i = 0; i < config.requestsPerConn; ++i) {
        const double ahead = at_seconds[i] - clock_sw.seconds();
        if (ahead > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(ahead));
        serve::Client::Options options;
        options.mcSamples = t_of[i];
        options.deadlineMicros = config.deadlineMicros;
        const Stopwatch rt;
        const auto reply = client.classify(features.data(),
                                           batch_of[i], kInputDim,
                                           options);
        if (reply.ok()) {
            result.latenciesMicros.push_back(rt.seconds() * 1e6);
            result.images += batch_of[i];
        } else if (reply.status ==
                   serve::Client::Status::Overloaded) {
            ++result.rejects;
        } else {
            ++result.errors;
        }
    }
    return result;
}

double
quantile(std::vector<double> &values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    return values[idx];
}

struct RunSummary
{
    double wallSeconds = 0.0;
    double achievedImgPerSec = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    std::size_t accepted = 0, rejects = 0, errors = 0;
    double mergeImagesPerPass = 0.0;
    std::uint64_t heldPasses = 0;
};

RunSummary
runLoad(const LoadConfig &config, serve::Server *server)
{
    std::vector<ConnResult> results(config.conns);
    std::vector<std::thread> threads;
    const Stopwatch wall;
    for (std::size_t c = 0; c < config.conns; ++c)
        threads.emplace_back(
            [&, c] { results[c] = runConnection(config, c); });
    for (auto &t : threads)
        t.join();

    RunSummary summary;
    summary.wallSeconds = wall.seconds();
    std::vector<double> latencies;
    std::size_t images = 0;
    for (const auto &r : results) {
        latencies.insert(latencies.end(), r.latenciesMicros.begin(),
                         r.latenciesMicros.end());
        images += r.images;
        summary.rejects += r.rejects;
        summary.errors += r.errors;
    }
    summary.accepted = latencies.size();
    summary.achievedImgPerSec =
        summary.wallSeconds > 0
            ? static_cast<double>(images) / summary.wallSeconds
            : 0.0;
    summary.p50 = quantile(latencies, 0.50);
    summary.p95 = quantile(latencies, 0.95);
    summary.p99 = quantile(latencies, 0.99);
    if (server) {
        const auto stats = server->stats();
        double merge = 0.0;
        for (const auto &shard : stats.shards) {
            merge += shard.mergeImagesPerPass;
            summary.heldPasses += shard.heldPasses;
        }
        if (!stats.shards.empty())
            summary.mergeImagesPerPass =
                merge / static_cast<double>(stats.shards.size());
    }
    return summary;
}

std::unique_ptr<serve::Server>
makeServer(std::size_t shards, std::size_t queue_capacity)
{
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 8;
    config.mcSamples = 8;
    Rng rng(envSeed() + 17);
    bnn::BayesianMlp net({kInputDim, 16, 4}, rng, -3.0f);

    serve::SessionOptions session;
    session.mode = serve::ExecMode::Throughput;
    session.seed = envSeed();
    serve::ServerOptions options;
    options.shards = shards;
    options.queueCapacity = queue_capacity;
    options.session = session;
    auto server = std::make_unique<serve::Server>(
        compile(net, config), config, options);
    std::string error;
    if (!server->start(error))
        fatal("bench_serving_load: cannot start server: " + error);
    return server;
}

void
report(const char *section, std::size_t shards, const char *offered,
       const LoadConfig &config, const RunSummary &s,
       JsonReport &json)
{
    std::printf("%-12s shards=%zu offered=%-8s conns=%zu  "
                "%7.1f img/s  p50 %6.0fus  p95 %6.0fus  p99 %6.0fus  "
                "rejects %zu  merge %.2f\n",
                section, shards, offered, config.conns,
                s.achievedImgPerSec, s.p50, s.p95, s.p99, s.rejects,
                s.mergeImagesPerPass);
    json.add(JsonRecord()
                 .field("bench", "bench_serving_load")
                 .field("section", section)
                 .field("shards", shards)
                 .field("offered", offered)
                 .field("conns", config.conns)
                 .field("requests",
                        config.conns * config.requestsPerConn)
                 .field("achieved_img_per_s", s.achievedImgPerSec)
                 .field("p50_us", s.p50)
                 .field("p95_us", s.p95)
                 .field("p99_us", s.p99)
                 .field("accepted", s.accepted)
                 .field("rejects", s.rejects)
                 .field("errors", s.errors)
                 .field("merge_images_per_pass",
                        s.mergeImagesPerPass)
                 .field("held_passes",
                        static_cast<std::size_t>(s.heldPasses)));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    banner("serving load (PR 9)",
           "Open-loop Poisson load against the sharded socket server: "
           "shard sweep, offered-load sweep, overload rejection.");

    // --connect HOST PORT: drive an external vibnn_server instead of
    // the in-process one (merge factor / held passes then read 0 —
    // scrape the server's metrics endpoint for those).
    std::string ext_host;
    int ext_port = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--connect") == 0 && i + 2 < argc) {
            ext_host = argv[i + 1];
            ext_port = std::atoi(argv[i + 2]);
            i += 2;
        }
    }

    JsonReport json;
    LoadConfig base;
    base.requestsPerConn = scaledCount(40);
    base.seed = envSeed();

    if (!ext_host.empty()) {
        base.host = ext_host;
        base.port = static_cast<std::uint16_t>(ext_port);
        base.conns = 8;
        base.offeredReqPerSec = 300.0;
        const auto s = runLoad(base, nullptr);
        report("external", 0, "high", base, s, json);
        json.write();
        return s.errors == 0 ? 0 : 1;
    }

    std::size_t total_errors = 0;

    // 1. Shard sweep at a fixed high offered load. On a multi-core
    // host throughput scales ~linearly with shards at bounded p99; a
    // single-core container serializes the shards and the sweep
    // reports flat numbers (PERFORMANCE.md documents the caveat).
    std::printf("\n-- shard sweep (offered: 8 conns x 300 req/s, "
                "mixed T {4,8} x batch {1,4}) --\n");
    for (std::size_t shards : {std::size_t(1), std::size_t(2),
                               std::size_t(4)}) {
        auto server = makeServer(shards, 256);
        LoadConfig config = base;
        config.host = "127.0.0.1";
        config.port = server->port();
        config.conns = 8;
        config.offeredReqPerSec = 300.0;
        const auto s = runLoad(config, server.get());
        report("shard_sweep", shards, "high", config, s, json);
        total_errors += s.errors;
        server->stop();
    }

    // 2. Offered-load sweep at 2 shards: low load (headroom, the
    // coalescer holds mostly idle), then overload against a tiny
    // admission queue — the explicit-rejection contract: nonzero
    // rejects, bounded p99 for what was accepted.
    std::printf("\n-- offered-load sweep (2 shards) --\n");
    {
        auto server = makeServer(2, 256);
        LoadConfig config = base;
        config.host = "127.0.0.1";
        config.port = server->port();
        config.conns = 2;
        config.offeredReqPerSec = 40.0;
        const auto s = runLoad(config, server.get());
        report("load_sweep", 2, "low", config, s, json);
        total_errors += s.errors;
        server->stop();
    }
    {
        // queueCapacity 2 against 12 hammering connections: far past
        // capacity, so a healthy server MUST reject.
        auto server = makeServer(2, 2);
        LoadConfig config = base;
        config.host = "127.0.0.1";
        config.port = server->port();
        config.conns = 12;
        config.offeredReqPerSec = 500.0;
        config.deadlineMicros = 20'000;
        const auto s = runLoad(config, server.get());
        report("load_sweep", 2, "overload", config, s, json);
        total_errors += s.errors;
        if (s.rejects == 0)
            std::printf("WARNING: overload run saw no rejections — "
                        "admission control did not engage\n");
        server->stop();
    }

    json.write();
    if (total_errors > 0) {
        std::printf("\n%zu request(s) failed with transport/protocol "
                    "errors\n",
                    total_errors);
        return 1;
    }
    std::printf("\nall requests completed (accepted or explicitly "
                "rejected)\n");
    return 0;
}
