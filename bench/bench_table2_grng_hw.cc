/**
 * @file
 * Reproduces Table 2 ("Hardware Utilization and Performance Comparison
 * between RLF-GRNG and Wallace-based GRNG for 64 Parallel Gaussian
 * Random Number Generation Task") and prints the qualitative Table 3
 * comparison derived from the same model.
 */

#include "bench_util.hh"
#include "hwmodel/cyclonev.hh"
#include "hwmodel/grng_hw.hh"

using namespace vibnn;
using namespace vibnn::hw;

namespace
{

void
addDesignRows(TextTable &table, const char *metric, double rlf,
              double wallace, const char *rlf_paper,
              const char *wallace_paper, const char *format = "%.0f")
{
    table.addRow({metric, strfmt(format, rlf), std::string(rlf_paper),
                  strfmt(format, wallace), std::string(wallace_paper)});
}

} // anonymous namespace

int
main()
{
    bench::banner("Table 2 (+Table 3)",
                  "GRNG hardware utilization & performance, 64-parallel "
                  "generation task, Cyclone V 5CGTFD9E5F35C7 model");

    RlfGrngHwConfig rlf_config; // 255-bit SeMem x 64 lanes
    BnnWallaceHwConfig wal_config; // 16 units x 4096 x 16-bit

    const auto rlf = rlfGrngEstimate(rlf_config);
    const auto wal = bnnWallaceEstimate(wal_config);
    const auto rt = rlf.total();
    const auto wt = wal.total();

    TextTable table;
    table.setHeader({"Metric", "RLF (model)", "RLF (paper)",
                     "BNNWallace (model)", "BNNWallace (paper)"});
    addDesignRows(table, "Total ALMs", rt.alms, wt.alms, "831", "401");
    addDesignRows(table, "Total Registers", rt.registers, wt.registers,
                  "1780", "1166");
    addDesignRows(table, "Block Memory Bits",
                  static_cast<double>(rt.memoryBits),
                  static_cast<double>(wt.memoryBits), "16,384",
                  "1,048,576");
    addDesignRows(table, "RAM Blocks (M10K)", rt.ramBlocks, wt.ramBlocks,
                  "3", "103");
    addDesignRows(table, "Power (mW)", rlf.powerMw, wal.powerMw,
                  "528.69", "560.25", "%.2f");
    addDesignRows(table, "Clock (MHz)", rlf.fmaxMhz, wal.fmaxMhz,
                  "212.95", "117.63", "%.2f");
    table.print();

    std::printf("\nItemized RLF-GRNG components:\n");
    for (const auto &c : rlf.components) {
        std::printf("  %-24s ALMs %7.0f  regs %6.0f  bits %8lld\n",
                    c.label.c_str(), c.resources.alms,
                    c.resources.registers,
                    static_cast<long long>(c.resources.memoryBits));
    }
    std::printf("Itemized BNNWallace components:\n");
    for (const auto &c : wal.components) {
        std::printf("  %-24s ALMs %7.0f  regs %6.0f  bits %8lld\n",
                    c.label.c_str(), c.resources.alms,
                    c.resources.registers,
                    static_cast<long long>(c.resources.memoryBits));
    }

    // Table 3 — the qualitative comparison, derived from the numbers.
    std::printf("\nTable 3 (derived qualitative comparison):\n");
    TextTable t3;
    t3.setHeader({"", "RLF-GRNG", "BNNWallace-GRNG"});
    t3.addRow({"Memory usage",
               rt.memoryBits < wt.memoryBits ? "low (wins)" : "high",
               wt.memoryBits < rt.memoryBits ? "low (wins)" : "high"});
    t3.addRow({"Clock frequency",
               rlf.fmaxMhz > wal.fmaxMhz ? "high (wins)" : "lower",
               wal.fmaxMhz > rlf.fmaxMhz ? "high (wins)" : "lower"});
    t3.addRow({"ALM / register usage",
               rt.alms < wt.alms ? "low (wins)" : "higher",
               wt.alms < rt.alms ? "low (wins)" : "higher"});
    t3.addRow({"Power efficiency",
               rlf.powerMw < wal.powerMw ? "better" : "worse",
               wal.powerMw < rlf.powerMw ? "better" : "worse"});
    t3.addRow({"Distribution adjustability", "fixed-binomial",
               "adjustable pool"});
    t3.print();
    return 0;
}
