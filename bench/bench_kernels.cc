/**
 * @file
 * SIMD kernel-layer microbenchmark: per-tier throughput of the three
 * hot kernels the batched inference path is built on — the batched
 * fixed-point GEMM (with and without the int16 madd fast path), the
 * fused mu + sigma * eps weight draw, and the double->fixed eps
 * conversion. Every tier compiled into the binary and supported by
 * this CPU gets a row, with the dispatch-selected tier marked; all
 * tiers are ctest-pinned bit-exact, so the only difference between
 * rows is speed. VIBNN_BENCH_JSON=<path> records the table
 * machine-readably (section "kernels").
 */

#include <vector>

#include "bench_util.hh"
#include "accel/kernels/kernels.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "fixed/fixed_point.hh"

using namespace vibnn;
namespace k = vibnn::accel::kernels;

namespace
{

std::vector<std::int32_t>
randomRaws(const fixed::FixedPointFormat &fmt, std::uint64_t seed,
           std::size_t count)
{
    Rng rng(seed);
    const auto lo = fmt.rawMin();
    const auto span =
        static_cast<std::uint64_t>(fmt.rawMax() - fmt.rawMin() + 1);
    std::vector<std::int32_t> raws(count);
    for (auto &r : raws)
        r = static_cast<std::int32_t>(
            lo + static_cast<std::int64_t>(rng.uniformInt(span)));
    return raws;
}

/** Run body() until ~0.15 s have elapsed; returns iterations/second. */
template <typename Body>
double
rate(const Body &body)
{
    body(); // warm
    std::size_t iters = 0;
    bench::Stopwatch clock;
    double elapsed = 0.0;
    do {
        body();
        ++iters;
        elapsed = clock.seconds();
    } while (elapsed < 0.15);
    return static_cast<double>(iters) / elapsed;
}

} // namespace

int
main()
{
    bench::banner("SIMD kernels",
                  "Per-tier throughput of the batched-path hot loops "
                  "(GEMM, fused weight sampling, eps conversion)");
    std::printf("dispatch-selected tier: %s "
                "(VIBNN_FORCE_SCALAR / VIBNN_KERNELS override)\n\n",
                k::activeKernelName());

    // The MNIST throughput shape: 200 neurons x 784 inputs over a
    // 60-image batch — the first (dominant) Dense op of the Table 5
    // network.
    const fixed::FixedPointFormat act{8, 4}, weight{8, 6}, eps{8, 5};
    const std::size_t in_dim = 784, out_dim = 200, images = 60;
    const auto weights = randomRaws(weight, 1, out_dim * in_dim);
    const auto acts = randomRaws(act, 2, images * in_dim);
    const auto bias = randomRaws(weight, 3, out_dim);
    std::vector<std::int16_t> w16(weights.size()), a16(acts.size());
    k::scalarKernels().packInt16(weights.data(), w16.data(),
                                 weights.size());
    k::scalarKernels().packInt16(acts.data(), a16.data(), acts.size());
    std::vector<std::int32_t> out(images * out_dim);

    k::GemmArgs gemm;
    gemm.weights = weights.data();
    gemm.ldw = in_dim;
    gemm.acts = acts.data();
    gemm.lda = in_dim;
    gemm.bias = bias.data();
    gemm.out = out.data();
    gemm.outNeuronStride = 1;
    gemm.outImageStride = out_dim;
    gemm.inDim = in_dim;
    gemm.outDim = out_dim;
    gemm.images = images;
    gemm.finish.biasShift = act.fracBits();
    gemm.finish.outShift = weight.fracBits();
    gemm.finish.outMin = static_cast<std::int32_t>(act.rawMin());
    gemm.finish.outMax = static_cast<std::int32_t>(act.rawMax());
    const double macs_per_call = static_cast<double>(in_dim) * out_dim *
        images;

    // Fused sampling + conversion shapes: one 64K block per call.
    const std::size_t n = 1 << 16;
    const auto mu = randomRaws(weight, 4, n);
    const auto sigma = randomRaws(weight, 5, n);
    const auto eps_raw = randomRaws(eps, 6, n);
    std::vector<std::int32_t> sampled(n);
    k::SampleParams sp;
    sp.epsShift = eps.fracBits();
    sp.wMin = static_cast<std::int32_t>(weight.rawMin());
    sp.wMax = static_cast<std::int32_t>(weight.rawMax());
    sp.sigmaAbsMax = -weight.rawMin();
    sp.epsAbsMax = -eps.rawMin();

    Rng real_rng(7);
    std::vector<double> reals(n);
    for (auto &v : reals)
        v = real_rng.gaussian();
    std::vector<std::int32_t> converted(n);

    // Eps generation: the transposed RLF cycle kernel (paper shape,
    // 255 x 8 lanes), counts per second == eps per second.
    const std::size_t rlf_cycles = 512;
    std::vector<std::uint8_t> rlf_planes(255, 0);
    std::vector<std::int32_t> rlf_sums(8, 0);
    {
        Rng seeder(11);
        for (int lane = 0; lane < 8; ++lane) {
            for (int p = 0; p < 255; ++p)
                if (seeder.next() & 1) {
                    rlf_planes[p] |=
                        static_cast<std::uint8_t>(1u << lane);
                    ++rlf_sums[lane];
                }
        }
    }
    std::vector<std::int32_t> rlf_counts(rlf_cycles * 8);

    bench::JsonReport report;
    TextTable table;
    table.setHeader({"tier", "GEMM s32 GMAC/s", "GEMM s16 GMAC/s",
                     "sample M/s", "eps conv M/s", "rlf eps M/s"});
    for (const auto *tier : k::availableKernels()) {
        gemm.weights16 = nullptr;
        gemm.acts16 = nullptr;
        const double gemm32 =
            rate([&] { tier->gemmBatch(gemm); }) * macs_per_call / 1e9;
        gemm.weights16 = w16.data();
        gemm.acts16 = a16.data();
        const double gemm16 =
            rate([&] { tier->gemmBatch(gemm); }) * macs_per_call / 1e9;
        const double sample = rate([&] {
            tier->sampleWeights(mu.data(), sigma.data(), eps_raw.data(),
                                sampled.data(), n, sp);
        }) * static_cast<double>(n) / 1e6;
        const double conv = rate([&] {
            tier->quantizeDouble(reals.data(), converted.data(), n,
                                 eps.fracBits(),
                                 static_cast<std::int32_t>(eps.rawMin()),
                                 static_cast<std::int32_t>(eps.rawMax()));
        }) * static_cast<double>(n) / 1e6;
        const double rlf_eps = rate([&] {
            k::RlfState st;
            st.planes = rlf_planes.data();
            st.sums = rlf_sums.data();
            st.length = 255;
            st.groups = 1;
            st.head = 0;
            tier->rlfCycleCounts(st, rlf_cycles, rlf_counts.data());
        }) * static_cast<double>(rlf_cycles * 8) / 1e6;

        const bool active =
            std::string(tier->name) == k::activeKernelName();
        table.addRow({std::string(tier->name) + (active ? " *" : ""),
                      strfmt("%.2f", gemm32), strfmt("%.2f", gemm16),
                      strfmt("%.1f", sample), strfmt("%.1f", conv),
                      strfmt("%.1f", rlf_eps)});
        report.add(bench::JsonRecord()
                       .field("bench", "kernels")
                       .field("section", "kernels")
                       .field("tier", tier->name)
                       .field("active", active ? 1 : 0)
                       .field("gemm_s32_gmacs", gemm32)
                       .field("gemm_s16_gmacs", gemm16)
                       .field("sample_ms", sample)
                       .field("eps_conv_ms", conv)
                       .field("rlf_eps_ms", rlf_eps));
    }
    table.print();
    std::printf("\n(* = dispatch-selected; s16 column falls back to the "
                "s32 path on tiers without a madd kernel)\n");
    report.write();
    return 0;
}
