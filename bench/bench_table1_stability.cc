/**
 * @file
 * Reproduces Table 1: "Stability errors to (mu, sigma) = (0, 1) of
 * Various Wallace Designs".
 *
 * Protocol: each design generates a long sample stream; the stream is
 * cut into windows of 4096 samples; we report the mean absolute
 * deviation of the per-window mean from 0 and of the per-window
 * standard deviation from 1, plus the whole-stream values. The paper's
 * reported numbers are printed alongside. The paper's exact metric is
 * not specified precisely enough to reproduce its absolute values —
 * see EXPERIMENTS.md for the full analysis — but the ordering it
 * demonstrates is reproduced: software Wallace improves with pool
 * size, the naive hardware port is the outlier, and the proposed
 * designs match the largest software pool.
 */

#include <cmath>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "grng/registry.hh"
#include "stats/moments.hh"

using namespace vibnn;

namespace
{

struct Row
{
    std::string id;
    std::string label;
    double paperMu;
    double paperSigma;
};

} // anonymous namespace

int
main()
{
    bench::banner("Table 1",
                  "Stability errors to (mu, sigma) = (0, 1) of Wallace "
                  "designs (plus RLF-GRNG)");

    const std::vector<Row> rows = {
        {"wallace-256", "Software 256 Pool Size", 0.0012, 0.3050},
        {"wallace-1024", "Software 1024 Pool Size", 0.0010, 0.0850},
        {"wallace-4096", "Software 4096 Pool Size", 0.0004, 0.0145},
        {"wallace-nss", "Hardware Wallace NSS", 0.0013, 0.4660},
        {"bnnwallace", "BNNWallace-GRNG", 0.0006, 0.0038},
        {"rlf-64", "RLF-GRNG (64 lanes)", 0.0006, 0.0074},
    };

    const std::size_t samples = scaledCount(1 << 18);
    const std::size_t window = 4096;
    const std::size_t restarts = scaledCount(8);

    TextTable table;
    table.setHeader({"GRNG Design", "mu err", "sigma err",
                     "stream |mu|", "stream |sig-1|", "paper mu",
                     "paper sigma"});

    for (const auto &row : rows)
    {
        // Average over independent restarts: the stability of a pool
        // generator is a random variable of its initial pool, so a
        // single seed can invert the pool-size ordering by luck.
        double mu_err = 0.0, sigma_err = 0.0;
        double stream_mu = 0.0, stream_sigma = 0.0;
        std::vector<double> xs(samples);
        for (std::size_t r = 0; r < restarts; ++r) {
            auto gen = grng::makeGenerator(row.id, envSeed() + 131 * r);
            for (auto &x : xs)
                x = gen->next();
            const auto s = stats::measureStability(xs, window);
            mu_err += s.muError;
            sigma_err += s.sigmaError;
            stream_mu += std::fabs(s.streamMean);
            stream_sigma += std::fabs(s.streamStddev - 1.0);
        }
        const double inv = 1.0 / static_cast<double>(restarts);
        table.addRow({row.label, strfmt("%.4f", mu_err * inv),
                      strfmt("%.4f", sigma_err * inv),
                      strfmt("%.4f", stream_mu * inv),
                      strfmt("%.4f", stream_sigma * inv),
                      strfmt("%.4f", row.paperMu),
                      strfmt("%.4f", row.paperSigma)});
    }
    table.print();

    std::printf(
        "\nShape checks vs the paper:\n"
        "  - software Wallace sigma error shrinks as the pool grows\n"
        "  - BNNWallace matches/beats the 4096 software pool\n"
        "  - RLF-GRNG holds sigma tightly (binomial variance is exact\n"
        "    by construction; residual mu drift reflects the popcount\n"
        "    walk the paper acknowledges in Section 4.1.2)\n");
    return 0;
}
