/**
 * @file
 * Adaptive early-exit Monte-Carlo: accuracy vs. mean rounds at a
 * fixed budget of T=32 on the trained synth-MNIST classifier.
 *
 * The fixed-T baseline spends 32 weight-reuse rounds on every image;
 * the adaptive runs retire images as soon as the sequential
 * convergence test decides their posterior, compacting the active set
 * between chunks. Sweeping the test's confidence traces the
 * accuracy-vs-mean-T curve: lower confidence exits earlier (fewer
 * rounds, larger accuracy risk), higher confidence approaches the
 * fixed-T budget. All rows run the batched backend single-threaded so
 * the speedup isolates the rounds actually executed, not thread
 * scaling.
 *
 * The PR 7 acceptance row is confidence=0.999 (the serving default):
 * >= 2x effective img/s over fixed T=32 at accuracy within 0.5 pp.
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "accel/kernels/kernels.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "bnn/bayesian_mlp.hh"
#include "bnn/bnn_trainer.hh"
#include "data/synth_mnist.hh"
#include "serve/session.hh"

using namespace vibnn;

namespace
{

struct CurveRow
{
    const char *label;
    double confidence; // <= 0 means fixed-T (adaptive off)
    double imagesPerSecond = 0.0;
    double accuracy = 0.0;
    double meanRounds = 0.0;
    std::size_t converged = 0, decided = 0, budget = 0;
};

} // namespace

int
main()
{
    bench::banner("Adaptive MC",
                  "Early-exit Monte-Carlo: accuracy vs. mean rounds "
                  "at budget T=32 (batched backend)");

    data::SynthMnistConfig synth;
    synth.trainCount = scaledCount(600);
    synth.testCount = 120;
    synth.seed = envSeed() + 1;
    const auto ds = data::makeSynthMnist(synth);

    bnn::BnnTrainConfig train_cfg;
    train_cfg.epochs = std::max<std::size_t>(1, scaledCount(2));
    train_cfg.seed = envSeed() + 2;
    Rng init_rng(train_cfg.seed);
    bnn::BayesianMlp net({784, 200, 200, 10}, init_rng);
    bnn::trainBnn(net, ds.train.view(), train_cfg);

    accel::AcceleratorConfig config;
    config.mcSamples = 32; // the round budget every row shares
    const auto program = accel::compile(net, config);
    const auto test_view = ds.test.view();
    const std::size_t batch_images = test_view.count;

    CurveRow rows[] = {
        {"fixed T=32", 0.0},          {"confidence 0.9", 0.9},
        {"confidence 0.99", 0.99},    {"confidence 0.999", 0.999},
        {"confidence 0.9999", 0.9999},
    };

    std::string backend;
    for (auto &row : rows) {
        serve::SessionOptions::AdaptivePolicy policy;
        if (row.confidence > 0.0) {
            policy.enabled = true;
            policy.confidence = row.confidence;
            policy.minSamples = 4;
            policy.chunk = 4;
        }
        auto session = serve::InferenceSession::Builder()
                           .program(program)
                           .accelerator(config)
                           .grng("rlf")
                           .seed(envSeed() + 3)
                           .threads(1) // isolate rounds, not threads
                           .mode(serve::ExecMode::Throughput)
                           .topK(0)
                           .adaptive(policy)
                           .build();
        backend = session->backendId();
        // Replica construction happens on first use; classify one
        // image outside the timed region (steady-state measurement).
        session->run(serve::InferenceRequest::borrow(
            test_view.sample(0), 1, test_view.dim));
        bench::Stopwatch clock;
        const auto result =
            session->run(serve::InferenceRequest::borrow(test_view));
        const double seconds = clock.seconds();
        row.imagesPerSecond =
            static_cast<double>(batch_images) / seconds;
        row.accuracy = 100.0 * result.accuracy(test_view.labels);
        row.meanRounds = result.meanRounds;
        for (const auto &pred : result.predictions) {
            switch (pred.exitReason) {
            case accel::McExitReason::Converged: ++row.converged; break;
            case accel::McExitReason::Decided: ++row.decided; break;
            default: ++row.budget; break;
            }
        }
    }
    const CurveRow &fixed = rows[0];

    TextTable table;
    table.setHeader({"Policy (budget T=32)", "Mean T", "Accuracy",
                     "Images/s", "Speedup", "exit mix"});
    for (const auto &row : rows) {
        table.addRow(
            {row.label, strfmt("%.2f", row.meanRounds),
             strfmt("%.1f%%", row.accuracy),
             strfmt("%.2f", row.imagesPerSecond),
             strfmt("%.2fx",
                    row.imagesPerSecond / fixed.imagesPerSecond),
             strfmt("%zu conv / %zu decided / %zu budget",
                    row.converged, row.decided, row.budget)});
    }
    table.print();

    // The acceptance row: the serving-default confidence.
    const CurveRow &accept = rows[3];
    std::printf("\nacceptance (confidence %.3f): %.2fx effective "
                "img/s (target >= 2x), accuracy delta %+.2f pp "
                "(target within 0.5 pp), mean T %.2f of %d\n",
                accept.confidence,
                accept.imagesPerSecond / fixed.imagesPerSecond,
                accept.accuracy - fixed.accuracy, accept.meanRounds,
                config.mcSamples);
    std::printf("%zu-image batch, %s backend, %s kernels, 1 thread\n",
                batch_images, backend.c_str(),
                accel::kernels::activeKernelName());

    // Machine-readable curve (VIBNN_BENCH_JSON=<path>). The measured
    // images/s IS the effective rate: early exit shows up as fewer
    // rounds of wall-clock per completed image.
    bench::JsonReport report;
    for (const auto &row : rows) {
        bench::JsonRecord record;
        record.field("bench", "adaptive_mc")
            .field("section", "curve")
            .field("style", row.confidence > 0.0 ? "adaptive" : "fixed")
            .field("backend", backend)
            .field("kernel", accel::kernels::activeKernelName())
            .field("budget", config.mcSamples)
            .field("batch", batch_images);
        if (row.confidence > 0.0)
            record.field("confidence", row.confidence);
        record.field("mean_rounds", row.meanRounds)
            .field("accuracy_pct", row.accuracy)
            .field("images_per_s", row.imagesPerSecond)
            .field("effective_img_per_s", row.imagesPerSecond);
        report.add(record);
    }
    report.write();
    return 0;
}
