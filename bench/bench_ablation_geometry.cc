/**
 * @file
 * Ablation A3 — the joint PE-geometry / memory-access optimization of
 * Section 5.4, run as an actual design-space sweep: every (T, S=N)
 * candidate is checked against the constraint system (equations (15)),
 * priced on the Cyclone V model, and timed with the analytic cycle
 * model (cycle-exact against the simulator; see test_design_space).
 * Prints the full sweep including *why* infeasible points fail, and
 * the throughput/ALM Pareto frontier.
 */

#include "bench_util.hh"

#include "accel/design_space.hh"

using namespace vibnn;
using namespace vibnn::accel;

int
main()
{
    bench::banner("Ablation A3",
                  "Design-space sweep over PE geometry (Section 5.4 "
                  "joint optimization), network 784-200-200-10");

    const std::vector<std::size_t> layers{784, 200, 200, 10};
    ExplorerOptions options;
    options.peSetChoices = {2, 4, 8, 16, 24, 32, 64};
    options.peSizeChoices = {4, 8, 16};
    options.bitChoices = {8};
    options.mcSamples = 8;

    const auto points = exploreDesignSpace(layers, options);

    TextTable table;
    table.setHeader({"T", "S=N", "M", "cyc/pass", "Images/s", "Images/J",
                     "util", "ALMs", "DSPs", "status"});
    for (const auto &p : points) {
        if (p.feasible) {
            table.addRow(
                {strfmt("%d", p.config.peSets),
                 strfmt("%d", p.config.pesPerSet),
                 strfmt("%d", p.config.totalPes()),
                 strfmt("%llu",
                        static_cast<unsigned long long>(p.cyclesPerPass)),
                 strfmt("%.0f", p.imagesPerSecond),
                 strfmt("%.0f", p.imagesPerJoule),
                 strfmt("%.2f", p.utilization),
                 strfmt("%.0f", p.estimate.total().alms),
                 strfmt("%d", p.estimate.total().dsps), "ok"});
        } else {
            table.addRow({strfmt("%d", p.config.peSets),
                          strfmt("%d", p.config.pesPerSet),
                          strfmt("%d", p.config.totalPes()), "-", "-",
                          "-", "-", "-", "-", p.reason});
        }
    }
    table.print();

    const auto frontier = paretoFrontier(points);
    std::printf("\nThroughput/ALM Pareto frontier:\n");
    TextTable front;
    front.setHeader({"T", "S=N", "Images/s", "ALMs", "Images/J"});
    for (std::size_t idx : frontier) {
        const auto &p = points[idx];
        front.addRow({strfmt("%d", p.config.peSets),
                      strfmt("%d", p.config.pesPerSet),
                      strfmt("%.0f", p.imagesPerSecond),
                      strfmt("%.0f", p.estimate.total().alms),
                      strfmt("%.0f", p.imagesPerJoule)});
    }
    front.print();

    std::printf(
        "\nReading: the paper's 16x8x8 point sits on (or near) the\n"
        "frontier — larger word sizes violate equation (15b) before\n"
        "they buy throughput, and more PE sets than min-layer chunks\n"
        "violate the write-drain condition (14a). That is the Section\n"
        "5.4 joint-optimization argument, reproduced mechanically.\n");
    return 0;
}
