/**
 * @file
 * Host-side GRNG throughput microbenchmark: cost per sample of every
 * generator in the registry (scalar next() and block fill()), plus
 * per-tier rows for the kernel-layer eps paths the weight generator
 * rides on — the transposed RLF cycle kernel, the Wallace pool pass,
 * and the fused fillFixed() generation+quantization fast path — in the
 * same style as bench_kernels (every tier compiled in and supported by
 * this CPU gets a row, dispatch-selected tier marked, all tiers
 * ctest-pinned bit-exact). Software context for the hardware designs;
 * the FPGA-side throughput story lives in bench_table2/bench_table5.
 * VIBNN_BENCH_JSON=<path> records all sections machine-readably
 * (bench "grng_micro").
 */

#include <cstring>
#include <vector>

#include "bench_util.hh"
#include "accel/kernels/kernels.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "fixed/fixed_point.hh"
#include "grng/lfsr.hh"
#include "grng/registry.hh"
#include "grng/rlf_grng.hh"

using namespace vibnn;
using namespace vibnn::grng;
namespace k = vibnn::accel::kernels;

namespace
{

/** Run body() until ~0.15 s have elapsed; returns iterations/second. */
template <typename Body>
double
rate(const Body &body)
{
    body(); // warm
    std::size_t iters = 0;
    bench::Stopwatch clock;
    double elapsed = 0.0;
    do {
        body();
        ++iters;
        elapsed = clock.seconds();
    } while (elapsed < 0.15);
    return static_cast<double>(iters) / elapsed;
}

/** A seeded 8-lane transposed RLF state (the paper's 255 x 8 shape)
 *  for driving one kernel tier directly. */
struct RlfBenchState
{
    std::vector<std::uint8_t> planes;
    std::vector<std::int32_t> sums;

    explicit RlfBenchState(std::uint64_t seed) : planes(255), sums(8)
    {
        Rng seeder(seed);
        for (int lane = 0; lane < 8; ++lane) {
            const auto bits = expandSeedBits(255, seeder.next());
            for (int p = 0; p < 255; ++p)
                if (bits[p])
                    planes[p] |= static_cast<std::uint8_t>(1u << lane);
            for (std::uint8_t b : bits)
                sums[lane] += b;
        }
    }

    k::RlfState
    state()
    {
        k::RlfState st;
        st.planes = planes.data();
        st.sums = sums.data();
        st.length = 255;
        st.groups = 1;
        st.head = 0;
        return st;
    }
};

} // namespace

int
main()
{
    bench::banner("GRNG microbenchmark",
                  "Per-generator sample cost and per-tier throughput "
                  "of the kernel-layer eps paths");
    std::printf("dispatch-selected tier: %s "
                "(VIBNN_FORCE_SCALAR / VIBNN_KERNELS override)\n\n",
                k::activeKernelName());

    bench::JsonReport report;
    const std::size_t block = 4096;
    std::vector<double> reals(block);
    const fixed::FixedPointFormat eps{8, 5};
    std::vector<std::int32_t> raws(block);

    // ------------------------------------------------- generators
    // Scalar next() vs the block fill() hot path, plus the fused
    // fillFixed() rate where the generator has one (0 = no fused path).
    TextTable gens;
    gens.setHeader(
        {"generator", "next M/s", "fill M/s", "fillFixed M/s"});
    for (const auto &id : generatorIds()) {
        auto gen = makeGenerator(id, 42);
        double sink = 0.0;
        const double next_rate = rate([&] {
            for (std::size_t i = 0; i < 1024; ++i)
                sink += gen->next();
        }) * 1024.0 / 1e6;
        const double fill_rate = rate([&] {
            gen->fill(reals.data(), block);
        }) * static_cast<double>(block) / 1e6;
        double fixed_rate = 0.0;
        if (gen->fillFixed(raws.data(), block, eps))
            fixed_rate = rate([&] {
                gen->fillFixed(raws.data(), block, eps);
            }) * static_cast<double>(block) / 1e6;
        if (sink == 0.5)
            std::printf("unlikely\n"); // keep the next() loop live
        gens.addRow({gen->name(), strfmt("%.1f", next_rate),
                     strfmt("%.1f", fill_rate),
                     fixed_rate > 0.0 ? strfmt("%.1f", fixed_rate)
                                      : std::string("-")});
        report.add(bench::JsonRecord()
                       .field("bench", "grng_micro")
                       .field("section", "generators")
                       .field("generator", id)
                       .field("next_ms", next_rate)
                       .field("fill_ms", fill_rate)
                       .field("fill_fixed_ms", fixed_rate));
    }
    gens.print();
    std::printf("\n(fill/fillFixed amortize one virtual call over %zu "
                "samples; - = no fused path)\n\n",
                block);

    // ------------------------------------------------- kernel tiers
    // The two eps kernels, one row per tier: the transposed RLF cycle
    // kernel (255 x 8, counts per second = eps per second) and the
    // Wallace pool pass (1024-entry pool, one output per slot).
    const std::size_t cycles = 512;
    std::vector<std::int32_t> counts(cycles * 8);
    std::vector<double> pool(1024);
    {
        Rng rng(3);
        for (auto &x : pool)
            x = rng.gaussian();
    }
    std::vector<double> pass_out(pool.size());

    TextTable tiers;
    tiers.setHeader({"tier", "rlf eps M/s", "wallace eps M/s"});
    for (const auto *tier : k::availableKernels()) {
        RlfBenchState rlf(7);
        const double rlf_rate = rate([&] {
            k::RlfState st = rlf.state();
            tier->rlfCycleCounts(st, cycles, counts.data());
        }) * static_cast<double>(cycles * 8) / 1e6;
        // Fixed offset/stride (coprime with 1024) so every tier walks
        // the identical permutation.
        const double wallace_rate = rate([&] {
            tier->wallacePass(pool.data(), pool.size(), 11, 333,
                              pass_out.data());
        }) * static_cast<double>(pool.size()) / 1e6;

        const bool active =
            std::string(tier->name) == k::activeKernelName();
        tiers.addRow({std::string(tier->name) + (active ? " *" : ""),
                      strfmt("%.1f", rlf_rate),
                      strfmt("%.1f", wallace_rate)});
        report.add(bench::JsonRecord()
                       .field("bench", "grng_micro")
                       .field("section", "tiers")
                       .field("tier", tier->name)
                       .field("active", active ? 1 : 0)
                       .field("rlf_eps_ms", rlf_rate)
                       .field("wallace_eps_ms", wallace_rate));
    }
    tiers.print();
    std::printf("\n(* = dispatch-selected; all tiers bit-exact, the "
                "rows differ only in speed)\n");
    report.write();
    return 0;
}
