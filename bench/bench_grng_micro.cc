/**
 * @file
 * Host-side GRNG throughput microbenchmark (google-benchmark): cost
 * per sample of every generator in the registry, plus the RLF micro
 * model. Software context for the hardware designs; the FPGA-side
 * throughput story lives in bench_table2/bench_table5.
 */

#include <benchmark/benchmark.h>

#include "grng/registry.hh"
#include "grng/lfsr.hh"
#include "grng/rlf.hh"

using namespace vibnn::grng;

namespace
{

void
BM_Generator(benchmark::State &state, const std::string &id)
{
    auto gen = makeGenerator(id, 42);
    double sink = 0.0;
    for (auto _ : state)
        sink += gen->next();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}

void
BM_GeneratorFill(benchmark::State &state, const std::string &id)
{
    // Block API: one virtual call per 4096 samples, devirtualized and
    // cache-friendly inner loops. Compare items/sec against the
    // BM_Generator scalar rows — the ratio is the hot-path win the
    // weight generator's eps ring inherits.
    auto gen = makeGenerator(id, 42);
    std::vector<double> block(4096);
    for (auto _ : state) {
        gen->fill(block.data(), block.size());
        benchmark::DoNotOptimize(block.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(block.size()));
}

void
BM_RlfMicroModel(benchmark::State &state)
{
    RlfLogicMicro micro(255, expandSeedBits(255, 7));
    int sink = 0;
    for (auto _ : state)
        sink += micro.step();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}

} // anonymous namespace

BENCHMARK_CAPTURE(BM_Generator, rlf, std::string("rlf"));
BENCHMARK_CAPTURE(BM_Generator, bnnwallace, std::string("bnnwallace"));
BENCHMARK_CAPTURE(BM_Generator, wallace_nss, std::string("wallace-nss"));
BENCHMARK_CAPTURE(BM_Generator, wallace_sw_1024,
                  std::string("wallace-1024"));
BENCHMARK_CAPTURE(BM_Generator, wallace_sw_4096,
                  std::string("wallace-4096"));
BENCHMARK_CAPTURE(BM_Generator, clt_lfsr, std::string("clt-lfsr"));
BENCHMARK_CAPTURE(BM_Generator, box_muller, std::string("box-muller"));
BENCHMARK_CAPTURE(BM_Generator, polar, std::string("polar"));
BENCHMARK_CAPTURE(BM_Generator, ziggurat, std::string("ziggurat"));
BENCHMARK_CAPTURE(BM_Generator, cdf_inversion,
                  std::string("cdf-inversion"));
BENCHMARK_CAPTURE(BM_GeneratorFill, rlf, std::string("rlf"));
BENCHMARK_CAPTURE(BM_GeneratorFill, bnnwallace, std::string("bnnwallace"));
BENCHMARK_CAPTURE(BM_GeneratorFill, wallace_sw_1024,
                  std::string("wallace-1024"));
BENCHMARK_CAPTURE(BM_GeneratorFill, wallace_sw_4096,
                  std::string("wallace-4096"));
BENCHMARK_CAPTURE(BM_GeneratorFill, clt_lfsr, std::string("clt-lfsr"));
BENCHMARK_CAPTURE(BM_GeneratorFill, box_muller,
                  std::string("box-muller"));
BENCHMARK(BM_RlfMicroModel);
