/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures:
 * it prints the measured values next to the paper's reported ones, and
 * honours three environment knobs:
 *   VIBNN_SCALE      — multiplies workload sizes (default 1 = laptop
 *                      scale; see EXPERIMENTS.md for what each scale
 *                      covers),
 *   VIBNN_SEED       — master seed,
 *   VIBNN_BENCH_JSON — when set to a path, benches that support it
 *                      also emit their measurements as a JSON array of
 *                      flat records there (machine-readable, so the
 *                      perf trajectory can be tracked run-over-run).
 */

#ifndef VIBNN_BENCH_BENCH_UTIL_HH
#define VIBNN_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/table.hh"

namespace vibnn::bench
{

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("==============================================================\n");
    std::printf("VIBNN reproduction — %s\n", artifact.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("scale=%.2f seed=%llu\n", envScale(),
                static_cast<unsigned long long>(envSeed()));
    std::printf("==============================================================\n");
}

/** One flat JSON record ({"key": value, ...}) under construction. */
class JsonRecord
{
  public:
    JsonRecord &
    field(const std::string &key, const std::string &value)
    {
        append(key, "\"" + escape(value) + "\"");
        return *this;
    }

    JsonRecord &
    field(const std::string &key, const char *value)
    {
        return field(key, std::string(value));
    }

    JsonRecord &
    field(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        append(key, buf);
        return *this;
    }

    JsonRecord &
    field(const std::string &key, long long value)
    {
        append(key, std::to_string(value));
        return *this;
    }

    JsonRecord &
    field(const std::string &key, std::size_t value)
    {
        append(key, std::to_string(value));
        return *this;
    }

    JsonRecord &
    field(const std::string &key, int value)
    {
        append(key, std::to_string(value));
        return *this;
    }

    std::string json() const { return "{" + body_ + "}"; }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            const auto u = static_cast<unsigned char>(c);
            if (c == '"' || c == '\\') {
                out.push_back('\\');
                out.push_back(c);
            } else if (u < 0x20) {
                // Control characters must be \u-escaped or parsers
                // reject the file.
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    void
    append(const std::string &key, const std::string &rendered)
    {
        if (!body_.empty())
            body_ += ", ";
        body_ += "\"" + escape(key) + "\": " + rendered;
    }

    std::string body_;
};

/**
 * Machine-readable bench output: collects flat records and, when the
 * VIBNN_BENCH_JSON environment variable names a path, writes them
 * there as a JSON array in write(). With the variable unset the
 * report is a cheap no-op, so benches call it unconditionally.
 */
class JsonReport
{
  public:
    JsonReport()
    {
        const char *path = std::getenv("VIBNN_BENCH_JSON");
        if (path && *path)
            path_ = path;
    }

    bool enabled() const { return !path_.empty(); }

    void
    add(const JsonRecord &record)
    {
        if (enabled())
            records_.push_back(record.json());
    }

    /** Write the array; returns false (with a notice) on IO failure. */
    bool
    write() const
    {
        if (!enabled())
            return true;
        std::ofstream out(path_, std::ios::trunc);
        if (!out) {
            std::printf("JSON report: cannot open %s for writing\n",
                        path_.c_str());
            return false;
        }
        out << "[\n";
        for (std::size_t i = 0; i < records_.size(); ++i)
            out << "  " << records_[i]
                << (i + 1 < records_.size() ? ",\n" : "\n");
        out << "]\n";
        std::printf("JSON report: %zu records -> %s\n", records_.size(),
                    path_.c_str());
        return static_cast<bool>(out);
    }

  private:
    std::string path_;
    std::vector<std::string> records_;
};

/** Wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace vibnn::bench

#endif // VIBNN_BENCH_BENCH_UTIL_HH
