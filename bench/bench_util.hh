/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures:
 * it prints the measured values next to the paper's reported ones, and
 * honours two environment knobs:
 *   VIBNN_SCALE — multiplies workload sizes (default 1 = laptop scale;
 *                 see EXPERIMENTS.md for what each scale covers),
 *   VIBNN_SEED  — master seed.
 */

#ifndef VIBNN_BENCH_BENCH_UTIL_HH
#define VIBNN_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <string>

#include "common/env.hh"
#include "common/table.hh"

namespace vibnn::bench
{

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("==============================================================\n");
    std::printf("VIBNN reproduction — %s\n", artifact.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("scale=%.2f seed=%llu\n", envScale(),
                static_cast<unsigned long long>(envSeed()));
    std::printf("==============================================================\n");
}

/** Wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace vibnn::bench

#endif // VIBNN_BENCH_BENCH_UTIL_HH
