/**
 * @file
 * Reproduces Figure 16: test accuracy of FNN vs BNN as the training
 * set shrinks from the full set down to 1/256 of it (stratified random
 * subsets, the paper's protocol). The BNN's advantage grows as data
 * shrinks — the paper's small-data claim.
 */

#include <algorithm>

#include "bench_util.hh"
#include "bnn/bnn_trainer.hh"
#include "data/synth_mnist.hh"
#include "nn/trainer.hh"

using namespace vibnn;

int
main()
{
    bench::banner("Figure 16",
                  "FNN vs BNN test accuracy vs fraction of training "
                  "data (synthetic MNIST, 784-200-200-10)");

    data::SynthMnistConfig mnist_config;
    mnist_config.trainCount = scaledCount(768);
    mnist_config.testCount = scaledCount(300);
    mnist_config.seed = envSeed();
    const auto ds = data::makeSynthMnist(mnist_config);

    TextTable table;
    table.setHeader({"Fraction", "Train size", "FNN acc", "BNN acc",
                     "BNN - FNN"});

    const double fractions[] = {1.0 / 24, 1.0 / 8, 1.0 / 3, 1.0};
    for (double fraction : fractions) {
        Rng subset_rng(envSeed() + 21);
        const auto subset =
            data::stratifiedFraction(ds.train, fraction, subset_rng);

        // Constant step budget: more epochs for smaller subsets.
        const std::size_t epochs = std::clamp<std::size_t>(
            scaledCount(3200) / std::max<std::size_t>(1, subset.count()),
            5, 100);

        Rng fnn_rng(envSeed() + 22);
        nn::Mlp fnn({784, 200, 200, 10}, fnn_rng, 0.2f);
        nn::TrainConfig fnn_config;
        fnn_config.epochs = epochs;
        fnn_config.batchSize = 16;
        fnn_config.learningRate = 1e-3f;
        fnn_config.seed = envSeed() + 23;
        trainMlp(fnn, subset.view(), fnn_config);
        const double fnn_acc = evaluateAccuracy(fnn, ds.test.view());

        Rng bnn_rng(envSeed() + 24);
        bnn::BayesianMlp bnn({784, 200, 200, 10}, bnn_rng);
        bnn::BnnTrainConfig bnn_config;
        bnn_config.epochs = epochs;
        bnn_config.batchSize = 16;
        bnn_config.learningRate = 1e-3f;
        bnn_config.priorSigma = 0.3f;
        // Tempered ELBO on tiny subsets (DESIGN.md finding 6): with
        // the exact KL weight the posterior of a 40-sample task
        // correctly stays near the prior and cannot beat the FNN.
        bnn_config.klWeight = 0.25f;
        bnn_config.seed = envSeed() + 25;
        trainBnn(bnn, subset.view(), bnn_config);
        const double bnn_acc = evaluateBnnAccuracy(bnn, ds.test.view(),
                                                   4, envSeed() + 26);

        table.addRow({strfmt("1/%d", static_cast<int>(1.0 / fraction)),
                      strfmt("%zu", subset.count()),
                      strfmt("%.4f", fnn_acc), strfmt("%.4f", bnn_acc),
                      strfmt("%+.4f", bnn_acc - fnn_acc)});
        std::printf("  done: fraction %.4f (%zu samples, %zu epochs)\n",
                    fraction, subset.count(), epochs);
    }
    table.print();

    std::printf("\nPaper's claim: the BNN's margin over the FNN grows "
                "as the training\nset shrinks (Figure 16).\n");
    return 0;
}
