/**
 * @file
 * Training-path benchmark: samples/s and converged accuracy of the
 * per-sample reference BNN trainer against the batched SIMD trainer
 * (bnn/bnn_trainer.hh) across every kernel tier compiled into this
 * binary, on the paper's 784-200-200-10 MLP over synthetic MNIST —
 * plus the quantization-aware fine-tuning section: accelerator
 * accuracy of the compiled program after post-hoc quantization vs
 * after QAT through the same eq-(15) grids. VIBNN_BENCH_JSON=<path>
 * records the rows machine-readably (sections "training" and "qat").
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "accel/config.hh"
#include "accel/kernels/kernels.hh"
#include "accel/mc_engine.hh"
#include "accel/program.hh"
#include "bnn/bayesian_mlp.hh"
#include "bnn/bnn_trainer.hh"
#include "common/env.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "data/synth_mnist.hh"

using namespace vibnn;
namespace k = vibnn::accel::kernels;

namespace
{

bnn::BayesianMlp
freshNet(std::uint64_t seed)
{
    Rng rng(seed);
    return bnn::BayesianMlp({data::kMnistPixels, 200, 200, 10}, rng,
                            /*rho_init=*/-4.0f);
}

double
accelAccuracy(const bnn::BayesianMlp &net,
              const accel::AcceleratorConfig &config,
              const nn::DataView &test)
{
    const auto program = accel::compile(net, config);
    accel::McEngineConfig mc;
    mc.seedBase = 911;
    mc.backendId = "batched";
    mc.schedule = accel::McSchedule::PerRound;
    accel::McEngine engine(program, config, mc);
    const auto preds =
        engine.classifyBatch(test.features, test.count, test.dim);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.count; ++i)
        correct +=
            preds[i] == static_cast<std::size_t>(test.labels[i]);
    return static_cast<double>(correct) /
        static_cast<double>(test.count);
}

} // namespace

int
main()
{
    bench::banner("training path",
                  "Batched SIMD minibatch ELBO trainer vs the "
                  "per-sample reference, plus QAT vs post-hoc "
                  "quantization on the compiled program");
    std::printf("dispatch-selected tier: %s\n\n", k::activeKernelName());

    data::SynthMnistConfig synth;
    synth.trainCount = scaledCount(600);
    synth.testCount = scaledCount(400);
    synth.seed = envSeed() + 5;
    const auto ds = data::makeSynthMnist(synth);
    const auto train = ds.train.view();
    const auto test = ds.test.view();
    const std::size_t epochs = std::max<std::size_t>(1, scaledCount(5));
    const std::size_t batch = 32;
    const std::uint64_t net_seed = envSeed() + 17;
    const std::uint64_t train_seed = envSeed() + 23;
    const std::uint64_t eval_seed = envSeed() + 31;

    std::printf("MLP 784-200-200-10, %zu train / %zu test images, "
                "%zu epochs, batch %zu\n\n",
                train.count, test.count, epochs, batch);

    bench::JsonReport report;
    TextTable table;
    table.setHeader({"style", "kernel", "estimator", "samples/s",
                     "train s", "accuracy"});

    const std::size_t trained = train.count * epochs;
    auto emit = [&](const char *style, const char *kernel,
                    const char *estimator, double seconds, double acc) {
        const double rate = static_cast<double>(trained) / seconds;
        table.addRow({style, kernel, estimator,
                      strfmt("%.0f", rate), strfmt("%.2f", seconds),
                      strfmt("%.3f", acc)});
        report.add(bench::JsonRecord()
                       .field("bench", "bench_training")
                       .field("section", "training")
                       .field("style", style)
                       .field("kernel", kernel)
                       .field("estimator", estimator)
                       .field("batch", style == std::string("per-sample")
                                  ? std::size_t(1)
                                  : batch)
                       .field("epochs", epochs)
                       .field("samples_per_s", rate)
                       .field("train_s", seconds)
                       .field("accuracy", acc));
        return rate;
    };

    // Reference: the historical per-sample trainer (host scalar math).
    double per_sample_rate = 0.0, per_sample_acc = 0.0;
    {
        auto net = freshNet(net_seed);
        bnn::BnnTrainConfig cfg;
        cfg.epochs = epochs;
        cfg.batchSize = batch;
        cfg.seed = train_seed;
        bench::Stopwatch clock;
        trainBnn(net, train, cfg);
        const double seconds = clock.seconds();
        per_sample_acc =
            evaluateBnnAccuracy(net, test, /*mc_samples=*/8, eval_seed);
        per_sample_rate = emit("per-sample", "host", "lrt", seconds,
                               per_sample_acc);
    }

    // Batched engine, every tier on this CPU (all tiers ctest-pinned
    // bit-identical: the rows differ only in speed), LRT estimator.
    double batched_rate = 0.0, batched_acc = 0.0;
    for (const k::KernelOps *tier : k::availableKernels()) {
        auto net = freshNet(net_seed);
        bnn::BnnBatchedTrainConfig cfg;
        cfg.epochs = epochs;
        cfg.batchSize = batch;
        cfg.seed = train_seed;
        cfg.kernels = tier;
        bench::Stopwatch clock;
        trainBnnBatched(net, train, cfg);
        const double seconds = clock.seconds();
        const double acc =
            evaluateBnnAccuracy(net, test, 8, eval_seed);
        const double rate =
            emit("batched", tier->name, "lrt", seconds, acc);
        if (std::string(tier->name) == k::activeKernelName()) {
            batched_rate = rate;
            batched_acc = acc;
        }
    }

    // The direct per-weight estimator (the accelerator's sampling
    // semantics) on the active tier.
    {
        auto net = freshNet(net_seed);
        bnn::BnnBatchedTrainConfig cfg;
        cfg.epochs = epochs;
        cfg.batchSize = batch;
        cfg.seed = train_seed;
        cfg.estimator = bnn::BnnEstimator::DirectWeightSample;
        bench::Stopwatch clock;
        trainBnnBatched(net, train, cfg);
        const double seconds = clock.seconds();
        emit("batched", k::activeKernelName(), "direct", seconds,
             evaluateBnnAccuracy(net, test, 8, eval_seed));
    }

    // GEMM sharding over the worker pool on top of the active tier.
    {
        auto net = freshNet(net_seed);
        bnn::BnnBatchedTrainConfig cfg;
        cfg.epochs = epochs;
        cfg.batchSize = batch;
        cfg.seed = train_seed;
        cfg.pool = &ThreadPool::global();
        bench::Stopwatch clock;
        trainBnnBatched(net, train, cfg);
        const double seconds = clock.seconds();
        emit("batched-pool", k::activeKernelName(), "lrt", seconds,
             evaluateBnnAccuracy(net, test, 8, eval_seed));
    }

    table.print();
    if (per_sample_rate > 0.0 && batched_rate > 0.0) {
        std::printf("\nbatched (%s) vs per-sample: %.1fx samples/s, "
                    "accuracy %+.2f pp\n",
                    k::activeKernelName(),
                    batched_rate / per_sample_rate,
                    (batched_acc - per_sample_acc) * 100.0);
    }

    // ------------------------------------------------ QAT section
    // Fine-tune a float-trained net through the eq-(15) grids of an
    // aggressive 5-bit deployment — where post-hoc quantization loses
    // real accuracy — and compare compiled-program accuracy against
    // quantizing the same float net post hoc.
    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 4;
    config.bits = 5;
    config.mcSamples = 16;

    auto net = freshNet(net_seed);
    {
        bnn::BnnBatchedTrainConfig cfg;
        cfg.epochs = epochs;
        cfg.batchSize = batch;
        cfg.seed = train_seed;
        trainBnnBatched(net, train, cfg);
    }
    auto tuned = net;
    {
        bnn::BnnBatchedTrainConfig cfg;
        cfg.epochs = std::max<std::size_t>(1, scaledCount(4));
        cfg.batchSize = batch;
        cfg.learningRate = 5e-4f;
        cfg.seed = train_seed + 1;
        cfg.qatActivation = config.activationFormat();
        cfg.qatWeight = config.weightFormat();
        cfg.qatEps = config.epsFormat();
        qatFineTune(tuned, train, cfg);
    }
    const double float_acc = evaluateBnnAccuracy(net, test, 8, eval_seed);
    const double posthoc = accelAccuracy(net, config, test);
    const double qat = accelAccuracy(tuned, config, test);

    std::printf("\nQAT at %d-bit deployment (float net %.3f):\n",
                config.bits, float_acc);
    TextTable qt;
    qt.setHeader({"style", "bits", "accelerator accuracy"});
    qt.addRow({"posthoc", strfmt("%d", config.bits),
               strfmt("%.3f", posthoc)});
    qt.addRow({"qat", strfmt("%d", config.bits), strfmt("%.3f", qat)});
    qt.print();
    std::printf("QAT delta: %+.2f pp\n", (qat - posthoc) * 100.0);
    report.add(bench::JsonRecord()
                   .field("bench", "bench_training")
                   .field("section", "qat")
                   .field("style", "posthoc")
                   .field("bits", config.bits)
                   .field("accuracy", posthoc)
                   .field("accuracy_float", float_acc));
    report.add(bench::JsonRecord()
                   .field("bench", "bench_training")
                   .field("section", "qat")
                   .field("style", "qat")
                   .field("bits", config.bits)
                   .field("accuracy", qat)
                   .field("accuracy_float", float_acc));

    report.write();
    return 0;
}
