/**
 * @file
 * Extension bench E3 — a Bayesian *convolution* layer executed on the
 * unmodified VIBNN cycle simulator via im2col lowering (each output
 * position = one dense round of the PE array; see
 * accel/conv_lowering.hh). Substantiates the paper's Section 1 claim
 * that the architecture is orthogonal to convolutional optimization:
 * no datapath change is needed, only a different WPMem schedule.
 *
 * Reports the exact cycle cost of LeNet-style conv layers on the
 * paper-scale geometry, the bit-exactness of the lowered layer against
 * the host fixed-point reference at sigma = 0, and the MC spread the
 * weight generator produces at sigma > 0.
 */

#include "bench_util.hh"

#include "accel/conv_lowering.hh"
#include "accel/design_space.hh"
#include "accel/functional.hh"
#include "accel/program.hh"
#include "accel/simulator.hh"
#include "bnn/bayesian_cnn.hh"
#include "bnn/variational_conv.hh"
#include "grng/registry.hh"
#include "hwmodel/network_hw.hh"
#include "nn/cnn.hh"

using namespace vibnn;
using namespace vibnn::accel;

int
main()
{
    const std::uint64_t seed = envSeed();
    bench::banner("Extension E3",
                  "Bayesian conv layers lowered onto the cycle "
                  "simulator (im2col schedule, unmodified datapath)");

    struct Case
    {
        const char *name;
        nn::ConvSpec spec;
        AcceleratorConfig config;
    };
    // Geometry constraint: T <= ceil(patchSize / N) (write drain).
    AcceleratorConfig c1;
    c1.peSets = 4;
    c1.pesPerSet = 8; // patch 25 -> 4 chunks of 8
    c1.mcSamples = 1;
    AcceleratorConfig c2;
    c2.peSets = 16;
    c2.pesPerSet = 8; // patch 200 -> 25 chunks, paper geometry fits
    c2.mcSamples = 1;

    std::vector<Case> cases;
    {
        nn::ConvSpec s; // LeNet conv1 on 28x28
        s.inChannels = 1;
        s.inHeight = 28;
        s.inWidth = 28;
        s.outChannels = 8;
        s.kernel = 5;
        s.pad = 2;
        cases.push_back({"conv1 1->8 5x5 p2 @28x28", s, c1});
    }
    {
        nn::ConvSpec s; // LeNet conv2 on the pooled 14x14 maps
        s.inChannels = 8;
        s.inHeight = 14;
        s.inWidth = 14;
        s.outChannels = 16;
        s.kernel = 5;
        s.pad = 2;
        cases.push_back({"conv2 8->16 5x5 p2 @14x14", s, c2});
    }

    TextTable table;
    table.setHeader({"layer", "T", "S=N", "positions", "cyc/conv pass",
                     "cycles measured", "exact?", "conv/s @fmax"});

    for (const auto &kase : cases) {
        Rng rng(seed + 3);
        bnn::VariationalConv2d layer(kase.spec, rng, -2.0f);
        auto gen = grng::makeGenerator("rlf", seed + 5);
        ConvLayerRunner runner(layer, kase.config, gen.get());

        std::vector<float> x(kase.spec.inputSize());
        Rng data(seed + 7);
        for (auto &v : x)
            v = static_cast<float>(data.uniform(0, 1));
        runner.runPass(x.data());

        const std::uint64_t predicted = runner.cyclesPerConvPass();
        const std::uint64_t measured = runner.stats().totalCycles;

        hw::NetworkHwConfig hw_cfg;
        hw_cfg.peSets = kase.config.peSets;
        hw_cfg.pesPerSet = kase.config.pesPerSet;
        hw_cfg.peInputs = kase.config.pesPerSet;
        const auto estimate = hw::networkEstimate(hw_cfg);
        const double conv_per_s =
            estimate.fmaxMhz * 1e6 / static_cast<double>(predicted);

        table.addRow(
            {kase.name, strfmt("%d", kase.config.peSets),
             strfmt("%d", kase.config.pesPerSet),
             strfmt("%zu", kase.spec.positions()),
             strfmt("%llu", static_cast<unsigned long long>(predicted)),
             strfmt("%llu", static_cast<unsigned long long>(measured)),
             predicted == measured ? "yes" : "NO",
             strfmt("%.0f", conv_per_s)});
    }
    table.print();

    // ---- whole-CNN program path: conv -> pool -> conv -> pool ->
    // dense, compiled once and executed end-to-end on the simulator.
    std::printf("\nWhole-CNN program (QuantizedProgram IR, LeNet "
                "topology, T=4 S=N=8):\n\n");
    {
        Rng rng(seed + 11);
        bnn::BayesianConvNet bcnn(nn::ConvNetConfig::lenetLike(10), rng,
                                  -2.0f);
        AcceleratorConfig config;
        config.peSets = 4; // conv1 patch 25 -> 4 chunks bounds T
        config.pesPerSet = 8;
        config.mcSamples = 1;
        const auto program = compile(bcnn, config);

        auto gen = grng::makeGenerator("rlf", seed + 13);
        Simulator sim(program, config, gen.get());
        std::vector<float> x(program.inputDim());
        Rng data(seed + 17);
        for (auto &v : x)
            v = static_cast<float>(data.uniform(0, 1));
        sim.runPass(x.data());

        TextTable ops_table;
        ops_table.setHeader(
            {"op", "in", "out", "cycles", "share"});
        const auto &stats = sim.stats();
        for (std::size_t o = 0; o < program.ops.size(); ++o) {
            const auto &op = program.ops[o];
            ops_table.addRow(
                {op.label, strfmt("%zu", op.inSize),
                 strfmt("%zu", op.outSize),
                 strfmt("%llu", static_cast<unsigned long long>(
                                    stats.opCycles[o])),
                 strfmt("%.1f%%",
                        100.0 * static_cast<double>(stats.opCycles[o]) /
                            static_cast<double>(stats.totalCycles))});
        }
        ops_table.print();

        const std::uint64_t predicted =
            predictProgramCycles(program, config);
        hw::NetworkHwConfig hw_cfg;
        hw_cfg.peSets = config.peSets;
        hw_cfg.pesPerSet = config.pesPerSet;
        hw_cfg.peInputs = config.peInputs();
        const auto estimate = hw::networkEstimate(hw_cfg);
        std::printf("\n  whole-CNN pass: %llu cycles measured, %llu "
                    "analytic (%s), %.1f passes/s @ %.0f MHz\n",
                    static_cast<unsigned long long>(stats.totalCycles),
                    static_cast<unsigned long long>(predicted),
                    stats.totalCycles == predicted ? "exact"
                                                   : "MISMATCH",
                    estimate.fmaxMhz * 1e6 /
                        static_cast<double>(predicted),
                    estimate.fmaxMhz);

        auto gen_b = grng::makeGenerator("rlf", seed + 13);
        FunctionalRunner fun(program, config, gen_b.get());
        auto gen_c = grng::makeGenerator("rlf", seed + 13);
        Simulator sim_b(program, config, gen_c.get());
        const bool exact =
            sim_b.runPass(x.data()) == fun.runPass(x.data());
        std::printf("  simulator vs functional path on the program: "
                    "%s\n",
                    exact ? "bit-exact" : "MISMATCH");
    }

    std::printf(
        "\nReading: a conv layer is positions() time-multiplexed dense\n"
        "rounds; the analytic cost model stays cycle-exact (column\n"
        "'exact?'), and test_conv_lowering proves the outputs bit-exact\n"
        "against a host fixed-point reference at sigma=0. Each position\n"
        "pass draws fresh filter epsilons from the GRNG — the hardware\n"
        "realization of per-receptive-field sampling. No PE, memory or\n"
        "controller change is required, only the WPMem schedule — the\n"
        "paper's orthogonality claim, executed.\n");
    return 0;
}
