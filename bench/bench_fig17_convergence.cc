/**
 * @file
 * Reproduces Figure 17: epoch-by-epoch test accuracy of FNN vs BNN
 * when training on a small fraction of the data — the convergence-rate
 * view of the small-data comparison.
 */

#include "bench_util.hh"
#include "bnn/bnn_trainer.hh"
#include "data/synth_mnist.hh"
#include "nn/trainer.hh"

using namespace vibnn;

int
main()
{
    bench::banner("Figure 17",
                  "Training convergence with a 1/64 training fraction "
                  "(synthetic MNIST)");

    data::SynthMnistConfig mnist_config;
    mnist_config.trainCount = scaledCount(2048);
    mnist_config.testCount = scaledCount(200);
    mnist_config.seed = envSeed();
    const auto ds = data::makeSynthMnist(mnist_config);

    Rng subset_rng(envSeed() + 31);
    const auto subset =
        data::stratifiedFraction(ds.train, 1.0 / 64, subset_rng);
    std::printf("training on %zu samples, evaluating on %zu\n",
                subset.count(), ds.test.count());

    const std::size_t epochs = scaledCount(30);
    const auto test_view = ds.test.view();

    Rng fnn_rng(envSeed() + 32);
    nn::Mlp fnn({784, 200, 200, 10}, fnn_rng, 0.2f);
    nn::TrainConfig fnn_config;
    fnn_config.epochs = epochs;
    fnn_config.batchSize = 8;
    fnn_config.learningRate = 1e-3f;
    fnn_config.seed = envSeed() + 33;
    fnn_config.evalSet = &test_view;
    const auto fnn_history = trainMlp(fnn, subset.view(), fnn_config);

    Rng bnn_rng(envSeed() + 34);
    bnn::BayesianMlp bnn({784, 200, 200, 10}, bnn_rng);
    bnn::BnnTrainConfig bnn_config;
    bnn_config.epochs = epochs;
    bnn_config.batchSize = 8;
    bnn_config.learningRate = 1e-3f;
    bnn_config.priorSigma = 0.3f;
    bnn_config.seed = envSeed() + 35;
    bnn_config.evalSamples = 2;
    bnn_config.evalSet = &test_view;
    const auto bnn_history = trainBnn(bnn, subset.view(), bnn_config);

    TextTable table;
    table.setHeader({"Epoch", "FNN test acc", "BNN test acc"});
    for (std::size_t e = 0; e < epochs; ++e) {
        if (e % 2 != 0 && e + 1 != epochs)
            continue; // print every other epoch
        table.addRow({strfmt("%zu", e + 1),
                      strfmt("%.4f", fnn_history.evalAccuracy[e]),
                      strfmt("%.4f", bnn_history.evalAccuracy[e])});
    }
    table.print();

    std::printf("\nPaper's claim (Figure 17): on small data the BNN "
                "converges to a\nhigher test accuracy than the FNN.\n"
                "final: FNN %.4f, BNN %.4f\n",
                fnn_history.evalAccuracy.back(),
                bnn_history.evalAccuracy.back());
    return 0;
}
