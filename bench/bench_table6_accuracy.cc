/**
 * @file
 * Reproduces Table 6: accuracy on the MNIST task for FNN+Dropout
 * (software), BNN (software) and VIBNN (8-bit hardware path).
 *
 * Substitution: procedural synthetic MNIST (DESIGN.md) with the paper's
 * 784-200-200-10 topology. Default scale trains on 4000 images and
 * tests on 1000; VIBNN_SCALE=4 roughly matches a full-size run.
 */

#include "bench_util.hh"
#include "core/vibnn.hh"
#include "data/synth_mnist.hh"
#include "nn/trainer.hh"
#include "serve/session.hh"

using namespace vibnn;

int
main()
{
    bench::banner("Table 6",
                  "MNIST accuracy: FNN+Dropout vs BNN vs VIBNN "
                  "(784-200-200-10)");

    data::SynthMnistConfig mnist_config;
    mnist_config.trainCount = scaledCount(1600);
    mnist_config.testCount = scaledCount(600);
    mnist_config.seed = envSeed();
    const auto ds = data::makeSynthMnist(mnist_config);
    std::printf("dataset: %zu train / %zu test synthetic MNIST images\n",
                ds.train.count(), ds.test.count());

    const std::size_t epochs = scaledCount(5);
    bench::Stopwatch clock;

    // --- FNN + dropout --------------------------------------------------
    Rng fnn_rng(envSeed() + 1);
    nn::Mlp fnn({784, 200, 200, 10}, fnn_rng, 0.2f);
    nn::TrainConfig fnn_config;
    fnn_config.epochs = epochs;
    fnn_config.batchSize = 32;
    fnn_config.learningRate = 1e-3f;
    fnn_config.seed = envSeed() + 2;
    trainMlp(fnn, ds.train.view(), fnn_config);
    const double fnn_acc = evaluateAccuracy(fnn, ds.test.view());
    std::printf("[%6.1fs] FNN trained, accuracy %.4f\n", clock.seconds(),
                fnn_acc);

    // --- BNN (Bayes-by-Backprop) ----------------------------------------
    bnn::BnnTrainConfig bnn_config;
    bnn_config.epochs = epochs;
    bnn_config.batchSize = 32;
    bnn_config.learningRate = 1e-3f;
    bnn_config.priorSigma = 0.3f;
    bnn_config.seed = envSeed() + 3;
    accel::AcceleratorConfig accel_config; // 16x8x8 @ 8-bit
    accel_config.mcSamples = 8; // match the software MC ensemble
    const auto sys = core::VibnnSystem::train(ds, {200, 200}, bnn_config,
                                              accel_config, "rlf");
    const double bnn_acc =
        sys.softwareAccuracy(ds.test.view(), 8, envSeed() + 4);
    std::printf("[%6.1fs] BNN trained, software accuracy %.4f\n",
                clock.seconds(), bnn_acc);

    // --- VIBNN hardware path, served through an InferenceSession ---------
    // VIBNN_SERVE_* knobs select mode/backend/T without recompiling
    // (e.g. VIBNN_SERVE_MODE=throughput for the weight-reuse path).
    const auto serve_opts = serve::SessionOptions::fromEnv();
    auto session = sys.makeSession(serve_opts);
    const auto response = session->run(
        serve::InferenceRequest::borrow(ds.test.view()));
    const double hw_acc = response.accuracy(ds.test.view().labels);
    double mean_entropy = 0.0, mean_mi = 0.0;
    for (const auto &p : response.predictions) {
        mean_entropy += p.entropy;
        mean_mi += p.mutualInformation;
    }
    mean_entropy /= static_cast<double>(response.predictions.size());
    mean_mi /= static_cast<double>(response.predictions.size());
    std::printf("[%6.1fs] VIBNN hardware path served (%s backend, "
                "%s mode, T=%d)\n",
                clock.seconds(), session->backendId().c_str(),
                execModeName(session->options().mode),
                response.mcSamples);

    TextTable table;
    table.setHeader({"Model", "Testing Accuracy", "Paper"});
    table.addRow({"FNN+Dropout (Software)", strfmt("%.2f%%",
                                                   100 * fnn_acc),
                  "97.50%"});
    table.addRow({"BNN (Software)", strfmt("%.2f%%", 100 * bnn_acc),
                  "98.10%"});
    table.addRow({"VIBNN (Hardware, 8-bit)", strfmt("%.2f%%",
                                                    100 * hw_acc),
                  "97.81%"});
    table.print();

    std::printf("\nhardware-vs-software degradation: %.2f%% "
                "(paper: 0.29%%)\n",
                100.0 * (bnn_acc - hw_acc));
    std::printf("served uncertainty: mean predictive entropy %.3f "
                "nats, mean mutual information %.3f nats\n",
                mean_entropy, mean_mi);
    return 0;
}
