/**
 * @file
 * Fault-tolerance benchmark (PR 10): what the serving stack delivers
 * when things break.
 *
 * Section "bitflip" — accuracy vs weight-arena bit-flip rate. A
 * trained Bayesian MLP classifies the synthetic-MNIST test set on the
 * batched (Throughput) path while the "accel.weights.bitflip" chaos
 * site flips each drawn weight bit with probability p. Two ensembles
 * run the same sweep: T=1 (single posterior sample — what a
 * conventional point-estimate deployment risks) and T=8 (the paper's
 * MC-averaged ensemble). The claim under test: Monte-Carlo averaging
 * degrades gracefully, because a corrupted draw is one vote among T,
 * while single-sample accuracy falls off a cliff.
 *
 * Section "chaos" — availability under transport chaos. A sharded
 * server runs over real loopback TCP with a standing fault profile
 * (torn reads, dropped connections, torn and delayed responses) while
 * retrying clients hammer it. The acceptance bar: >= 99% of requests
 * succeed within the retry budget AND every success is bit-identical
 * to the fault-free in-process answer (a replayed id is a safe
 * replay — the response is a pure function of (program, seed, T,
 * images)).
 *
 * Env: VIBNN_SCALE scales work, VIBNN_SEED the data/model seeds,
 * VIBNN_BENCH_JSON emits machine-readable records (BENCH_PR10.json is
 * the committed baseline the CI chaos job gates against — `accuracy`
 * and `success_rate` are higher-is-better).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "core/vibnn.hh"
#include "data/synth_mnist.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/session.hh"

using namespace vibnn;
using namespace vibnn::bench;

namespace
{

/** Arm a chaos spec or die — a bench with a silently dropped fault
 *  profile would "pass" while testing nothing. */
void
armOrDie(const std::string &spec)
{
    std::string error;
    if (!fault::armSpec(spec, error))
        fatal("bench_fault_tolerance: " + error);
}

// ------------------------------------------------------------ bitflip

void
runBitflipSection(JsonReport &json)
{
    std::printf("\n--- bitflip: accuracy vs weight bit-flip rate ---\n");

    data::SynthMnistConfig mnist_config;
    mnist_config.trainCount = scaledCount(600);
    mnist_config.testCount = scaledCount(300);
    mnist_config.seed = envSeed();
    const auto ds = data::makeSynthMnist(mnist_config);

    bnn::BnnTrainConfig train_config;
    train_config.epochs = std::max<std::size_t>(scaledCount(3), 2);
    train_config.batchSize = 32;
    train_config.learningRate = 1e-3f;
    train_config.priorSigma = 0.3f;
    train_config.seed = envSeed() + 3;
    accel::AcceleratorConfig accel_config;
    // A 784-100-10 model leaves fewer than 16 rounds per layer, so
    // the default 16-set PE array cannot drain (equation 14a) —
    // serve it on a 2x8 array instead.
    accel_config.peSets = 2;
    accel_config.pesPerSet = 8;
    accel_config.mcSamples = 8;
    Stopwatch clock;
    const auto sys = core::VibnnSystem::train(ds, {100}, train_config,
                                              accel_config, "rlf");
    std::printf("[%6.1fs] BNN trained (784-100-10, %zu train images)\n",
                clock.seconds(), ds.train.count());

    const double rates[] = {0.0, 1e-4, 1e-3, 5e-3, 1e-2};
    const int ensembles[] = {1, 8};

    TextTable table;
    table.setHeader({"Flip rate", "T=1 acc", "T=8 acc", "T8 - T1"});
    std::vector<std::vector<double>> acc(
        2, std::vector<double>(std::size(rates), 0.0));

    for (std::size_t ti = 0; ti < std::size(ensembles); ++ti) {
        serve::SessionOptions opts;
        opts.mode = serve::ExecMode::Throughput; // the batched path
        opts.mcSamples = ensembles[ti];
        opts.seed = envSeed() + 5;
        auto session = sys.makeSession(opts);
        for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
            if (rates[ri] > 0.0)
                armOrDie("accel.weights.bitflip:p=" +
                         strfmt("%g", rates[ri]));
            else
                fault::disarm(); // true unarmed baseline
            const auto response = session->run(
                serve::InferenceRequest::borrow(ds.test.view()));
            acc[ti][ri] = response.accuracy(ds.test.view().labels);
            std::printf("  done: T=%d rate=%g acc=%.4f (%llu bits "
                        "flipped)\n",
                        ensembles[ti], rates[ri], acc[ti][ri],
                        static_cast<unsigned long long>(
                            fault::fires("accel.weights.bitflip")));
        }
    }
    fault::disarm();

    for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
        table.addRow({strfmt("%g", rates[ri]),
                      strfmt("%.4f", acc[0][ri]),
                      strfmt("%.4f", acc[1][ri]),
                      strfmt("%+.4f", acc[1][ri] - acc[0][ri])});
        for (std::size_t ti = 0; ti < std::size(ensembles); ++ti)
            json.add(JsonRecord()
                         .field("bench", "bench_fault_tolerance")
                         .field("section", "bitflip")
                         .field("T", ensembles[ti])
                         .field("rate", strfmt("%g", rates[ri]))
                         .field("accuracy", acc[ti][ri]));
    }
    table.print();

    // The graceful-degradation readout: mean accuracy across the
    // nonzero flip rates (at the most extreme rate BOTH ensembles
    // eventually collapse — the advantage lives in the middle of the
    // curve, where one corrupted draw is outvoted).
    double mean1 = 0.0, mean8 = 0.0;
    for (std::size_t ri = 1; ri < std::size(rates); ++ri) {
        mean1 += acc[0][ri];
        mean8 += acc[1][ri];
    }
    mean1 /= static_cast<double>(std::size(rates) - 1);
    mean8 /= static_cast<double>(std::size(rates) - 1);
    std::printf("\nmean accuracy under flips: T=1 %.4f, T=8 %.4f — "
                "MC averaging %s\n",
                mean1, mean8,
                mean8 > mean1 ? "degrades more gracefully"
                              : "showed no advantage on this run");
}

// -------------------------------------------------------------- chaos

constexpr std::size_t kInputDim = 24;

struct ChaosOutcome
{
    std::size_t successes = 0;
    std::size_t failures = 0;
    std::size_t mismatches = 0; // success but NOT bit-exact
    std::size_t attempts = 0;
    std::vector<double> latenciesMicros;
};

void
runChaosSection(JsonReport &json)
{
    std::printf("\n--- chaos: availability under transport faults ---\n");

    accel::AcceleratorConfig config;
    config.peSets = 2;
    config.pesPerSet = 8;
    config.mcSamples = 8;
    Rng model_rng(envSeed() + 7);
    bnn::BayesianMlp net({kInputDim, 16, 4}, model_rng, -3.0f);
    auto program = compile(net, config);

    serve::SessionOptions session_opts;
    session_opts.mode = serve::ExecMode::Throughput;
    session_opts.seed = 211;

    // Fault-free oracle: the same program/session policy in-process.
    auto reference = serve::InferenceSession::Builder()
                         .program(accel::QuantizedProgram(program))
                         .accelerator(config)
                         .options(session_opts)
                         .build();

    serve::ServerOptions server_opts;
    server_opts.shards = 2;
    server_opts.queueCapacity = 64;
    server_opts.session = session_opts;
    serve::Server server(std::move(program), config, server_opts);
    std::string error;
    if (!server.start(error))
        fatal("bench_fault_tolerance: server start: " + error);

    // The standing chaos profile: every classify has a few percent
    // chance of a torn read, a dropped connection, a torn response,
    // or a response delayed past the client's receive deadline.
    const std::string profile =
        "net.read.torn:p=0.02,serve.conn.drop:p=0.02,"
        "serve.response.torn:p=0.02,serve.response.delay:p=0.01+delay=400";
    armOrDie(profile);

    const std::size_t conns = 4;
    const std::size_t per_conn = std::max<std::size_t>(
        scaledCount(50), 10);
    std::vector<ChaosOutcome> outcomes(conns);
    Stopwatch clock;
    std::vector<std::thread> threads;
    for (std::size_t tid = 0; tid < conns; ++tid) {
        threads.emplace_back([&, tid] {
            ChaosOutcome &out = outcomes[tid];
            serve::Client client;
            client.setReceiveTimeout(250);
            std::string cerr;
            if (!client.connect("127.0.0.1", server.port(), cerr)) {
                // The accept path is not under chaos here; treat a
                // refused connect as fatal rather than a data point.
                fatal("chaos client connect: " + cerr);
            }
            for (std::size_t i = 0; i < per_conn; ++i) {
                const std::uint64_t image_seed =
                    envSeed() + 1000 + tid * 1000 + i;
                Rng rng(image_seed);
                std::vector<float> xs(kInputDim);
                for (auto &v : xs)
                    v = static_cast<float>(rng.uniform());

                const auto t0 = std::chrono::steady_clock::now();
                const auto reply = client.classify(
                    xs.data(), 1, kInputDim, serve::Client::Options(),
                    serve::Client::RetryPolicy::attempts(8, 5));
                const double micros =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                out.attempts +=
                    static_cast<std::size_t>(reply.attempts);
                if (!reply.ok()) {
                    ++out.failures;
                    continue;
                }
                out.latenciesMicros.push_back(micros);
                // Bit-exactness against the fault-free oracle.
                const auto ref = reference->run(
                    serve::InferenceRequest::borrow(xs.data(), 1,
                                                    kInputDim));
                const auto &served = reply.response.predictions.at(0);
                const auto &want = ref.predictions.at(0);
                const bool exact =
                    served.predicted == want.predicted &&
                    served.probs.size() == want.probs.size() &&
                    std::memcmp(served.probs.data(),
                                want.probs.data(),
                                want.probs.size() * sizeof(float)) ==
                        0;
                if (exact)
                    ++out.successes;
                else
                    ++out.mismatches;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double elapsed = clock.seconds();

    ChaosOutcome total;
    for (const auto &out : outcomes) {
        total.successes += out.successes;
        total.failures += out.failures;
        total.mismatches += out.mismatches;
        total.attempts += out.attempts;
        total.latenciesMicros.insert(total.latenciesMicros.end(),
                                     out.latenciesMicros.begin(),
                                     out.latenciesMicros.end());
    }
    const std::size_t requests = conns * per_conn;
    const double success_rate =
        static_cast<double>(total.successes) /
        static_cast<double>(requests);
    std::sort(total.latenciesMicros.begin(),
              total.latenciesMicros.end());
    auto quantile = [&](double q) {
        if (total.latenciesMicros.empty())
            return 0.0;
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(total.latenciesMicros.size() - 1));
        return total.latenciesMicros[idx];
    };

    // Snapshot while still armed: disarm() drops the fire counters.
    const serve::ServerStats stats = server.stats();
    fault::disarm();
    std::printf("profile: %s\n", profile.c_str());
    std::printf("requests %zu  success %zu (%.2f%%)  failures %zu  "
                "mismatches %zu\n",
                requests, total.successes, 100.0 * success_rate,
                total.failures, total.mismatches);
    std::printf("attempts/request %.2f  retries observed by server "
                "%llu  faults fired %llu\n",
                static_cast<double>(total.attempts) /
                    static_cast<double>(requests),
                static_cast<unsigned long long>(stats.retriesObserved),
                static_cast<unsigned long long>(stats.faultFires));
    std::printf("goodput %.1f req/s  p50 %.0f us  p99 %.0f us\n",
                static_cast<double>(total.successes) / elapsed,
                quantile(0.50), quantile(0.99));
    if (success_rate < 0.99 || total.mismatches > 0)
        std::printf("FAIL: the >=99%% bit-exact-success bar was "
                    "missed\n");
    else
        std::printf("OK: >=99%% of chaos-armed requests succeeded "
                    "bit-exactly\n");

    json.add(JsonRecord()
                 .field("bench", "bench_fault_tolerance")
                 .field("section", "chaos")
                 .field("profile", "mixed-transport")
                 .field("conns", conns)
                 .field("requests", requests)
                 .field("success_rate", success_rate)
                 .field("mismatches", total.mismatches)
                 .field("attempts_per_request",
                        static_cast<double>(total.attempts) /
                            static_cast<double>(requests))
                 .field("goodput_req_per_s",
                        static_cast<double>(total.successes) / elapsed)
                 .field("p50_us", quantile(0.50))
                 .field("p99_us", quantile(0.99)));

    server.stop();
}

} // anonymous namespace

int
main()
{
    banner("Fault tolerance",
           "bit-flip resilience of MC averaging + availability under "
           "transport chaos (PR 10)");
    JsonReport json;
    runBitflipSection(json);
    runChaosSection(json);
    json.write();
    return 0;
}
