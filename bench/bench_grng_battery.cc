/**
 * @file
 * Extension bench S2 — the Figure 15 methodology widened from one
 * instrument (the runs test) to a five-test randomness battery (runs,
 * Ljung-Box, KS, chi-square, Anderson-Darling), applied to every
 * generator in the registry. Shape tests run twice: raw, and dithered
 * within the generator's own output lattice (estimated from the
 * stream), separating "the 8-bit grid is visible" from "the underlying
 * distribution is wrong".
 */

#include <algorithm>

#include "bench_util.hh"
#include "grng/registry.hh"
#include "stats/battery.hh"

using namespace vibnn;
using namespace vibnn::stats;

namespace
{

/** Smallest positive gap between sorted sample values — the output
 *  lattice step for discrete generators, ~0 for continuous ones. */
double
estimateLatticeStep(grng::GaussianGenerator &gen)
{
    std::vector<double> probe(4096);
    gen.fill(probe);
    std::sort(probe.begin(), probe.end());
    double step = 0.0;
    for (std::size_t i = 1; i < probe.size(); ++i) {
        const double gap = probe[i] - probe[i - 1];
        if (gap > 1e-9 && (step == 0.0 || gap < step))
            step = gap;
    }
    // Continuous generators: gaps are O(1/n), not a lattice.
    return step > 1e-4 ? step : 0.0;
}

} // namespace

int
main()
{
    const double scale = envScale();
    const std::uint64_t seed = envSeed();
    bench::banner("Survey S2 (extension)",
                  "Five-test randomness battery over all generators "
                  "(Figure 15 widened)");

    BatteryConfig config;
    config.samplesPerTest = 10000;
    config.repetitions =
        std::max<std::size_t>(5, static_cast<std::size_t>(20 * scale));
    config.seed = seed + 5;

    TextTable table;
    table.setHeader({"Generator", "runs", "ljung-box", "ks(raw)",
                     "chi2(raw)", "AD(raw)", "ks(dith)", "AD(dith)",
                     "lattice"});

    for (const auto &id : grng::generatorIds()) {
        auto gen = grng::makeGenerator(id, seed + 17);
        const double step = estimateLatticeStep(*gen);

        auto generate = [&](std::vector<double> &out) {
            gen->fill(out);
        };

        auto raw_config = config;
        raw_config.ditherStep = 0.0;
        const auto raw = runBattery(generate, raw_config);

        auto dith_config = config;
        dith_config.ditherStep = step;
        // Fresh generator so both runs see from-reset streams.
        auto gen2 = grng::makeGenerator(id, seed + 17);
        auto generate2 = [&](std::vector<double> &out) {
            gen2->fill(out);
        };
        const auto dith = runBattery(generate2, dith_config);

        table.addRow({id, strfmt("%.2f", raw.row("runs").passRate),
                      strfmt("%.2f", raw.row("ljung-box").passRate),
                      strfmt("%.2f", raw.row("ks").passRate),
                      strfmt("%.2f", raw.row("chi-square").passRate),
                      strfmt("%.2f", raw.row("anderson-darling").passRate),
                      strfmt("%.2f", dith.row("ks").passRate),
                      strfmt("%.2f",
                             dith.row("anderson-darling").passRate),
                      step > 0.0 ? strfmt("%.4f", step) : "cont."});
    }
    table.print();

    std::printf(
        "\nReading: pass rates are fractions of %zu repetitions at "
        "alpha=0.05\n(~0.95 expected for an ideal generator; 0.00 = "
        "systematic failure).\n"
        "The battery sharpens the Figure 15 story (see EXPERIMENTS.md):\n"
        " - software baselines and BNNWallace pass the shape tests; the\n"
        "   RLF family's 8-bit binomial lattice plus its bounded-step\n"
        "   walk (DESIGN.md finding 3) fail shape *and* order tests on\n"
        "   the pooled stream at n=10k — Ljung-Box sees what the runs\n"
        "   test only partially sees, quantifying why the paper's\n"
        "   output multiplexers alone do not make the stream iid.\n"
        " - Wallace-NSS fails the order tests outright (its Figure 15\n"
        "   row); BNNWallace passes shape but its 256-entry-per-unit\n"
        "   logical pool leaves residual order structure at this n,\n"
        "   consistent with the fig15 bench's pool-size sweep.\n"
        " - the lattice/dither columns separate 'the 8-bit grid is\n"
        "   visible' (an intended quantization) from 'the distribution\n"
        "   is wrong' (a real failure).\n",
        config.repetitions);
    return 0;
}
