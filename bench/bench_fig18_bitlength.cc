/**
 * @file
 * Reproduces Figure 18: test accuracy of the hardware path as a
 * function of the operand bit-length B, plus the paper's binary-search
 * selection of the smallest B above the 97.5%-of-software threshold
 * (Section 5.2 settles on 8 bits).
 */

#include "bench_util.hh"
#include "core/vibnn.hh"
#include "data/synth_mnist.hh"

using namespace vibnn;

int
main()
{
    bench::banner("Figure 18",
                  "Hardware test accuracy vs operand bit-length "
                  "(synthetic MNIST)");

    data::SynthMnistConfig mnist_config;
    mnist_config.trainCount = scaledCount(1200);
    mnist_config.testCount = scaledCount(300);
    mnist_config.seed = envSeed();
    const auto ds = data::makeSynthMnist(mnist_config);

    // Train one BNN, then requantize it at every bit-length.
    bnn::BnnTrainConfig train_config;
    train_config.epochs = scaledCount(4);
    train_config.batchSize = 32;
    train_config.learningRate = 1e-3f;
    train_config.priorSigma = 0.3f;
    train_config.seed = envSeed() + 41;

    accel::AcceleratorConfig base_config;
    base_config.mcSamples = 4;
    const auto sys = core::VibnnSystem::train(ds, {200, 200},
                                              train_config, base_config,
                                              "rlf");
    const double software_acc =
        sys.softwareAccuracy(ds.test.view(), 8, envSeed() + 42);
    const double threshold = 0.975 * software_acc;
    std::printf("software BNN accuracy: %.4f -> threshold %.4f "
                "(97.5%% of software, the paper's criterion)\n",
                software_acc, threshold);

    TextTable table;
    table.setHeader({"Bit-length", "Hardware accuracy",
                     "meets threshold"});
    int smallest_passing = -1;
    for (int bits : {2, 3, 4, 5, 6, 7, 8, 10, 12, 16}) {
        accel::AcceleratorConfig config = base_config;
        config.bits = bits;
        core::VibnnSystem quantized(sys.network(), config, "rlf",
                                    envSeed() + 43);
        const double acc = quantized.hardwareAccuracy(ds.test.view());
        const bool ok = acc >= threshold;
        if (ok && smallest_passing < 0)
            smallest_passing = bits;
        table.addRow({strfmt("%d", bits), strfmt("%.4f", acc),
                      ok ? "yes" : "no"});
        std::printf("  done: B=%d acc=%.4f\n", bits, acc);
    }
    table.print();

    std::printf("\nsmallest bit-length meeting the threshold: %d "
                "(paper: 8)\n", smallest_passing);
    return 0;
}
