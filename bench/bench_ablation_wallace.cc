/**
 * @file
 * Ablation A2 (ours): the BNNWallace design space — sharing, shift
 * selection, pass-phase rotation, pool size and unit count — against
 * output quality and modeled hardware cost. This is the experimental
 * backing for the "variable shift" design decision documented in
 * bnn_wallace.hh.
 */

#include <cmath>

#include "bench_util.hh"
#include "grng/bnn_wallace.hh"
#include "hwmodel/grng_hw.hh"
#include "stats/autocorr.hh"
#include "stats/runs_test.hh"

using namespace vibnn;
using namespace vibnn::grng;

namespace
{

double
portPeakAc(const BnnWallaceConfig &config)
{
    BnnWallaceGrng gen(config);
    std::vector<double> all, port;
    const std::size_t cycles = scaledCount(20000);
    for (std::size_t c = 0; c < cycles; ++c)
        gen.nextCycle(all);
    const std::size_t stride = 4 * config.units;
    for (std::size_t i = 0; i < all.size(); i += stride)
        port.push_back(all[i]);
    double peak = 0.0;
    for (std::size_t lag = 1;
         lag <= static_cast<std::size_t>(config.poolSize) / 2 + 8; ++lag)
        peak = std::max(peak,
                        std::fabs(stats::autocorrelation(port, lag)));
    return peak;
}

double
runsRate(const BnnWallaceConfig &config)
{
    BnnWallaceGrng gen(config);
    return stats::runsTestPassRate(
        [&gen](std::vector<double> &buf) {
            for (auto &x : buf)
                x = gen.next();
        },
        scaledCount(20000), scaledCount(30));
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablation A2",
                  "BNNWallace design space: shift scheme, pool size, "
                  "unit count vs quality and modeled cost");

    TextTable table;
    table.setHeader({"Configuration", "port peak |ac|", "runs rate",
                     "mem bits (model)"});

    struct Case
    {
        const char *label;
        bool sharing;
        bool variable;
        int units;
        int pool;
    };
    const Case cases[] = {
        {"NSS (no sharing)", false, false, 8, 256},
        {"fixed shift-1", true, false, 8, 256},
        {"variable shift", true, true, 8, 256},
        {"variable shift, pool 1024", true, true, 8, 1024},
        {"variable shift, 16 units", true, true, 16, 256},
        {"variable shift, 32 units", true, true, 32, 128},
    };

    for (const auto &c : cases) {
        BnnWallaceConfig config;
        config.sharingAndShifting = c.sharing;
        config.variableShift = c.variable;
        config.units = c.units;
        config.poolSize = c.pool;
        config.seed = envSeed();

        hw::BnnWallaceHwConfig hw_config;
        hw_config.units = c.units;
        hw_config.poolSize = c.pool;
        const auto estimate = bnnWallaceEstimate(hw_config);

        table.addRow({c.label, strfmt("%.3f", portPeakAc(config)),
                      strfmt("%.2f", runsRate(config)),
                      strfmt("%lld",
                             static_cast<long long>(
                                 estimate.total().memoryBits))});
    }
    table.print();

    std::printf(
        "\nReadings: the fixed shift-by-one leaves the ~0.5 revisit\n"
        "spike at a neighbouring lag (the system stays linear\n"
        "time-invariant); the LFSR-selected variable shift removes it\n"
        "at ~10 LUTs. Sharing more/smaller pools trades memory for\n"
        "mixing — the paper's 2x memory-saving claim.\n");
    return 0;
}
