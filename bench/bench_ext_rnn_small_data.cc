/**
 * @file
 * Extension bench E2 — Figure 16's small-data experiment in the
 * recurrent domain (the paper cites Bayesian Recurrent Neural Networks
 * [19] as a motivating deployment and claims VIBNN's principles apply
 * to RNNs). A point-estimate Elman RNN and a Bayesian RNN (per-sequence
 * weight samples, direct Bayes-by-Backprop) train on stratified
 * fractions of the synthetic sequence task; both accuracy curves are
 * reported.
 */

#include "bench_util.hh"

#include "bnn/bayesian_rnn.hh"
#include "data/sequences.hh"
#include "nn/rnn.hh"

using namespace vibnn;

int
main()
{
    const double scale = envScale();
    const std::uint64_t seed = envSeed();
    bench::banner("Extension E2",
                  "Small-data accuracy, Elman RNN vs Bayesian RNN "
                  "(Figure 16 protocol, recurrent domain)");

    data::SequenceTaskConfig task;
    task.trainCount = static_cast<std::size_t>(480 * scale);
    task.testCount = static_cast<std::size_t>(300 * scale);
    task.noise = 0.55; // hard enough that uncertainty matters
    task.seed = seed;
    const auto dataset = data::makeSequenceTask(task);

    nn::RnnConfig topology;
    topology.inputDim = task.featDim;
    topology.hiddenDim = 24;
    topology.numClasses = task.classes;
    topology.seqLen = task.seqLen;

    const double fractions[] = {1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2,
                                1.0};
    const std::size_t repeats =
        std::max<std::size_t>(3, static_cast<std::size_t>(5 * scale));

    TextTable table;
    table.setHeader({"fraction", "train n", "RNN acc", "BayesRNN acc",
                     "Bayes advantage"});

    for (double fraction : fractions) {
        double rnn_acc = 0.0, brnn_acc = 0.0;
        std::size_t subset_n = 0;
        // RNN training is cheap, so average over seeds to separate the
        // small-data effect from single-run variance.
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            const std::uint64_t rs = seed + 101 * rep;
            Rng frac_rng(rs + 11);
            const auto subset = data::stratifiedFraction(
                dataset.train, fraction, frac_rng);
            subset_n = subset.count();

            {
                Rng init(rs + 21);
                nn::ElmanRnn net(topology, init);
                nn::TrainConfig cfg;
                cfg.epochs = 40;
                cfg.batchSize = 16;
                cfg.learningRate = 3e-3f;
                cfg.seed = rs + 22;
                trainRnn(net, subset.view(), cfg);
                rnn_acc += evaluateAccuracy(net, dataset.test.view());
            }
            {
                Rng init(rs + 31);
                bnn::BayesianRnn net(topology, init, -4.0f);
                bnn::BnnTrainConfig cfg;
                cfg.epochs = 40;
                cfg.batchSize = 16;
                cfg.learningRate = 3e-3f;
                cfg.priorSigma = 0.5f;
                cfg.klWeight = 0.2f;
                cfg.evalSamples = 8;
                cfg.seed = rs + 32;
                trainBrnn(net, subset.view(), cfg);
                brnn_acc += evaluateBrnnAccuracy(
                    net, dataset.test.view(), 8, rs + 33);
            }
        }
        rnn_acc /= static_cast<double>(repeats);
        brnn_acc /= static_cast<double>(repeats);

        table.addRow({strfmt("%.4f", fraction),
                      strfmt("%zu", subset_n),
                      strfmt("%.4f", rnn_acc), strfmt("%.4f", brnn_acc),
                      strfmt("%+.4f", brnn_acc - rnn_acc)});
        std::printf("  done: fraction %.4f (n=%zu, %zu seeds) "
                    "RNN %.3f BRNN %.3f\n",
                    fraction, subset_n, repeats, rnn_acc, brnn_acc);
    }
    table.print();

    std::printf(
        "\nReading: the MC-ensemble Bayesian RNN holds accuracy as the\n"
        "training set shrinks while the point estimate degrades — the\n"
        "recurrent analogue of Figure 16's claim. See EXPERIMENTS.md\n"
        "for the measured shape and caveats.\n");
    return 0;
}
