/**
 * @file
 * Ablation A1 (ours): which parts of the RLF-GRNG design actually buy
 * output quality?
 *
 *  - update combining (equation (11) -> (12)): bounded step 3 -> 5;
 *  - output multiplexing (Figure 8): per-port decorrelation;
 *  - lane count: how wide the SeMem word must be before the pooled
 *    stream looks iid.
 *
 * Reported per configuration: per-port lag-1 autocorrelation, serial
 * stream runs pass rate, and windowed stability errors.
 */

#include <cmath>

#include "bench_util.hh"
#include "grng/rlf_grng.hh"
#include "stats/autocorr.hh"
#include "stats/moments.hh"
#include "stats/runs_test.hh"

using namespace vibnn;
using namespace vibnn::grng;

namespace
{

struct Probe
{
    double portAc1;
    double runsRate;
    double muError;
    double sigmaError;
};

Probe
probe(RlfGrngConfig config)
{
    config.seed = envSeed();
    Probe result{};

    // Port-0 stream autocorrelation.
    {
        RlfGrng gen(config);
        std::vector<int> cycle;
        std::vector<double> port;
        for (int c = 0; c < 4000; ++c) {
            gen.nextCycleCounts(cycle);
            port.push_back(gen.normalize(cycle[0]));
        }
        result.portAc1 = stats::autocorrelation(port, 1);
    }
    // Serial-stream runs + stability.
    {
        RlfGrng gen(config);
        result.runsRate = stats::runsTestPassRate(
            [&gen](std::vector<double> &buf) {
                for (auto &x : buf)
                    x = gen.next();
            },
            scaledCount(10000), scaledCount(40));
        RlfGrng gen2(config);
        std::vector<double> xs(scaledCount(1 << 18));
        for (auto &x : xs)
            x = gen2.next();
        const auto s = stats::measureStability(xs, 4096);
        result.muError = s.muError;
        result.sigmaError = s.sigmaError;
    }
    return result;
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablation A1",
                  "RLF-GRNG design knobs: update combining, output "
                  "multiplexing, lane count");

    TextTable table;
    table.setHeader({"Configuration", "port ac(1)", "runs rate",
                     "mu err", "sigma err"});

    struct Case
    {
        const char *label;
        RlfUpdateMode mode;
        bool mux;
        int lanes;
    };
    const Case cases[] = {
        {"single-update, no mux, 8 lanes", RlfUpdateMode::Single, false,
         8},
        {"combined-update, no mux, 8 lanes", RlfUpdateMode::Combined,
         false, 8},
        {"combined-update, mux, 8 lanes", RlfUpdateMode::Combined, true,
         8},
        {"combined-update, mux, 16 lanes", RlfUpdateMode::Combined, true,
         16},
        {"combined-update, mux, 64 lanes", RlfUpdateMode::Combined, true,
         64},
    };

    for (const auto &c : cases) {
        RlfGrngConfig config;
        config.mode = c.mode;
        config.outputMux = c.mux;
        config.lanes = c.lanes;
        const auto p = probe(config);
        table.addRow({c.label, strfmt("%+.3f", p.portAc1),
                      strfmt("%.2f", p.runsRate),
                      strfmt("%.4f", p.muError),
                      strfmt("%.4f", p.sigmaError)});
    }
    table.print();

    std::printf(
        "\nReadings: without the output mux a port is a slow popcount\n"
        "walk (ac ~ 0.97-0.98); the mux drops it to noise level. The\n"
        "combined update roughly halves the walk's correlation time\n"
        "(its purpose in Section 4.1.2). More lanes average the\n"
        "windowed stability errors down.\n");
    return 0;
}
