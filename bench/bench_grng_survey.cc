/**
 * @file
 * Extension bench S1 — the quantitative version of the paper's Section
 * 2.3 argument: across the four hardware GRNG families (Malik & Hemani
 * taxonomy), only the CLT family (RLF) and the recursion family
 * (Wallace) deliver 64 samples/cycle without spending the DSP
 * multipliers and deep elementary-function pipelines that the inversion
 * and transformation families require — hardware the PE array needs for
 * itself (Table 4 shows 342/342 DSP usage by the network).
 */

#include "bench_util.hh"
#include "hwmodel/cyclonev.hh"
#include "hwmodel/grng_survey.hh"

using namespace vibnn;
using namespace vibnn::hw;

int
main()
{
    bench::banner("Survey S1 (extension)",
                  "Hardware cost of the four GRNG families of Section "
                  "2.3, 64-parallel generation task");

    SurveyGrngConfig config; // 64 lanes, 8-bit samples, 16-bit datapath

    TextTable table;
    table.setHeader({"Family", "Design", "ALMs", "Registers", "Mem bits",
                     "DSPs", "Fmax MHz", "Power mW", "Samples/cycle"});
    for (const auto &row : grngSurvey(config)) {
        const auto total = row.estimate.total();
        table.addRow({row.family, row.design, strfmt("%.0f", total.alms),
                      strfmt("%.0f", total.registers),
                      strfmt("%lld",
                             static_cast<long long>(total.memoryBits)),
                      strfmt("%d", total.dsps),
                      strfmt("%.1f", row.estimate.fmaxMhz),
                      strfmt("%.1f", row.estimate.powerMw),
                      strfmt("%s%.1f",
                             row.deterministicRate ? "" : "~",
                             row.samplesPerCycle)});
    }
    table.print();

    std::printf(
        "\nDSP budget context: the device has %d DSP blocks and the\n"
        "paper's PE array uses all of them (Table 4). A GRNG family\n"
        "that needs DSPs competes directly with the MAC datapath.\n",
        CycloneVDevice::totalDsps);

    std::printf(
        "\nPaper's claim (Section 2.3): \"we believe the CLT-based\n"
        "methods and the Wallace method to be the most appropriate\n"
        "choices for hardware neural network acceleration ... the\n"
        "lower computation overhead\". The table above quantifies\n"
        "that choice on this repo's calibrated Cyclone V model: the\n"
        "two selected families are the only ones with zero DSP usage\n"
        "and the smallest soft-logic footprint, and the rejection\n"
        "family additionally breaks the free-running one-sample-per-\n"
        "cycle contract the weight generator requires.\n");
    return 0;
}
