/**
 * @file
 * Extension bench E1 — Figure 16's small-data experiment transplanted
 * to the convolutional domain. The paper asserts (Section 1) that
 * VIBNN's principles "can be applied to CNNs and RNNs as well"; the
 * load-bearing property is that a *Bayesian* network keeps its accuracy
 * advantage when training data shrinks. This bench trains a
 * point-estimate CNN and a Bayesian CNN (same LeNet-ish topology) on
 * stratified fractions of synthetic MNIST and reports both curves —
 * the conv analogue of Figure 16's FNN-vs-BNN comparison.
 */

#include "bench_util.hh"

#include <algorithm>

#include "bnn/bayesian_cnn.hh"
#include "core/vibnn.hh"
#include "data/synth_mnist.hh"
#include "nn/cnn.hh"

using namespace vibnn;

int
main()
{
    const double scale = envScale();
    const std::uint64_t seed = envSeed();
    bench::banner("Extension E1",
                  "Small-data accuracy, point-estimate CNN vs Bayesian "
                  "CNN (Figure 16 protocol, conv domain)");

    data::SynthMnistConfig mnist;
    mnist.trainCount = static_cast<std::size_t>(384 * scale);
    mnist.testCount = static_cast<std::size_t>(256 * scale);
    mnist.seed = seed;
    const auto dataset = data::makeSynthMnist(mnist);

    const auto topology = nn::ConvNetConfig::lenetLike(10);
    const double fractions[] = {1.0 / 8, 1.0 / 4, 1.0 / 2, 1.0};

    TextTable table;
    table.setHeader({"fraction", "train n", "CNN acc", "BayesCNN acc",
                     "Bayes advantage", "accel acc (MC-8)"});

    // Accelerator geometry for the compiled whole-CNN program: conv1's
    // 25-value patch bounds T at ceil(25/8) = 4 (equation 14a).
    accel::AcceleratorConfig accel_cfg;
    accel_cfg.peSets = 4;
    accel_cfg.pesPerSet = 8;
    accel_cfg.mcSamples = 8;
    // The cycle-level path is expensive; score a capped slice.
    nn::DataView accel_view = dataset.test.view();
    accel_view.count = std::min<std::size_t>(
        accel_view.count, static_cast<std::size_t>(48 * scale));

    Rng frac_rng(seed + 11);
    for (double fraction : fractions) {
        const auto subset =
            data::stratifiedFraction(dataset.train, fraction, frac_rng);

        double cnn_acc;
        {
            Rng init(seed + 21);
            nn::ConvNet net(topology, init);
            nn::TrainConfig cfg;
            cfg.epochs = 15;
            cfg.batchSize = 16;
            cfg.learningRate = 2e-3f;
            cfg.seed = seed + 22;
            trainConvNet(net, subset.view(), cfg);
            cnn_acc = evaluateAccuracy(net, dataset.test.view());
        }

        double bcnn_acc;
        double accel_acc;
        {
            Rng init(seed + 31);
            bnn::BayesianConvNet net(topology, init, -5.0f);
            bnn::BnnTrainConfig cfg;
            cfg.epochs = 15;
            cfg.batchSize = 16;
            cfg.learningRate = 2e-3f;
            cfg.priorSigma = 0.3f;
            // Tempered KL, as in the Figure 16 / Table 7 benches (see
            // DESIGN.md finding 6).
            cfg.klWeight = 0.3f;
            cfg.evalSamples = 8;
            cfg.seed = seed + 32;
            trainBcnn(net, subset.view(), cfg);
            bcnn_acc = evaluateBcnnAccuracy(net, dataset.test.view(), 8,
                                            seed + 33);

            // The same trained posterior, compiled to a
            // QuantizedProgram and classified on the modeled hardware
            // (8-bit grids, GRNG eps, McEngine batch MC loop) — the
            // program-path counterpart of the software LRT-trained
            // estimator scored above.
            const core::VibnnSystem sys(net, accel_cfg, "rlf",
                                        seed + 34);
            accel_acc = sys.hardwareAccuracyBatched(accel_view);
        }

        table.addRow({strfmt("%.3f", fraction),
                      strfmt("%zu", subset.count()),
                      strfmt("%.4f", cnn_acc), strfmt("%.4f", bcnn_acc),
                      strfmt("%+.4f", bcnn_acc - cnn_acc),
                      strfmt("%.4f", accel_acc)});
        std::printf("  done: fraction %.3f (n=%zu) CNN %.3f BCNN %.3f "
                    "accel %.3f (on %zu imgs)\n",
                    fraction, subset.count(), cnn_acc, bcnn_acc,
                    accel_acc, accel_view.count);
    }
    table.print();

    std::printf(
        "\nPaper's claim (Figure 16, FNN-vs-BNN): \"BNN performances\n"
        "much better as training data size shrinks\". Measured here:\n"
        "the Bayesian CNN holds a small edge at the sub-50%% fractions\n"
        "and concedes at full data — the paper's *shape*, but far\n"
        "smaller in magnitude than the MLP experiment, because conv\n"
        "weight sharing already regularizes what the Bayesian ensemble\n"
        "would otherwise have to: the overfitting the BNN rescues the\n"
        "784-200-200-10 MLP from largely never happens to a LeNet.\n"
        "This is an honest deviation, analyzed in EXPERIMENTS.md.\n"
        "The 'accel acc' column runs the same posterior end-to-end on\n"
        "the compiled QuantizedProgram (8-bit cycle-level path); it\n"
        "should track the float BayesCNN column within MC noise.\n");
    return 0;
}
